#!/usr/bin/env bash
# Boots an N-site qmx cluster on localhost sockets, drives qmxctl
# bench-load against it, prints the latency report, and fails unless the
# run produced grants and handover samples.
#
# Usage: scripts/cluster_smoke.sh [OUT_FILE]
#
# Environment knobs (all optional):
#   QMXCTL       path to the qmxctl binary   (default target/release/qmxctl)
#   N            cluster size                (default 9)
#   TRANSPORT    tcp | uds                   (default tcp)
#   BASE_PORT    first TCP port              (default 7450)
#   FORWARDING   on | off — off serves the 2T no-forwarding baseline
#   DURATION_MS  measured bench window       (default 5000)
#   CLIENTS      virtual clients             (default 24)
#   RESOURCES    distinct resources          (default 8)
#   SEED         bench RNG seed              (default 1)
set -euo pipefail

BIN="${QMXCTL:-target/release/qmxctl}"
N="${N:-9}"
TRANSPORT="${TRANSPORT:-tcp}"
BASE_PORT="${BASE_PORT:-7450}"
FORWARDING="${FORWARDING:-on}"
DURATION_MS="${DURATION_MS:-5000}"
CLIENTS="${CLIENTS:-24}"
RESOURCES="${RESOURCES:-8}"
SEED="${SEED:-1}"
OUT="${1:-}"

if [[ "$TRANSPORT" == "uds" ]]; then
    SOCKDIR="$(mktemp -d)"
    addr_of() { echo "$SOCKDIR/site-$1.sock"; }
else
    addr_of() { echo "127.0.0.1:$((BASE_PORT + $1))"; }
fi

# Servers self-exit via --for-ms so a wedged bench can't leak processes;
# the margin covers bench startup, its drain phase, and teardown.
SERVE_FOR_MS=$((DURATION_MS + DURATION_MS / 2 + 10000))

pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    [[ "${SOCKDIR:-}" ]] && rm -rf "$SOCKDIR"
    return 0
}
trap cleanup EXIT

for ((i = 0; i < N; i++)); do
    peers=()
    for ((s = 0; s < N; s++)); do
        [[ $s -eq $i ]] && continue
        peers+=(--peer "$s=$(addr_of "$s")")
    done
    "$BIN" serve --site "$i" --sites "$N" --listen "$(addr_of "$i")" \
        "${peers[@]}" --transport "$TRANSPORT" --forwarding "$FORWARDING" \
        --for-ms "$SERVE_FOR_MS" &
    pids+=($!)
done

sleep 1 # listeners bind, peer links come up

addrs=()
for ((i = 0; i < N; i++)); do
    addrs+=(--addr "$(addr_of "$i")")
done
report="$("$BIN" bench-load "${addrs[@]}" --transport "$TRANSPORT" \
    --clients "$CLIENTS" --resources "$RESOURCES" \
    --duration-ms "$DURATION_MS" --seed "$SEED" \
    --label "$N-site $TRANSPORT, forwarding $FORWARDING" \
    ${OUT:+--out "$OUT"})"
echo "$report"

grants="$(awk '/^duration/ { for (i = 2; i <= NF; i++) if ($i == "grants") print $(i - 1) }' <<<"$report")"
if [[ -z "$grants" || "$grants" -lt 1 ]]; then
    echo "SMOKE FAILED: no grants in the measured window" >&2
    exit 1
fi
if ! grep -q 'handover (wire sync delay): n=' <<<"$report"; then
    echo "SMOKE FAILED: no handover section in the report" >&2
    exit 1
fi

wait "${pids[@]}"
echo "cluster smoke OK: $grants grants over $N sites ($TRANSPORT, forwarding $FORWARDING)"
