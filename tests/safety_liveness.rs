//! Cross-crate integration tests: safety (never two sites in the CS — the
//! simulator's monitor panics on violation) and liveness (every scheduled
//! request is eventually served and the system quiesces) for every
//! algorithm × quorum construction combination that fits.

use qmx::sim::DelayModel;
use qmx::workload::arrival::ArrivalProcess;
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};

const T: u64 = 1000;

fn run(n: usize, algorithm: Algorithm, quorum: QuorumSpec, delay: DelayModel, seed: u64) -> usize {
    let r = Scenario {
        n,
        algorithm,
        quorum,
        arrivals: ArrivalProcess::Periodic {
            period: 60 * T,
            // Keep all stagger offsets inside one period even for n = 27.
            stagger: 2 * T,
        },
        horizon: 600 * T,
        delay,
        hold: DelayModel::Constant(100),
        seed,
        ..Scenario::default()
    }
    .run();
    r.completed
}

#[test]
fn delay_optimal_on_every_quorum_construction() {
    // (n, spec) pairs sized so each construction applies.
    let cases: Vec<(usize, QuorumSpec)> = vec![
        (9, QuorumSpec::Grid),
        (12, QuorumSpec::Grid),
        (7, QuorumSpec::Fpp),
        (13, QuorumSpec::Fpp),
        (7, QuorumSpec::Tree),
        (15, QuorumSpec::Tree),
        (9, QuorumSpec::Hqc),
        (27, QuorumSpec::Hqc),
        (8, QuorumSpec::GridSet(4)),
        (16, QuorumSpec::GridSet(4)),
        (12, QuorumSpec::Rst(3)),
        (16, QuorumSpec::Rst(4)),
        (9, QuorumSpec::Majority),
        (9, QuorumSpec::Wheel),
        (10, QuorumSpec::Wall),
        (5, QuorumSpec::All),
    ];
    for (n, spec) in cases {
        let completed = run(n, Algorithm::DelayOptimal, spec, DelayModel::Constant(T), 1);
        assert_eq!(completed, n * 10, "n={n} spec={spec:?}");
    }
}

#[test]
fn every_algorithm_serves_every_request_constant_delay() {
    for alg in [
        Algorithm::DelayOptimal,
        Algorithm::DelayOptimalNoForwarding,
        Algorithm::Maekawa,
        Algorithm::Lamport,
        Algorithm::RicartAgrawala,
        Algorithm::SuzukiKasami,
        Algorithm::Raymond,
        Algorithm::SinghalDynamic,
        Algorithm::CarvalhoRoucairol,
    ] {
        let completed = run(9, alg, QuorumSpec::Grid, DelayModel::Constant(T), 2);
        assert_eq!(completed, 9 * 10, "{}", alg.label());
    }
}

#[test]
fn every_algorithm_survives_random_delays() {
    // Exponential delays reorder messages across links (per-link FIFO
    // still holds); protocols must stay safe and live.
    for alg in [
        Algorithm::DelayOptimal,
        Algorithm::DelayOptimalNoForwarding,
        Algorithm::Maekawa,
        Algorithm::Lamport,
        Algorithm::RicartAgrawala,
        Algorithm::SuzukiKasami,
        Algorithm::Raymond,
        Algorithm::SinghalDynamic,
        Algorithm::CarvalhoRoucairol,
    ] {
        for seed in 0..5 {
            let completed = run(
                9,
                alg,
                QuorumSpec::Grid,
                DelayModel::Exponential { mean: T },
                seed,
            );
            // Heavy-tailed delays can make an occasional arrival land on a
            // still-busy site (dropped by design); require near-complete
            // service plus clean quiescence.
            assert!(
                completed >= 9 * 10 * 9 / 10,
                "{} seed={seed}: completed {completed}",
                alg.label()
            );
        }
    }
}

#[test]
fn delay_optimal_heavy_contention_many_seeds() {
    // Saturate a grid-quorum system across many seeds with jittery delays:
    // the adversarial regime for the forwarding races.
    for seed in 0..15 {
        let r = Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Saturated { tick_gap: T / 3 },
            horizon: 150 * T,
            delay: DelayModel::Uniform { lo: 200, hi: 2000 },
            hold: DelayModel::Constant(150),
            seed,
            ..Scenario::default()
        }
        .run();
        assert!(r.completed > 20, "seed={seed}: completed {}", r.completed);
    }
}

#[test]
fn uniform_delays_with_large_jitter() {
    for alg in [Algorithm::DelayOptimal, Algorithm::Maekawa] {
        let completed = run(
            16,
            alg,
            QuorumSpec::Grid,
            DelayModel::Uniform { lo: 1, hi: 3000 },
            7,
        );
        assert!(
            completed >= 16 * 10 * 9 / 10,
            "{}: completed {completed}",
            alg.label()
        );
    }
}
