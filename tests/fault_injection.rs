//! Fault-injection integration tests for the §6 failure-handling rules:
//! crash each protocol role (lock holder, arbiter, queued requester) and
//! assert the survivors recover.

use qmx::core::SiteId;
use qmx::sim::DelayModel;
use qmx::workload::arrival::ArrivalProcess;
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};

const T: u64 = 1000;

fn ft_scenario(n: usize, algorithm: Algorithm, crashes: Vec<(SiteId, u64)>) -> Scenario {
    Scenario {
        n,
        algorithm,
        quorum: QuorumSpec::Tree,
        arrivals: ArrivalProcess::Periodic {
            period: 20 * T,
            stagger: 900,
        },
        horizon: 500 * T,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(200),
        crashes,
        detect_delay: 2 * T,
        ..Scenario::default()
    }
}

#[test]
fn tree_ft_survives_root_crash() {
    // The root is in EVERY failure-free tree quorum: the worst single
    // crash. All six survivors must keep completing.
    let r = ft_scenario(7, Algorithm::DelayOptimalFtTree, vec![(SiteId(0), 100 * T)]).run();
    // 6 live sites x 25 rounds = 150 post-crash capacity; the pre-crash
    // window adds more. Require most of it.
    assert!(r.completed >= 120, "completed {}", r.completed);
}

#[test]
fn tree_ft_survives_interior_and_leaf_crashes() {
    for victim in [1u32, 3] {
        let r = ft_scenario(
            7,
            Algorithm::DelayOptimalFtTree,
            vec![(SiteId(victim), 150 * T)],
        )
        .run();
        assert!(
            r.completed >= 120,
            "victim {victim}: completed {}",
            r.completed
        );
    }
}

#[test]
fn tree_ft_survives_two_crashes() {
    let r = ft_scenario(
        15,
        Algorithm::DelayOptimalFtTree,
        vec![(SiteId(2), 100 * T), (SiteId(5), 250 * T)],
    )
    .run();
    assert!(r.completed >= 250, "completed {}", r.completed);
}

#[test]
fn majority_ft_survives_minority_crashes() {
    let r = Scenario {
        quorum: QuorumSpec::Majority,
        ..ft_scenario(
            7,
            Algorithm::DelayOptimalFtMajority,
            vec![(SiteId(2), 100 * T), (SiteId(6), 200 * T)],
        )
    }
    .run();
    assert!(r.completed >= 100, "completed {}", r.completed);
}

#[test]
fn crash_of_site_inside_cs_does_not_wedge_survivors() {
    // Crash timed while some site is very likely inside the CS (holds are
    // long); the permission it holds must be reclaimed via §6 cleanup.
    let r = Scenario {
        hold: DelayModel::Constant(5 * T),
        ..ft_scenario(7, Algorithm::DelayOptimalFtTree, vec![(SiteId(3), 23 * T)])
    }
    .run();
    assert!(r.completed >= 80, "completed {}", r.completed);
}

#[test]
fn fixed_quorum_unaffected_sites_keep_running() {
    // Without reconstruction, sites whose quorums avoid the victim keep
    // completing; dependent sites go inaccessible but must not wedge the
    // rest (and the run must stay safe throughout).
    let r = ft_scenario(7, Algorithm::DelayOptimal, vec![(SiteId(1), 100 * T)]).run();
    assert!(r.completed >= 40, "completed {}", r.completed);
}

#[test]
fn crash_before_any_traffic() {
    let r = ft_scenario(7, Algorithm::DelayOptimalFtTree, vec![(SiteId(2), 1)]).run();
    assert!(r.completed >= 120, "completed {}", r.completed);
}

#[test]
fn repeated_crashes_until_no_quorum_leaves_system_quiet() {
    // Kill all leaves of the 7-site tree: no quorum can form; the run must
    // terminate (no livelock) even though nobody can enter anymore.
    let crashes = vec![
        (SiteId(3), 50 * T),
        (SiteId(4), 60 * T),
        (SiteId(5), 70 * T),
        (SiteId(6), 80 * T),
    ];
    let r = ft_scenario(7, Algorithm::DelayOptimalFtTree, crashes).run();
    // Some completions before the blackout, none after; key assertion is
    // termination (run() returning) plus safety (monitored inside).
    assert!(r.completed >= 5, "completed {}", r.completed);
}

#[test]
fn majority_ft_partition_majority_side_continues() {
    // Partition 7 sites into {0,1,2,3} vs {4,5,6}: only the 4-site side
    // can still assemble majorities (4 of 7); the minority blocks but the
    // run stays safe and terminates.
    let mut sc = Scenario {
        quorum: QuorumSpec::Majority,
        ..ft_scenario(7, Algorithm::DelayOptimalFtMajority, vec![])
    };
    sc.partitions = vec![(vec![0, 0, 0, 0, 1, 1, 1], 150 * T)];
    let r = sc.run();
    // Majority side keeps completing after the split; well above the
    // pre-partition-only count (~7 sites x ~7 rounds).
    assert!(r.completed >= 80, "completed {}", r.completed);
}

#[test]
fn tree_ft_partition_is_safe_one_side_blocks() {
    // Tree quorums reconstructed under *disagreeing* failure suspicions
    // still intersect pairwise (proptest `quorum_properties`), so a
    // partition can block a side but never admit two concurrent CS
    // executions. The simulator's monitor enforces safety throughout.
    let mut sc = ft_scenario(7, Algorithm::DelayOptimalFtTree, vec![]);
    sc.partitions = vec![(vec![0, 0, 0, 1, 0, 1, 1], 150 * T)];
    let r = sc.run();
    assert!(r.completed >= 30, "completed {}", r.completed);
}
