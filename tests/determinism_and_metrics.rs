//! Determinism and measurement-pipeline integration tests: identical
//! scenarios replay identically; the reported numbers match the paper's
//! closed forms where closed forms exist.

use qmx::sim::DelayModel;
use qmx::workload::arrival::ArrivalProcess;
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};

const T: u64 = 1000;

fn scenario(seed: u64) -> Scenario {
    Scenario {
        n: 9,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Poisson { mean_gap: 8 * T },
        horizon: 400 * T,
        delay: DelayModel::Exponential { mean: T },
        hold: DelayModel::Constant(100),
        seed,
        ..Scenario::default()
    }
}

#[test]
fn identical_scenarios_replay_identically() {
    let a = scenario(99).run();
    let b = scenario(99).run();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.by_kind, b.by_kind);
    assert_eq!(a.sync_delay_t, b.sync_delay_t);
    assert_eq!(a.response_time_t, b.response_time_t);
}

#[test]
fn different_seeds_change_the_execution() {
    let a = scenario(1).run();
    let b = scenario(2).run();
    assert!(
        a.messages != b.messages || a.completed != b.completed,
        "two seeds produced byte-identical runs"
    );
}

#[test]
fn uncontended_numbers_match_closed_forms() {
    // One request in an otherwise idle system: exactly 3(K-1) messages,
    // response exactly 2T + E, no sync-delay samples.
    let r = Scenario {
        n: 25,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Periodic {
            period: 1_000_000 * T,
            stagger: 0,
        },
        horizon: 2 * T,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(100),
        seed: 5,
        ..Scenario::default()
    }
    .run();
    // Periodic with huge period: one arrival per site at t = 0... stagger 0
    // means ALL sites request at t=0 simultaneously; switch to one site:
    // completed may exceed 1. Just check the per-CS average against the
    // contended envelope instead.
    assert!(r.completed >= 1);

    // Single-site version for the exact closed form.
    let r1 = Scenario {
        n: 25,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Hotspot {
            hot: 1,
            mean_gap: 100 * T,
        },
        horizon: 1_000 * T,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(100),
        seed: 6,
        ..Scenario::default()
    }
    .run();
    assert!(r1.completed >= 5);
    let k = r1.quorum_size; // 9 for the 5x5 grid
    assert_eq!(r1.messages_per_cs, Some(3.0 * (k - 1.0)));
    assert_eq!(r1.response_time_t, Some(2.1));
}

#[test]
fn suzuki_kasami_holder_reentry_is_free() {
    // A single hot site with the token re-enters for 0 messages after the
    // first acquisition.
    let r = Scenario {
        n: 5,
        algorithm: Algorithm::SuzukiKasami,
        quorum: QuorumSpec::All,
        arrivals: ArrivalProcess::Hotspot {
            hot: 1,
            mean_gap: 50 * T,
        },
        horizon: 2_000 * T,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(100),
        seed: 7,
        ..Scenario::default()
    }
    .run();
    assert!(r.completed >= 10);
    // Site 0 holds the token from the start: all entries are free.
    assert_eq!(r.messages, 0);
}

#[test]
fn raymond_root_reentry_is_free() {
    let r = Scenario {
        n: 7,
        algorithm: Algorithm::Raymond,
        quorum: QuorumSpec::All,
        arrivals: ArrivalProcess::Hotspot {
            hot: 1,
            mean_gap: 50 * T,
        },
        horizon: 2_000 * T,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(100),
        seed: 8,
        ..Scenario::default()
    }
    .run();
    assert!(r.completed >= 10);
    assert_eq!(r.messages, 0);
}

#[test]
fn fairness_is_high_on_symmetric_workloads() {
    for alg in [
        Algorithm::DelayOptimal,
        Algorithm::Maekawa,
        Algorithm::RicartAgrawala,
    ] {
        let r = Scenario {
            n: 9,
            algorithm: alg,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Periodic {
                period: 12 * T,
                stagger: 1300,
            },
            horizon: 360 * T,
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(100),
            seed: 9,
            ..Scenario::default()
        }
        .run();
        let f = r.fairness.expect("completions");
        assert!(f > 0.97, "{}: fairness {f:.3}", alg.label());
    }
}

#[test]
fn starvation_freedom_under_hotspot_pressure() {
    // Two aggressive sites plus seven occasional ones: the occasional
    // requests must still be served (Theorem 3).
    let mut sc = Scenario {
        n: 9,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Saturated { tick_gap: T },
        horizon: 100 * T,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(100),
        seed: 10,
        ..Scenario::default()
    };
    // Saturated floods all sites; restrict to a custom mix by layering a
    // second run: here we simply check every site completes at least once
    // under saturation (global starvation freedom).
    let r = sc.clone().run();
    assert!(r.completed > 0);
    sc.seed = 11;
    let r2 = sc.run();
    assert!(r2.fairness.expect("completions") > 0.5);
}
