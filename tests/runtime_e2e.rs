//! End-to-end runtime tests on the in-process loopback transport.
//!
//! Every test here drives the *exact* objects `qmxctl serve` runs over
//! TCP — [`Node`]s wrapping the full `Detector<Reliable<LockSpace<
//! DelayOptimal>>>` stack, talking framed bytes to [`ClientCore`]
//! sessions — but over [`LoopCluster`]'s virtual clock, so runs are
//! deterministic and counters can be asserted exactly.

use qmx_client::{ClientEvent, ClusterConfig, LoopCluster};
use qmx_core::ResourceId;
use qmx_runtime::proto::RejectReason;

/// Pulls the next event of `handle`, running time forward until one
/// arrives (or the budget runs out).
fn wait_event(cluster: &mut LoopCluster, handle: usize, budget_us: u64) -> ClientEvent {
    let end = cluster.now() + budget_us;
    loop {
        if let Some(ev) = cluster.client(handle).next_event() {
            return ev;
        }
        assert!(
            cluster.now() < end,
            "no event for client {handle} within {budget_us} us"
        );
        cluster.run_for(1_000);
    }
}

fn expect_welcome(cluster: &mut LoopCluster, handle: usize) {
    match wait_event(cluster, handle, 100_000) {
        ClientEvent::Welcome { .. } => {}
        other => panic!("expected Welcome, got {other:?}"),
    }
}

fn acquire_granted(cluster: &mut LoopCluster, handle: usize, rid: u32) -> u64 {
    let req = cluster.client(handle).acquire(ResourceId(rid), None);
    match wait_event(cluster, handle, 5_000_000) {
        ClientEvent::Granted { rid: r, req: q } => {
            assert_eq!((r, q), (ResourceId(rid), req));
            req
        }
        other => panic!("expected Granted on rid {rid}, got {other:?}"),
    }
}

fn release_acked(cluster: &mut LoopCluster, handle: usize, rid: u32, req: u64) {
    cluster.client(handle).release(ResourceId(rid), req);
    match wait_event(cluster, handle, 5_000_000) {
        ClientEvent::Released { rid: r, req: q } => {
            assert_eq!((r, q), (ResourceId(rid), req));
        }
        other => panic!("expected Released on rid {rid}, got {other:?}"),
    }
}

#[test]
fn multi_resource_round_trips() {
    let mut cluster = LoopCluster::new(ClusterConfig::ring_majority(5));
    cluster.run_for(50_000); // peer links + heartbeats settle

    let a = cluster.add_client(0);
    let b = cluster.add_client(3);
    expect_welcome(&mut cluster, a);
    expect_welcome(&mut cluster, b);

    // Disjoint resources from different sites: both grant.
    let ra = acquire_granted(&mut cluster, a, 1);
    let rb = acquire_granted(&mut cluster, b, 2);

    // Same resource contended: b queues until a releases.
    let rb2 = cluster.client(b).acquire(ResourceId(1), None);
    cluster.run_for(200_000);
    assert!(cluster.events(b).is_empty(), "grant before release");

    release_acked(&mut cluster, a, 1, ra);
    match wait_event(&mut cluster, b, 5_000_000) {
        ClientEvent::Granted { rid, req } => assert_eq!((rid, req), (ResourceId(1), rb2)),
        other => panic!("expected handover grant, got {other:?}"),
    }

    release_acked(&mut cluster, b, 1, rb2);
    release_acked(&mut cluster, b, 2, rb);

    // Exactly three grants/releases happened across the cluster, split
    // between the two serving sites, and every site task is clean.
    let grants: u64 = (0..5)
        .map(|s| cluster.counters(s).grants)
        .collect::<Vec<_>>()
        .iter()
        .sum();
    let releases: u64 = (0..5).map(|s| cluster.counters(s).releases).sum();
    assert_eq!(grants, 3);
    assert_eq!(releases, 3);
    assert_eq!(cluster.counters(0).grants, 1);
    assert_eq!(cluster.counters(3).grants, 2);
    for s in 0..5 {
        let c = cluster.counters(s);
        assert_eq!(c.bad_frames, 0, "site {s} saw bad frames");
        assert_eq!(c.deadline_aborts, 0);
        assert_eq!(c.disconnect_releases, 0);
        assert!(
            cluster.node(s).unwrap().quiescent(),
            "site {s} not quiescent"
        );
    }
}

#[test]
fn client_deadline_abort_mid_wait() {
    let mut cluster = LoopCluster::new(ClusterConfig::ring_majority(5));
    cluster.run_for(50_000);

    let holder = cluster.add_client(0);
    let waiter = cluster.add_client(2);
    expect_welcome(&mut cluster, holder);
    expect_welcome(&mut cluster, waiter);

    let held = acquire_granted(&mut cluster, holder, 7);

    // The waiter asks with a 300 ms budget while the lock is held.
    let wreq = cluster.client(waiter).acquire(ResourceId(7), Some(300_000));
    cluster.run_for(100_000);
    assert!(cluster.events(waiter).is_empty(), "granted while held");

    // Budget expires server-side; the waiter gets Aborted, never Granted.
    cluster.run_for(400_000);
    match wait_event(&mut cluster, waiter, 1_000_000) {
        ClientEvent::Aborted { rid, req } => assert_eq!((rid, req), (ResourceId(7), wreq)),
        other => panic!("expected deadline abort, got {other:?}"),
    }
    assert_eq!(cluster.counters(2).deadline_aborts, 1);

    // The holder still owns the lock and can release it cleanly; a later
    // acquire by the ex-waiter succeeds (no poisoned state).
    release_acked(&mut cluster, holder, 7, held);
    let again = acquire_granted(&mut cluster, waiter, 7);
    release_acked(&mut cluster, waiter, 7, again);

    // An explicit abort of a pending request also works.
    let h2 = acquire_granted(&mut cluster, holder, 7);
    let w2 = cluster.client(waiter).acquire(ResourceId(7), None);
    cluster.run_for(50_000);
    cluster.client(waiter).abort(ResourceId(7), w2);
    match wait_event(&mut cluster, waiter, 1_000_000) {
        ClientEvent::Aborted { rid, req } => assert_eq!((rid, req), (ResourceId(7), w2)),
        other => panic!("expected explicit abort ack, got {other:?}"),
    }
    assert_eq!(cluster.counters(2).client_aborts, 1);
    release_acked(&mut cluster, holder, 7, h2);

    // Aborting a granted lock is refused: the client owns it.
    let h3 = acquire_granted(&mut cluster, holder, 7);
    cluster.client(holder).abort(ResourceId(7), h3);
    match wait_event(&mut cluster, holder, 1_000_000) {
        ClientEvent::Rejected { reason, .. } => {
            assert_eq!(reason, RejectReason::AlreadyGranted)
        }
        other => panic!("expected AlreadyGranted reject, got {other:?}"),
    }
    release_acked(&mut cluster, holder, 7, h3);
}

#[test]
fn surviving_majority_grants_after_site_failure() {
    let mut cluster = LoopCluster::new(ClusterConfig::ring_majority(5));
    cluster.run_for(50_000);

    // Site 2's ring-majority quorum is {2,3,4}: it never consults
    // site 0 or 1. Kill site 1 and the path stays fully live.
    cluster.kill(1);

    let c = cluster.add_client(2);
    expect_welcome(&mut cluster, c);

    // Give the detector time to suspect the dead site (hb_timeout is
    // 10 ms virtual), then lock and unlock through the surviving quorum.
    cluster.run_for(100_000);
    let req = acquire_granted(&mut cluster, c, 5);
    release_acked(&mut cluster, c, 5, req);
    assert_eq!(cluster.counters(2).grants, 1);

    // A quorum that *does* include the dead site still makes progress:
    // site 4 uses {4,0,1}, and the detector + reliable layer route
    // around 1 after suspicion (Reliable keeps retransmitting while the
    // detector's fail-confirm window runs; ring-majority intersection
    // guarantees safety, the stack's fault handling restores liveness).
    let d = cluster.add_client(4);
    expect_welcome(&mut cluster, d);
    let rq = cluster.client(d).acquire(ResourceId(6), None);
    let mut granted = false;
    for _ in 0..40 {
        cluster.run_for(100_000);
        for ev in cluster.events(d) {
            if let ClientEvent::Granted { rid, req } = ev {
                assert_eq!((rid, req), (ResourceId(6), rq));
                granted = true;
            }
        }
        if granted {
            break;
        }
    }
    assert!(granted, "site 4 never granted despite failure handling");
    release_acked(&mut cluster, d, 6, rq);
}

#[test]
fn rejoin_after_restart() {
    let mut cluster = LoopCluster::new(ClusterConfig::ring_majority(5));
    cluster.run_for(50_000);

    // A client attached to site 1 is mid-session when its site dies.
    let doomed = cluster.add_client(1);
    expect_welcome(&mut cluster, doomed);
    let held = acquire_granted(&mut cluster, doomed, 3);
    let _ = held;

    cluster.kill(1);
    cluster.run_for(5_000);
    match wait_event(&mut cluster, doomed, 100_000) {
        ClientEvent::Disconnected => {}
        other => panic!("expected Disconnected, got {other:?}"),
    }

    // Let suspicion land, then bring the site back with a bumped
    // incarnation: the stack runs its rejoin protocol and the node
    // re-dials its peers.
    cluster.run_for(200_000);
    cluster.restart(1);
    cluster.run_for(400_000);

    // The restarted site serves fresh clients, including on the very
    // resource its crashed predecessor held (crash released it via
    // session teardown on the quorum side after fail-confirm).
    let c = cluster.add_client(1);
    expect_welcome(&mut cluster, c);
    let rq = cluster.client(c).acquire(ResourceId(9), None);
    match wait_event(&mut cluster, c, 5_000_000) {
        ClientEvent::Granted { rid, req } => assert_eq!((rid, req), (ResourceId(9), rq)),
        other => panic!("expected post-rejoin grant, got {other:?}"),
    }
    release_acked(&mut cluster, c, 9, rq);

    // Peers saw the restart: site 0 accepted a fresh inbound peer link
    // from the rebooted site 1.
    assert!(cluster.counters(0).sessions_opened >= 2);
    assert!(cluster.node(1).unwrap().quiescent());
}

#[test]
fn forwarding_off_still_correct_under_contention() {
    // The 2T baseline (no reply forwarding) must produce the same
    // client-visible behaviour, just slower handovers.
    let mut cfg = ClusterConfig::ring_majority(5);
    cfg.algo.forwarding_enabled = false;
    let mut cluster = LoopCluster::new(cfg);
    cluster.run_for(50_000);

    let a = cluster.add_client(0);
    let b = cluster.add_client(1);
    expect_welcome(&mut cluster, a);
    expect_welcome(&mut cluster, b);

    for round in 0..3 {
        let ra = acquire_granted(&mut cluster, a, 4);
        let rb = cluster.client(b).acquire(ResourceId(4), None);
        cluster.run_for(100_000);
        assert!(cluster.events(b).is_empty(), "round {round}: early grant");
        release_acked(&mut cluster, a, 4, ra);
        match wait_event(&mut cluster, b, 5_000_000) {
            ClientEvent::Granted { rid, req } => {
                assert_eq!((rid, req), (ResourceId(4), rb))
            }
            other => panic!("round {round}: expected grant, got {other:?}"),
        }
        release_acked(&mut cluster, b, 4, rb);
    }
    assert_eq!(cluster.counters(0).grants + cluster.counters(1).grants, 6);
}
