//! Property-based tests of the networked runtime: random interleavings
//! of acquire / release / abort from many clients, executed end-to-end
//! through framed connections against a live loopback cluster.
//!
//! Two invariants are enforced on every run:
//!
//! 1. **Mutual exclusion per resource** — whenever a grant arrives, no
//!    other client is between its own grant and its release of the same
//!    resource.
//! 2. **No orphaned grants** — after the schedule drains (remaining
//!    holders release, remaining waiters abort), every site's node
//!    reports a clean lock table: no holder, no waiters, no protocol
//!    shard still holding or wanting the CS.

use proptest::prelude::*;
use qmx::client::{ClientEvent, ClusterConfig, LoopCluster};
use qmx::core::ResourceId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, Copy, PartialEq)]
enum CState {
    Idle,
    Waiting { rid: u32, req: u64 },
    Holding { rid: u32, req: u64 },
    Releasing,
}

struct Driver {
    cluster: LoopCluster,
    handles: Vec<usize>,
    states: Vec<CState>,
    /// Client currently between Granted and Release, per resource.
    holder_of: Vec<Option<usize>>,
    grants_seen: u64,
}

impl Driver {
    fn new(sites: u32, clients: usize, resources: u32) -> Self {
        let mut cluster = LoopCluster::new(ClusterConfig::ring_majority(sites));
        cluster.run_for(50_000);
        let handles: Vec<usize> = (0..clients)
            .map(|i| cluster.add_client(i as u32 % sites))
            .collect();
        cluster.run_for(20_000);
        for &h in &handles {
            let evs = cluster.events(h);
            assert!(
                evs.iter().any(|e| matches!(e, ClientEvent::Welcome { .. })),
                "client {h} never welcomed"
            );
        }
        Driver {
            cluster,
            handles,
            states: vec![CState::Idle; clients],
            holder_of: vec![None; resources as usize],
            grants_seen: 0,
        }
    }

    /// Applies every event each client has pending, checking mutual
    /// exclusion as grants land.
    fn absorb_events(&mut self) {
        for ci in 0..self.handles.len() {
            let evs = self.cluster.events(self.handles[ci]);
            for ev in evs {
                match ev {
                    ClientEvent::Granted { rid, req } => {
                        assert_eq!(
                            self.states[ci],
                            CState::Waiting { rid: rid.0, req },
                            "client {ci}: grant without matching wait"
                        );
                        let slot = &mut self.holder_of[rid.0 as usize];
                        assert!(
                            slot.is_none(),
                            "MUTUAL EXCLUSION VIOLATED on rid {}: client {ci} \
                             granted while client {:?} still holds",
                            rid.0,
                            slot
                        );
                        *slot = Some(ci);
                        self.states[ci] = CState::Holding { rid: rid.0, req };
                        self.grants_seen += 1;
                    }
                    ClientEvent::Aborted { rid, req } => {
                        if self.states[ci] == (CState::Waiting { rid: rid.0, req }) {
                            self.states[ci] = CState::Idle;
                        }
                    }
                    ClientEvent::Released { .. } => {
                        if self.states[ci] == CState::Releasing {
                            self.states[ci] = CState::Idle;
                        }
                    }
                    ClientEvent::Rejected { rid, req, .. } => {
                        // Late abort of an already-granted lock: we keep
                        // holding (the runtime owes us the grant).
                        if self.states[ci] == (CState::Waiting { rid: rid.0, req }) {
                            self.states[ci] = CState::Holding { rid: rid.0, req };
                        }
                    }
                    ClientEvent::Welcome { .. } => {}
                    ClientEvent::Disconnected => {
                        panic!("client {ci} disconnected mid-schedule")
                    }
                }
            }
        }
    }

    /// One schedule step for client `ci`, driven by `choice`.
    fn step(&mut self, ci: usize, rid: u32, wait: Option<u64>, choice: u8) {
        let h = self.handles[ci];
        match self.states[ci] {
            CState::Idle => {
                let req = self.cluster.client(h).acquire(ResourceId(rid), wait);
                self.states[ci] = CState::Waiting { rid, req };
            }
            CState::Waiting { rid, req } => {
                // Sometimes withdraw a pending request.
                if choice.is_multiple_of(3) {
                    self.cluster.client(h).abort(ResourceId(rid), req);
                    // State resolves via Aborted (pending) or Rejected
                    // (already granted) in absorb_events.
                }
            }
            CState::Holding { rid, req } => {
                if self.holder_of[rid as usize] == Some(ci) {
                    self.holder_of[rid as usize] = None;
                }
                self.cluster.client(h).release(ResourceId(rid), req);
                self.states[ci] = CState::Releasing;
            }
            CState::Releasing => {}
        }
    }

    /// Winds the schedule down: releases every held lock, aborts every
    /// pending request, then runs until the cluster is quiescent.
    fn drain(&mut self, sites: u32) {
        for _ in 0..200 {
            self.cluster.run_for(100_000);
            self.absorb_events();
            let mut busy = false;
            for ci in 0..self.handles.len() {
                match self.states[ci] {
                    CState::Idle => {}
                    CState::Waiting { rid, req } => {
                        self.cluster
                            .client(self.handles[ci])
                            .abort(ResourceId(rid), req);
                        busy = true;
                    }
                    CState::Holding { rid, req } => {
                        if self.holder_of[rid as usize] == Some(ci) {
                            self.holder_of[rid as usize] = None;
                        }
                        self.cluster
                            .client(self.handles[ci])
                            .release(ResourceId(rid), req);
                        self.states[ci] = CState::Releasing;
                        busy = true;
                    }
                    CState::Releasing => busy = true,
                }
            }
            if !busy {
                break;
            }
        }
        self.cluster.run_for(500_000);
        self.absorb_events();
        for ci in 0..self.handles.len() {
            assert_eq!(
                self.states[ci],
                CState::Idle,
                "client {ci} stuck after drain"
            );
        }
        // No orphaned grants: every site's lock table is empty and no
        // protocol shard is holding or wanting any resource.
        for s in 0..sites {
            let node = self.cluster.node(s).expect("all sites alive");
            assert!(node.held().is_empty(), "site {s} still has holders");
            assert!(node.quiescent(), "site {s} not quiescent after drain");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_schedules_hold_invariants(
        sites in 3u32..=6,
        clients in 2usize..=6,
        resources in 1u32..=4,
        steps in 20usize..120,
        seed in 0u64..1_000_000_000,
    ) {
        // The vendored proptest stand-in has ranges and tuples but no
        // collection strategies; the schedule itself is derived from a
        // drawn seed, which keeps shrink-free replay exact (the failing
        // tuple alone reproduces the run).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Driver::new(sites, clients, resources);
        for _ in 0..steps {
            let ci = rng.gen_range(0..clients);
            let rid = rng.gen_range(0..resources);
            let wait = if rng.gen_bool(0.3) {
                Some(rng.gen_range(50_000u64..800_000))
            } else {
                None
            };
            let choice = rng.gen_range(0u32..256) as u8;
            d.step(ci, rid, wait, choice);
            let gap_ms = rng.gen_range(1u64..30);
            d.cluster.run_for(gap_ms * 1_000);
            d.absorb_events();
        }
        d.drain(sites);
        // Sanity: schedules of this shape actually exercise the lock path.
        prop_assert!(d.grants_seen > 0 || d.handles.len() < 2);
    }
}
