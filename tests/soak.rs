//! Soak tests: long adversarial runs combining bursty load, heavy-tailed
//! delays, crashes and partitions. Safety is enforced by the simulator's
//! monitor on every event; these tests assert the system also keeps making
//! progress and terminates cleanly.

use qmx::core::{DetectorConfig, LossModel, Outage, SiteId, TransportConfig};
use qmx::sim::DelayModel;
use qmx::workload::arrival::ArrivalProcess;
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};

const T: u64 = 1000;

#[test]
fn bursty_load_with_jittery_delays() {
    for seed in 0..6 {
        let r = Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Bursty {
                burst_gap: 40 * T,
                burst_len: 2,
                intra_gap: T / 2,
            },
            horizon: 800 * T,
            delay: DelayModel::Exponential { mean: T },
            hold: DelayModel::Uniform { lo: 50, hi: 500 },
            seed,
            ..Scenario::default()
        }
        .run();
        assert!(r.completed >= 60, "seed {seed}: completed {}", r.completed);
        assert!(
            r.fairness.expect("completions") > 0.8,
            "seed {seed}: fairness {:?}",
            r.fairness
        );
    }
}

#[test]
fn crash_then_partition_combined() {
    // A crash at 100T, then a partition at 300T cutting off one leaf pair:
    // the FT tree protocol must keep the connected majority side going.
    for seed in 0..4 {
        let r = Scenario {
            n: 15,
            algorithm: Algorithm::DelayOptimalFtTree,
            quorum: QuorumSpec::Tree,
            arrivals: ArrivalProcess::Periodic {
                period: 25 * T,
                stagger: 1500,
            },
            horizon: 800 * T,
            delay: DelayModel::Exponential { mean: T },
            hold: DelayModel::Constant(200),
            crashes: vec![(SiteId(4), 100 * T)],
            partitions: vec![(
                // Sites 13, 14 (leaves) cut off.
                vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1],
                300 * T,
            )],
            seed,
            ..Scenario::default()
        }
        .run();
        assert!(r.completed >= 200, "seed {seed}: completed {}", r.completed);
    }
}

#[test]
fn all_algorithms_survive_an_adversarial_mix() {
    // Bursty + exponential delays for every algorithm; only quorum-based
    // ones see the grid, the rest ignore it.
    for alg in [
        Algorithm::DelayOptimal,
        Algorithm::Maekawa,
        Algorithm::Lamport,
        Algorithm::RicartAgrawala,
        Algorithm::SuzukiKasami,
        Algorithm::Raymond,
        Algorithm::SinghalDynamic,
        Algorithm::CarvalhoRoucairol,
    ] {
        let r = Scenario {
            n: 9,
            algorithm: alg,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Bursty {
                burst_gap: 60 * T,
                burst_len: 1,
                intra_gap: T,
            },
            horizon: 600 * T,
            delay: DelayModel::Exponential { mean: T },
            hold: DelayModel::Constant(100),
            seed: 99,
            ..Scenario::default()
        }
        .run();
        assert!(
            r.completed >= 60,
            "{}: completed {}",
            alg.label(),
            r.completed
        );
    }
}

#[test]
fn lossy_grid_soak_iid() {
    // 9-site grid under 10% i.i.d. loss + 5% duplication, every site
    // requesting 20 times: the reliable transport must deliver all 180
    // CS executions (ME violations would panic inside the simulator).
    for seed in [1u64, 7, 42] {
        let r = Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Periodic {
                period: 40 * T,
                stagger: 1500,
            },
            horizon: 800 * T,
            delay: DelayModel::Exponential { mean: T },
            hold: DelayModel::Uniform { lo: 50, hi: 500 },
            loss: LossModel::Iid {
                drop: 0.10,
                dup: 0.05,
            },
            transport: Some(TransportConfig::default()),
            seed,
            ..Scenario::default()
        }
        .run();
        assert_eq!(
            r.completed,
            9 * 20,
            "seed {seed}: completed {}",
            r.completed
        );
        assert!(r.injected_drops > 0, "seed {seed}: loss model never fired");
        assert!(
            r.transport.retransmissions > 0,
            "seed {seed}: no retransmissions"
        );
        assert!(
            r.transport.duplicates_dropped > 0,
            "seed {seed}: dedup never engaged"
        );
        assert_eq!(r.transport.gave_up, 0, "seed {seed}: transport gave up");
    }
}

#[test]
fn lossy_grid_soak_burst() {
    // Gilbert–Elliott bursts: links flip into a bad state (~4% of the
    // time at stationarity) where 80% of messages vanish. Correlated
    // losses hit consecutive retransmissions, so this exercises the
    // exponential backoff harder than i.i.d. loss does.
    for seed in [3u64, 11] {
        let r = Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Periodic {
                period: 40 * T,
                stagger: 1500,
            },
            horizon: 800 * T,
            delay: DelayModel::Exponential { mean: T },
            hold: DelayModel::Constant(200),
            loss: LossModel::Burst {
                p_bad: 0.02,
                p_good: 0.5,
                drop_good: 0.01,
                drop_bad: 0.8,
                dup: 0.02,
            },
            transport: Some(TransportConfig::default()),
            seed,
            ..Scenario::default()
        }
        .run();
        assert_eq!(
            r.completed,
            9 * 20,
            "seed {seed}: completed {}",
            r.completed
        );
        assert!(
            r.transport.retransmissions > 0,
            "seed {seed}: no retransmissions"
        );
        assert_eq!(r.transport.gave_up, 0, "seed {seed}: transport gave up");
    }
}

#[test]
fn transient_partition_soak_with_heal() {
    // Loss plus a transient partition: sites {7,8} are cut off from
    // 100T to 160T (shorter than any retransmission gives up: 40 retries
    // with capped backoff covers far more). The failure detector is
    // disabled so recovery is purely the transport's doing.
    //
    // The 60T outage exceeds the 50T arrival period, so each site may
    // shed roughly one arrival while blocked (the simulator drops
    // arrivals landing on a site that still wants the CS) — hence a
    // floor of 10 of the 12 rounds rather than an exact count.
    for seed in [2u64, 9] {
        let r = Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Periodic {
                period: 50 * T,
                stagger: 2000,
            },
            horizon: 600 * T,
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(100),
            partitions: vec![(vec![0, 0, 0, 0, 0, 0, 0, 1, 1], 100 * T)],
            heals: vec![160 * T],
            loss: LossModel::Iid {
                drop: 0.05,
                dup: 0.0,
            },
            transport: Some(TransportConfig::default()),
            detect_delay: u64::MAX / 2,
            seed,
            ..Scenario::default()
        }
        .run();
        assert!(
            r.completed >= 9 * 10,
            "seed {seed}: completed {}",
            r.completed
        );
        assert!(
            r.transport.retransmissions > 0,
            "seed {seed}: no retransmissions"
        );
        assert_eq!(r.transport.gave_up, 0, "seed {seed}: transport gave up");
    }
}

#[test]
fn large_system_smoke() {
    // 100 sites, grid quorums (K = 19), moderate load: completes and
    // stays fair at a scale an order of magnitude past the other tests.
    let r = Scenario {
        n: 100,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Poisson { mean_gap: 400 * T },
        horizon: 2_000 * T,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(100),
        seed: 5,
        ..Scenario::default()
    }
    .run();
    assert!(r.completed >= 300, "completed {}", r.completed);
    assert!(r.messages_per_cs.expect("completions") < 8.0 * 18.0);
    // Poisson arrivals give each site only ~5 requests over this horizon,
    // so per-site counts vary by workload chance alone; the bound guards
    // against systematic starvation, not sampling noise.
    assert!(r.fairness.expect("completions") > 0.7);
}

#[test]
fn contended_crash_and_rejoin_under_detector() {
    // Regression for the link-epoch bug. Under persistent demand from all
    // three sites, site 1 crashes mid-protocol and restarts 36T later with
    // fresh state. Retransmissions from the old incarnation still in
    // flight across the restart used to land in the rejoined site's
    // reorder buffer and occupy the sequence slots of the new numbering,
    // wedging it permanently; link epochs discard those stragglers, so
    // every site — including the rejoined one — keeps completing rounds.
    // No oracle is involved: suspicion and rejoin are heartbeat-driven.
    let r = Scenario {
        n: 3,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::All,
        arrivals: ArrivalProcess::Periodic {
            period: 700,
            stagger: 1,
        },
        horizon: 100 * T,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(200),
        crashes: vec![(SiteId(1), 4 * T)],
        recoveries: vec![(SiteId(1), 40 * T)],
        transport: Some(TransportConfig {
            rto_initial: 8_000,
            rto_max: 64_000,
            max_retries: 40,
        }),
        detector: Some(DetectorConfig {
            hb_interval: 2_000,
            hb_timeout: 10_000,
            rejoin_wait: 5_000,
            fail_confirm: 30_000,
        }),
        ..Scenario::default()
    }
    .run();
    assert!(r.completed >= 30, "completed {}", r.completed);
    // Fairness above 0.8 rules out the rejoined site being starved (a
    // wedged third site caps Jain's index at ~0.67).
    assert!(
        r.fairness.expect("completions") > 0.8,
        "fairness {:?}",
        r.fairness
    );
    // Both survivors suspect the crashed site from silence...
    assert!(r.detector.suspicions >= 2, "detector {:?}", r.detector);
    // ...and a genuine crash is never misread as a false suspicion.
    assert_eq!(r.detector.false_suspicions, 0, "detector {:?}", r.detector);
    assert_eq!(r.detector.rejoins_sent, 1, "detector {:?}", r.detector);
    assert!(
        r.detector.rejoins_observed >= 2,
        "detector {:?}",
        r.detector
    );
}

#[test]
fn crash_inside_outage_window_survivors_reconstruct() {
    // Combined faults: the 0<->3 link blacks out over [50T, 120T], and
    // *inside* that window site 3 — a member of the rotating majority
    // quorums — crashes for good. Suspicion is heartbeat-driven (no
    // oracle); the §6 reconstruction then routes the survivors' quorums
    // around the dead site, so they keep completing rounds. The simulator
    // monitor enforces ME throughout, including across the false-suspicion
    // episode the outage provokes between sites 0 and 3 before the crash.
    for seed in [1u64, 8] {
        let r = Scenario {
            n: 7,
            algorithm: Algorithm::DelayOptimalFtMajority,
            quorum: QuorumSpec::Majority,
            arrivals: ArrivalProcess::Periodic {
                period: 30 * T,
                stagger: 1500,
            },
            horizon: 600 * T,
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(200),
            crashes: vec![(SiteId(3), 80 * T)],
            outages: vec![
                Outage {
                    from: SiteId(0),
                    to: SiteId(3),
                    start: 50 * T,
                    end: 120 * T,
                },
                Outage {
                    from: SiteId(3),
                    to: SiteId(0),
                    start: 50 * T,
                    end: 120 * T,
                },
            ],
            transport: Some(TransportConfig::default()),
            detector: Some(DetectorConfig::default()),
            seed,
            ..Scenario::default()
        }
        .run();
        // 6 survivors x 20 arrivals, minus rounds shed while suspicion
        // and reconstruction settle.
        assert!(r.completed >= 100, "seed {seed}: completed {}", r.completed);
        // Every survivor eventually suspects the dead site.
        assert!(
            r.detector.suspicions >= 6,
            "seed {seed}: detector {:?}",
            r.detector
        );
        // Nobody recovered, so no rejoin traffic.
        assert_eq!(
            r.detector.rejoins_sent, 0,
            "seed {seed}: detector {:?}",
            r.detector
        );
    }
}
