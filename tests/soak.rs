//! Soak tests: long adversarial runs combining bursty load, heavy-tailed
//! delays, crashes and partitions. Safety is enforced by the simulator's
//! monitor on every event; these tests assert the system also keeps making
//! progress and terminates cleanly.

use qmx::core::SiteId;
use qmx::sim::DelayModel;
use qmx::workload::arrival::ArrivalProcess;
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};

const T: u64 = 1000;

#[test]
fn bursty_load_with_jittery_delays() {
    for seed in 0..6 {
        let r = Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Bursty {
                burst_gap: 40 * T,
                burst_len: 2,
                intra_gap: T / 2,
            },
            horizon: 800 * T,
            delay: DelayModel::Exponential { mean: T },
            hold: DelayModel::Uniform { lo: 50, hi: 500 },
            seed,
            ..Scenario::default()
        }
        .run();
        assert!(r.completed >= 60, "seed {seed}: completed {}", r.completed);
        assert!(
            r.fairness.expect("completions") > 0.8,
            "seed {seed}: fairness {:?}",
            r.fairness
        );
    }
}

#[test]
fn crash_then_partition_combined() {
    // A crash at 100T, then a partition at 300T cutting off one leaf pair:
    // the FT tree protocol must keep the connected majority side going.
    for seed in 0..4 {
        let r = Scenario {
            n: 15,
            algorithm: Algorithm::DelayOptimalFtTree,
            quorum: QuorumSpec::Tree,
            arrivals: ArrivalProcess::Periodic {
                period: 25 * T,
                stagger: 1500,
            },
            horizon: 800 * T,
            delay: DelayModel::Exponential { mean: T },
            hold: DelayModel::Constant(200),
            crashes: vec![(SiteId(4), 100 * T)],
            partitions: vec![(
                // Sites 13, 14 (leaves) cut off.
                vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1],
                300 * T,
            )],
            seed,
            ..Scenario::default()
        }
        .run();
        assert!(r.completed >= 200, "seed {seed}: completed {}", r.completed);
    }
}

#[test]
fn all_algorithms_survive_an_adversarial_mix() {
    // Bursty + exponential delays for every algorithm; only quorum-based
    // ones see the grid, the rest ignore it.
    for alg in [
        Algorithm::DelayOptimal,
        Algorithm::Maekawa,
        Algorithm::Lamport,
        Algorithm::RicartAgrawala,
        Algorithm::SuzukiKasami,
        Algorithm::Raymond,
        Algorithm::SinghalDynamic,
        Algorithm::CarvalhoRoucairol,
    ] {
        let r = Scenario {
            n: 9,
            algorithm: alg,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Bursty {
                burst_gap: 60 * T,
                burst_len: 1,
                intra_gap: T,
            },
            horizon: 600 * T,
            delay: DelayModel::Exponential { mean: T },
            hold: DelayModel::Constant(100),
            seed: 99,
            ..Scenario::default()
        }
        .run();
        assert!(
            r.completed >= 60,
            "{}: completed {}",
            alg.label(),
            r.completed
        );
    }
}

#[test]
fn large_system_smoke() {
    // 100 sites, grid quorums (K = 19), moderate load: completes and
    // stays fair at a scale an order of magnitude past the other tests.
    let r = Scenario {
        n: 100,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Poisson { mean_gap: 400 * T },
        horizon: 2_000 * T,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(100),
        seed: 5,
        ..Scenario::default()
    }
    .run();
    assert!(r.completed >= 300, "completed {}", r.completed);
    assert!(r.messages_per_cs.expect("completions") < 8.0 * 18.0);
    // Poisson arrivals give each site only ~5 requests over this horizon,
    // so per-site counts vary by workload chance alone; the bound guards
    // against systematic starvation, not sampling noise.
    assert!(r.fairness.expect("completions") > 0.7);
}
