//! Lock-space integration tests: many named resources multiplexed over
//! ONE site set, with ONE reliable transport and ONE failure detector
//! per link shared by every resource.
//!
//! Safety is enforced continuously per resource by the simulator's
//! monitor — any overlap of two holders of the same resource panics the
//! run — so every test here doubles as a mutual-exclusion check. What
//! the assertions pin on top is the *multiplexing* contract: crashes
//! are fenced once per link (not once per resource), heartbeats and
//! rejoin handshakes scale with links, and every resource observes the
//! same link epoch.

use qmx::core::{DetectorConfig, SiteId, TransportConfig};
use qmx::workload::arrival::{ArrivalProcess, ResourceMix};
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};
use qmx::workload::stats::RunReport;

const T: u64 = 1000;

/// Base multi-resource scenario: 9 sites, grid quorums, Poisson load
/// spread over `resources` locks, full per-link transport + detector.
fn lockspace_scenario(resources: u32) -> Scenario {
    Scenario {
        n: 9,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Poisson { mean_gap: 8 * T },
        horizon: 200 * T,
        transport: Some(TransportConfig::default()),
        detector: Some(DetectorConfig::default()),
        mix: Some(ResourceMix::Zipf { resources, s: 0.8 }),
        seed: 0x10C5,
        ..Scenario::default()
    }
}

/// Per-resource mutual exclusion holds through a crash and a heartbeat
/// rejoin, and the recovered configuration keeps serving the whole lock
/// space (not just the resources that happened to be active before the
/// crash).
#[test]
fn per_resource_mutual_exclusion_survives_crash_and_rejoin() {
    let r = Scenario {
        crashes: vec![(SiteId(2), 40 * T)],
        recoveries: vec![(SiteId(2), 100 * T)],
        ..lockspace_scenario(32)
    }
    .run();
    // The monitor panicking would have failed the test already; pin the
    // run's liveness so a silent wedge cannot pass.
    assert!(r.completed > 50, "only {} completions", r.completed);
    assert!(
        r.resources > 8,
        "load spread over {} resources",
        r.resources
    );
    assert!(r.resource_fairness.is_some());
    assert!(
        r.detector.suspicions > 0,
        "the crash was never suspected: {:?}",
        r.detector
    );
    assert_eq!(
        r.detector.rejoins_sent, 1,
        "one crash must cost exactly one rejoin handshake, \
         whatever the resource count: {:?}",
        r.detector
    );
}

/// The link-epoch fence regression: one crash observed by *all* 32
/// active resources is still fenced once per link. The rejoin handshake
/// runs once per recovering site and is observed at most once per live
/// peer — a per-resource detector would multiply both by the resource
/// count.
#[test]
fn crash_is_fenced_once_per_link_not_once_per_resource() {
    let run = |resources: u32| {
        Scenario {
            crashes: vec![(SiteId(2), 40 * T)],
            recoveries: vec![(SiteId(2), 100 * T)],
            ..lockspace_scenario(resources)
        }
        .run()
    };
    let narrow = run(1);
    let wide = run(32);
    for (label, r) in [("r=1", &narrow), ("r=32", &wide)] {
        assert_eq!(
            r.detector.rejoins_sent, 1,
            "{label}: rejoin handshakes scaled: {:?}",
            r.detector
        );
        assert!(
            r.detector.rejoins_observed <= 8,
            "{label}: more rejoin observations than live peers: {:?}",
            r.detector
        );
    }
    assert_eq!(
        narrow.detector.rejoins_observed, wide.detector.rejoins_observed,
        "the fence was applied per resource, not per link"
    );
}

/// One transport and one detector per link: heartbeats are a pure
/// per-link cost, so a 48-resource run over the same sites and horizon
/// keeps (almost exactly) the heartbeat budget of a 1-resource run. A
/// per-resource detector would multiply it ~48-fold.
#[test]
fn heartbeats_and_transports_are_shared_per_link() {
    let narrow = lockspace_scenario(1).run();
    let wide = lockspace_scenario(48).run();
    assert!(narrow.completed > 50 && wide.completed > 50);
    assert!(wide.resources > 12, "{} resources hit", wide.resources);
    let (b1, b48) = (
        narrow.detector.heartbeats_sent,
        wide.detector.heartbeats_sent,
    );
    assert!(b1 > 0, "detector never beat");
    assert!(
        b48 < b1 * 2,
        "heartbeats scaled with resources ({b1} -> {b48}): \
         the detector is no longer shared per link"
    );
}

/// Scheduling over named resources is deterministic end to end: two
/// identical multi-resource runs agree on every reported number, and a
/// different seed actually changes the execution.
#[test]
fn lockspace_runs_replay_identically() {
    let fields = |r: &RunReport| {
        (
            r.completed,
            r.messages,
            r.resources,
            r.resource_fairness,
            r.detector.heartbeats_sent,
        )
    };
    let a = lockspace_scenario(32).run();
    let b = lockspace_scenario(32).run();
    assert_eq!(fields(&a), fields(&b));
    let c = Scenario {
        seed: 0xD1FF,
        ..lockspace_scenario(32)
    }
    .run();
    assert!(
        fields(&a) != fields(&c),
        "two seeds produced identical multi-resource runs"
    );
}
