//! Regression guards for the hot-path rewrite: a golden scenario whose
//! exact counters are pinned (so a behavioural change in the bitset
//! quorum state, the allocation-free event loop, or the shared-payload
//! transport shows up as a diff, not a silent drift), and a check that
//! the parallel experiment fan-out returns byte-identical results for
//! every worker count.

use qmx::sim::DelayModel;
use qmx::workload::arrival::ArrivalProcess;
use qmx::workload::parallel;
use qmx::workload::replicate::Replicates;
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};

const T: u64 = 1000;

fn golden_scenario() -> Scenario {
    Scenario {
        n: 9,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Poisson { mean_gap: 8 * T },
        horizon: 400 * T,
        delay: DelayModel::Exponential { mean: T },
        hold: DelayModel::Constant(100),
        seed: 2024,
        ..Scenario::default()
    }
}

/// The exact numbers this scenario produced when the golden was recorded.
/// A legitimate behavioural change (new protocol feature, RNG stream
/// change) may update them — an optimisation must not.
#[test]
fn golden_scenario_counters_are_pinned() {
    let r = golden_scenario().run();
    assert_eq!(r.completed, 168);
    assert_eq!(r.messages, 3319);
    assert_eq!(r.sync_samples, 166);
    assert_eq!(
        format!("{:?}", r.by_kind),
        "{Request: 672, Reply: 795, Release: 672, Inquire: 23, Fail: 620, \
         Yield: 19, Transfer: 518}"
    );
    let sync = r.sync_delay_t.expect("contended run has sync samples");
    assert!((sync - 2.3726385542168673).abs() < 1e-9, "sync = {sync}");
    let resp = r.response_time_t.expect("completions exist");
    assert!((resp - 13.282964285714286).abs() < 1e-9, "resp = {resp}");
    assert!(
        (r.throughput_per_t - 0.40355706729314095).abs() < 1e-9,
        "thr = {}",
        r.throughput_per_t
    );
}

/// The experiment fan-out contract: each run is a pure function of
/// (scenario, seed), results come back in seed order, so reports are
/// byte-identical no matter how many worker threads computed them.
#[test]
fn replicates_identical_for_any_worker_count() {
    let base = golden_scenario();
    let seeds = || 1u64..=6;

    let mut debugs = Vec::new();
    for jobs in [1usize, 2, 4, 0] {
        parallel::set_jobs(jobs);
        let reps = Replicates::collect(&base, seeds());
        assert_eq!(reps.runs.len(), 6);
        debugs.push(format!("{:?}", reps.runs));
    }
    parallel::set_jobs(0);

    for other in &debugs[1..] {
        assert_eq!(&debugs[0], other, "worker count changed the results");
    }
}
