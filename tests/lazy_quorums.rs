//! Lazy quorum sources vs. materialized coteries.
//!
//! The large-N engine never builds a `QuorumSystem` — each site pulls its
//! `O(√N)` quorum from a [`GridQuorumSource`] / [`FppQuorumSource`] on
//! demand. These tests pin the contract that makes that substitution safe:
//!
//! 1. at small `N` (where materializing is cheap) the lazy quorum is
//!    **element-for-element identical** to the eager system's, for every
//!    site — so swapping the representations can never change a replay;
//! 2. at large `N` (10⁴, far beyond what the eager path is asked to
//!    handle) sampled pairs of lazily generated quorums still satisfy the
//!    paper's §2 Intersection Property.

use std::collections::BTreeSet;

use proptest::prelude::*;
use qmx_core::{QuorumSource, SiteId};
use qmx_quorum::fpp::{fpp_sites, fpp_system};
use qmx_quorum::grid::grid_system;
use qmx_quorum::{FppQuorumSource, GridQuorumSource};

/// Sorted site lists share an element?
fn intersects(a: &[SiteId], b: &[SiteId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

proptest! {
    /// Lazy grid quorums equal the materialized coterie's at every site.
    #[test]
    fn grid_lazy_matches_eager(n in 1usize..200) {
        let sys = grid_system(n);
        let mut lazy = GridQuorumSource::new(n);
        for s in 0..n {
            let site = SiteId(s as u32);
            let q = lazy
                .quorum_avoiding(site, &BTreeSet::new())
                .expect("no failures: quorum must exist");
            prop_assert_eq!(q.as_slice(), sys.quorum_of(site), "n={} site={}", n, s);
        }
    }

    /// Lazy FPP quorums equal the materialized coterie's at every site,
    /// including the greedy distinct-representative line assignment.
    #[test]
    fn fpp_lazy_matches_eager(qi in 0usize..6) {
        let q = [2usize, 3, 5, 7, 11, 13][qi];
        let sys = fpp_system(q).unwrap();
        let mut lazy = FppQuorumSource::new(q).unwrap();
        for s in 0..sys.n() {
            let site = SiteId(s as u32);
            let quorum = lazy
                .quorum_avoiding(site, &BTreeSet::new())
                .expect("no failures: quorum must exist");
            prop_assert_eq!(quorum.as_slice(), sys.quorum_of(site), "q={} site={}", q, s);
        }
    }

    /// With a handful of failed sites, a reconstructed grid quorum avoids
    /// them and still intersects every intact site's quorum.
    #[test]
    fn grid_lazy_reconstruction_is_safe(
        n in 9usize..150,
        dead in proptest::collection::btree_set(0u32..150, 1..4),
    ) {
        let down: BTreeSet<SiteId> =
            dead.into_iter().filter(|&d| (d as usize) < n).map(SiteId).collect();
        let mut lazy = GridQuorumSource::new(n);
        let quorums: Vec<Vec<SiteId>> = (0..n)
            .filter(|s| !down.contains(&SiteId(*s as u32)))
            .filter_map(|s| lazy.quorum_avoiding(SiteId(s as u32), &down))
            .collect();
        for q in &quorums {
            prop_assert!(q.iter().all(|m| !down.contains(m)), "quorum uses a dead site");
        }
        for a in &quorums {
            for b in &quorums {
                prop_assert!(intersects(a, b), "disjoint quorums {:?} {:?}", a, b);
            }
        }
    }
}

/// At `N = 10⁴` the coterie is never materialized; deterministically
/// sampled pairs of lazily generated quorums must still intersect.
#[test]
fn sampled_pairs_intersect_at_n_10k() {
    let n = 10_000usize;
    let mut grid = GridQuorumSource::new(n);
    // q = 97 is prime: N = 9507 sites, quorum size 98.
    let fpp_q = 97usize;
    let fpp_n = fpp_sites(fpp_q);
    let mut fpp = FppQuorumSource::new(fpp_q).unwrap();

    // Fixed-seed LCG so the sampled pairs are identical run to run.
    let mut state = 0x5EED_CAFE_F00D_1234u64;
    let mut next = move |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % bound as u64) as usize
    };
    let empty = BTreeSet::new();
    for _ in 0..2_000 {
        let (a, b) = (next(n), next(n));
        let qa = grid.quorum_avoiding(SiteId(a as u32), &empty).unwrap();
        let qb = grid.quorum_avoiding(SiteId(b as u32), &empty).unwrap();
        assert!(intersects(&qa, &qb), "grid quorums of {a} and {b} disjoint");
        assert_eq!(qa.len(), grid_quorum_len(n, a), "grid quorum size O(√N)");

        let (a, b) = (next(fpp_n), next(fpp_n));
        let qa = fpp.quorum_avoiding(SiteId(a as u32), &empty).unwrap();
        let qb = fpp.quorum_avoiding(SiteId(b as u32), &empty).unwrap();
        assert!(intersects(&qa, &qb), "fpp quorums of {a} and {b} disjoint");
        assert_eq!(qa.len(), fpp_q + 1, "fpp quorum size q+1");
    }
}

/// Expected size of site `s`'s grid quorum: its row's cells plus its
/// column's cells, minus the shared cell.
fn grid_quorum_len(n: usize, s: usize) -> usize {
    let c = (n as f64).sqrt().ceil() as usize;
    let (row, col) = (s / c, s % c);
    let row_len = (0..c).filter(|j| row * c + j < n).count();
    let col_len = (0..n.div_ceil(c)).filter(|i| i * c + col < n).count();
    row_len + col_len - 1
}
