//! `SiteSet` spill-path coverage at `N > 256`.
//!
//! `SiteSet` stores site ids inline up to 256 and spills to a heap vector
//! of words beyond that. Every unit test of the protocol runs far below
//! the threshold, so the spill arm of each operation was exercised only
//! by `SiteSet`'s own tests — never under a full protocol. These runs put
//! 300 sites on wheel quorums (hub site 0, quorum size 2 — the cheapest
//! construction at this scale) so that grant/reclaim bookkeeping
//! (`req_set_bits`, `replied`), failure tracking (`known_failed`,
//! `confirmed_failed`), rejoin handshakes (`rejoin_awaiting`), and the
//! simulator's own crash bitset all carry ids above 256.

use qmx::core::{
    Config, DelayOptimal, Detector, DetectorConfig, Reliable, SiteId, TransportConfig,
};
use qmx::quorum::wheel::wheel_system;
use qmx::sim::{SimConfig, Simulator};

const N: usize = 300;
const T: u64 = 1000;

fn wheel_sites(n: usize) -> Vec<DelayOptimal> {
    let sys = wheel_system(n);
    (0..n)
        .map(|i| {
            let me = SiteId(i as u32);
            DelayOptimal::new(me, sys.quorum_of(me).to_vec(), Config::default())
        })
        .collect()
}

#[test]
fn contended_grants_above_the_inline_boundary() {
    // Forty high-id spokes contend for the hub's single permission at
    // once: the hub's arbitration (inquire/fail/yield/transfer included)
    // and each requester's own request/reply sets run entirely on ids
    // that straddle the 256-word boundary.
    let mut sim = Simulator::new(wheel_sites(N), SimConfig::default());
    let sites: Vec<u32> = (260..300).collect();
    for (k, &s) in sites.iter().enumerate() {
        sim.schedule_request(SiteId(s), k as u64 * 17);
    }
    sim.run_to_quiescence(10_000 * T);
    // Everyone got the CS exactly once; the simulator's monitor panics on
    // any mutual exclusion violation along the way.
    assert_eq!(sim.metrics().completed_cs(), sites.len());
}

#[test]
fn crash_confirm_and_rejoin_above_the_inline_boundary() {
    // Full detector stack at N = 300. The hub heartbeat-monitors every
    // spoke and each spoke monitors the hub — suspicion of a high-id
    // spoke therefore lands in the hub's `known_failed`/`confirmed_failed`
    // sets past the spill boundary, and the recovered spoke's rejoin
    // handshake walks `rejoin_awaiting` the same way.
    let sys = wheel_system(N);
    let spokes: Vec<SiteId> = (1..N).map(|i| SiteId(i as u32)).collect();
    let mut sim: Simulator<Detector<Reliable<DelayOptimal>>> = Simulator::new(
        (0..N)
            .map(|i| {
                let me = SiteId(i as u32);
                let inner = Reliable::new(
                    DelayOptimal::new(me, sys.quorum_of(me).to_vec(), Config::default()),
                    TransportConfig::default(),
                );
                let peers = if i == 0 {
                    spokes.clone()
                } else {
                    vec![SiteId(0)]
                };
                Detector::new(inner, peers, DetectorConfig::default())
            })
            .collect(),
        SimConfig {
            oracle_notices: false,
            ..SimConfig::default()
        },
    );

    // A first wave of grants from both sides of the boundary...
    for (k, s) in [299u32, 280, 257, 5, 0].into_iter().enumerate() {
        sim.schedule_request(SiteId(s), T + k as u64 * 500);
    }
    // ...then site 299 crashes, stays silent long enough for the hub to
    // suspect (hb_timeout 8T) and confirm the failure (fail_confirm 32T),
    // recovers, and completes another round after the rejoin handshake.
    sim.schedule_crash(SiteId(299), 40 * T);
    sim.schedule_recovery(SiteId(299), 100 * T);
    for (k, s) in [299u32, 280, 0].into_iter().enumerate() {
        sim.schedule_request(SiteId(s), 130 * T + k as u64 * 500);
    }
    sim.run_to_quiescence(200 * T);

    assert!(!sim.is_crashed(SiteId(299)));
    assert_eq!(sim.metrics().completed_cs(), 8, "both waves completed");
    let d = sim.metrics().detector();
    assert!(d.suspicions >= 1, "hub never suspected site 299: {d:?}");
    assert_eq!(d.false_suspicions, 0, "a real crash: {d:?}");
    assert!(d.failures_confirmed >= 1, "confirm lease never ran: {d:?}");
    assert_eq!(d.rejoins_sent, 1, "one recovery announcement: {d:?}");
    assert!(d.rejoins_observed >= 1, "the hub saw the rejoin: {d:?}");
    // The recovered spoke's second round really happened after recovery.
    let second = sim
        .metrics()
        .records()
        .iter()
        .filter(|r| r.site == SiteId(299))
        .map(|r| r.entered_at)
        .max()
        .expect("site 299 completed");
    assert!(second > 100 * T, "entered at {second} before recovering");
}
