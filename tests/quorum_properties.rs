//! Property-based tests of the coterie laws (§2) across every quorum
//! construction and admissible universe size.

use proptest::prelude::*;
use qmx::quorum::{fpp, grid, gridset, hqc, majority, rst, tree, QuorumSystem};
use std::collections::BTreeSet;

fn assert_coterie(sys: &QuorumSystem, label: &str) {
    assert!(
        sys.verify_intersection().is_ok(),
        "{label}: intersection violated"
    );
    for (i, q) in sys.quorums().iter().enumerate() {
        assert!(!q.is_empty(), "{label}: site {i} has an empty quorum");
        assert!(
            q.iter().all(|s| s.index() < sys.n()),
            "{label}: site {i} references outside the universe"
        );
    }
}

proptest! {
    #[test]
    fn grid_is_a_coterie_for_any_n(n in 1usize..=120) {
        let sys = grid::grid_system(n);
        assert_coterie(&sys, &format!("grid n={n}"));
        // K <= 2*ceil(sqrt(n)) - 1 + 1 slack for partial rows.
        let bound = 2.0 * (n as f64).sqrt().ceil() + 1.0;
        prop_assert!(sys.max_quorum_size() as f64 <= bound);
    }

    #[test]
    fn majority_is_a_coterie_for_any_n(n in 1usize..=80) {
        let sys = majority::majority_system(n);
        assert_coterie(&sys, &format!("majority n={n}"));
        prop_assert_eq!(sys.max_quorum_size(), n / 2 + 1);
    }

    #[test]
    fn gridset_and_rst_are_coteries(groups in 1usize..=6, g in 1usize..=6) {
        let n = groups * g;
        let gs = gridset::gridset_system(n, g).expect("divisible by construction");
        assert_coterie(&gs, &format!("grid-set n={n} g={g}"));
        let rs = rst::rst_system(n, g).expect("divisible by construction");
        assert_coterie(&rs, &format!("rst n={n} g={g}"));
    }

    #[test]
    fn tree_quorums_under_random_failures_intersect(
        d in 2u32..=4,
        failures in proptest::collection::btree_set(0u32..15, 0..5),
        steer_a in any::<u64>(),
        steer_b in any::<u64>(),
    ) {
        let n = (1usize << d) - 1;
        let down: BTreeSet<qmx::core::SiteId> = failures
            .into_iter()
            .filter(|&f| (f as usize) < n)
            .map(qmx::core::SiteId)
            .collect();
        // Quorums computed under (possibly different) steering, same
        // failure set, must intersect pairwise — and also intersect the
        // failure-free quorums (mixed-epoch safety).
        let a = tree::tree_quorum(n, &down, steer_a);
        let b = tree::tree_quorum(n, &down, steer_b);
        let clean = tree::tree_quorum(n, &BTreeSet::new(), steer_a).expect("no failures");
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert!(a.iter().any(|x| b.contains(x)), "{a:?} vs {b:?}");
            prop_assert!(a.iter().any(|x| clean.contains(x)), "{a:?} vs clean {clean:?}");
            // No failed member ever appears.
            prop_assert!(a.iter().all(|x| !down.contains(x)));
        }
    }
}

#[test]
fn fpp_and_hqc_admissible_sizes() {
    for q in [2usize, 3, 5, 7, 11] {
        let sys = fpp::fpp_system(q).expect("prime");
        assert_coterie(&sys, &format!("fpp q={q}"));
        assert!(sys.verify_minimality().is_ok(), "fpp q={q} minimality");
    }
    for d in 0..5u32 {
        let n = 3usize.pow(d);
        let sys = hqc::hqc_system(n).expect("power of three");
        assert_coterie(&sys, &format!("hqc n={n}"));
    }
}

#[test]
fn constructions_trade_size_for_availability() {
    // The §6 trade-off, end to end: tree quorums are the smallest, grid in
    // the middle, majority the largest.
    let tree = tree::tree_system(15).unwrap();
    let grid = grid::grid_system(16);
    let maj = majority::majority_system(15);
    assert!(tree.mean_quorum_size() < grid.mean_quorum_size());
    assert!(grid.mean_quorum_size() < maj.mean_quorum_size());
}
