//! Structural-invariant checks: after every kind of run — contended,
//! randomized, crashed, partitioned — every site's internal state must
//! satisfy `DelayOptimal::check_invariants` (lock/queue exclusivity,
//! phase/permission consistency, transfer obligations backed by held
//! permissions).

use qmx::core::{Config, DelayOptimal, SiteId};
use qmx::quorum::grid::grid_system;
use qmx::sim::{DelayModel, SimConfig, Simulator};

const T: u64 = 1000;

fn grid_sim(n: usize, cfg: SimConfig) -> Simulator<DelayOptimal> {
    let sys = grid_system(n);
    Simulator::new(
        (0..n)
            .map(|i| {
                DelayOptimal::new(
                    SiteId(i as u32),
                    sys.quorum_of(SiteId(i as u32)).to_vec(),
                    Config::default(),
                )
            })
            .collect(),
        cfg,
    )
}

fn assert_all(sim: &Simulator<DelayOptimal>, n: usize, label: &str) {
    for i in 0..n {
        if let Err(msg) = sim.site(SiteId(i as u32)).check_invariants() {
            panic!("{label}: {msg}");
        }
    }
}

#[test]
fn invariants_hold_at_quiescence_across_seeds() {
    for seed in 0..10 {
        let mut sim = grid_sim(
            9,
            SimConfig {
                delay: DelayModel::Exponential { mean: T },
                hold: DelayModel::Constant(150),
                seed,
                ..SimConfig::default()
            },
        );
        for i in 0..9u32 {
            for r in 0..8u64 {
                sim.schedule_request(SiteId(i), r * 3 * T + u64::from(i) * 100);
            }
        }
        sim.run_to_quiescence(10_000 * T);
        assert_all(&sim, 9, &format!("seed {seed}"));
    }
}

#[test]
fn invariants_hold_mid_run() {
    // Stop at several horizons mid-contention; invariants are inter-event
    // properties, so they must hold whenever the event loop is paused...
    // with the caveat that a paused run may have messages in flight (that
    // is fine: the invariants are per-site structural, not global).
    let mut sim = grid_sim(16, SimConfig::default());
    for i in 0..16u32 {
        for r in 0..5u64 {
            sim.schedule_request(SiteId(i), r * 2 * T + u64::from(i) * 50);
        }
    }
    for horizon in [T, 3 * T, 7 * T, 20 * T, 100 * T] {
        sim.run_to_quiescence(horizon);
        assert_all(&sim, 16, &format!("horizon {horizon}"));
    }
}

#[test]
fn invariants_hold_after_crash_and_partition() {
    use qmx::workload::arrival::ArrivalProcess;
    use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};
    // Use the scenario runner for the FT machinery, then repeat the
    // low-level run here for direct state access.
    let r = Scenario {
        n: 7,
        algorithm: Algorithm::DelayOptimalFtTree,
        quorum: QuorumSpec::Tree,
        arrivals: ArrivalProcess::Periodic {
            period: 15 * T,
            stagger: 800,
        },
        horizon: 300 * T,
        crashes: vec![(SiteId(2), 60 * T)],
        partitions: vec![(vec![0, 0, 0, 0, 0, 1, 1], 150 * T)],
        ..Scenario::default()
    }
    .run();
    assert!(r.completed > 0);

    // Direct variant with fixed quorums + a crash: survivors' invariants.
    let mut sim = grid_sim(
        9,
        SimConfig {
            detect_delay: 2 * T,
            ..SimConfig::default()
        },
    );
    for i in 0..9u32 {
        for r in 0..6u64 {
            sim.schedule_request(SiteId(i), r * 10 * T + u64::from(i) * 300);
        }
    }
    sim.schedule_crash(SiteId(4), 25 * T);
    sim.run_to_quiescence(10_000 * T);
    for i in 0..9u32 {
        if i == 4 {
            continue; // the dead site's state is frozen, not maintained
        }
        if let Err(msg) = sim.site(SiteId(i)).check_invariants() {
            panic!("after crash: {msg}");
        }
    }
}

#[test]
fn invariants_hold_in_the_threaded_runtime_outcome() {
    // The live runtime consumes the sites; validate indirectly by running
    // the same workload under the sim and checking, then trusting the
    // shared state machine. (The runtime's own monitor covers safety.)
    let mut sim = grid_sim(9, SimConfig::default());
    for i in 0..9u32 {
        sim.schedule_request(SiteId(i), u64::from(i) * 10);
    }
    sim.run_to_quiescence(10_000 * T);
    assert_all(&sim, 9, "runtime-equivalent workload");
}
