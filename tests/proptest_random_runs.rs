//! Property-based integration tests: random workloads, delays, seeds and
//! crash schedules. Safety is enforced by the simulator's monitor (it
//! panics if two sites ever overlap in the CS); liveness is asserted as
//! "every run quiesces and serves a sensible number of requests".

use proptest::prelude::*;
use qmx::core::{DetectorConfig, LossModel, SiteId, TransportConfig};
use qmx::sim::DelayModel;
use qmx::workload::arrival::ArrivalProcess;
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};

const T: u64 = 1000;

fn arb_delay() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        (100u64..3000).prop_map(DelayModel::Constant),
        (1u64..500, 500u64..4000).prop_map(|(lo, hi)| DelayModel::Uniform { lo, hi }),
        (100u64..2000).prop_map(|mean| DelayModel::Exponential { mean }),
    ]
}

fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (2u64..80).prop_map(|g| ArrivalProcess::Poisson { mean_gap: g * T }),
        (1u64..40, 0u64..2000).prop_map(|(p, s)| ArrivalProcess::Periodic {
            period: p * T,
            stagger: s,
        }),
        (200u64..5000).prop_map(|g| ArrivalProcess::Saturated { tick_gap: g }),
    ]
}

fn arb_loss() -> impl Strategy<Value = LossModel> {
    prop_oneof![
        (1u64..=20, 0u64..=10).prop_map(|(drop, dup)| LossModel::Iid {
            drop: drop as f64 / 100.0,
            dup: dup as f64 / 100.0,
        }),
        (1u64..=8, 30u64..=80, 50u64..=90).prop_map(|(p_bad, p_good, drop_bad)| {
            LossModel::Burst {
                p_bad: p_bad as f64 / 100.0,
                p_good: p_good as f64 / 100.0,
                drop_good: 0.01,
                drop_bad: drop_bad as f64 / 100.0,
                dup: 0.02,
            }
        }),
    ]
}

/// Replays the historical regression from `proptest_random_runs.proptest-regressions`
/// (`shrinks to delay = Constant(621), arrivals = Poisson { mean_gap: 12000 },
/// seed = 3898076815692099039`) explicitly, across every grid size the
/// property draws from, so the case stays pinned even though the vendored
/// proptest stand-in cannot decode upstream's hashed `cc` entries.
#[test]
fn regression_constant_621_poisson_12000() {
    for n in [4usize, 9, 16, 25] {
        let r = Scenario {
            n,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Poisson { mean_gap: 12 * T },
            horizon: 120 * T,
            delay: DelayModel::Constant(621),
            hold: DelayModel::Constant(100),
            seed: 3898076815692099039,
            ..Scenario::default()
        }
        .run();
        assert!(r.completed > 0, "n = {n}: no request completed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// The delay-optimal protocol is safe and quiesces under arbitrary
    /// workloads, delay models and seeds, on grid quorums.
    #[test]
    fn delay_optimal_random_runs(
        delay in arb_delay(),
        arrivals in arb_arrivals(),
        seed in any::<u64>(),
        n in prop_oneof![Just(4usize), Just(9), Just(16), Just(25)],
    ) {
        let r = Scenario {
            n,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals,
            horizon: 120 * T,
            delay,
            hold: DelayModel::Constant(100),
            seed,
            ..Scenario::default()
        }.run();
        // At least one request completes on every non-empty schedule, and
        // the run terminated (run() returned) without a safety panic.
        prop_assert!(r.completed > 0);
    }

    /// Maekawa under the same randomization (regression guard for the
    /// baseline used in every comparison).
    #[test]
    fn maekawa_random_runs(
        delay in arb_delay(),
        arrivals in arb_arrivals(),
        seed in any::<u64>(),
    ) {
        let r = Scenario {
            n: 9,
            algorithm: Algorithm::Maekawa,
            quorum: QuorumSpec::Grid,
            arrivals,
            horizon: 120 * T,
            delay,
            hold: DelayModel::Constant(100),
            seed,
            ..Scenario::default()
        }.run();
        prop_assert!(r.completed > 0);
    }

    /// The fault-tolerant variant stays safe and live under a random crash.
    #[test]
    fn ft_random_crash(
        delay in arb_delay(),
        seed in any::<u64>(),
        victim in 0u32..7,
        crash_t in 1u64..200,
    ) {
        let r = Scenario {
            n: 7,
            algorithm: Algorithm::DelayOptimalFtTree,
            quorum: QuorumSpec::Tree,
            arrivals: ArrivalProcess::Periodic { period: 10 * T, stagger: 777 },
            horizon: 250 * T,
            delay,
            hold: DelayModel::Constant(100),
            crashes: vec![(SiteId(victim), crash_t * T)],
            seed,
            ..Scenario::default()
        }.run();
        // Leaf-set crashes can never block everyone: 6 live sites and a
        // reconstructible coterie guarantee continued service.
        prop_assert!(r.completed > 0);
    }

    /// Safety and liveness over lossy links: randomized loss/duplication
    /// models (up to 20% i.i.d. drop, or Gilbert–Elliott bursts) plus a
    /// transient partition that heals, with every site wrapped in the
    /// reliable transport. Mutual exclusion is checked by the simulator's
    /// monitor on every event. Each site issues exactly one request (the
    /// simulator drops arrivals that land while a site is still blocked,
    /// so multi-round workloads can't assert exact counts under random
    /// blocking windows); with one request per site the assertion is
    /// exact: under a healed partition and a retry budget far exceeding
    /// the outage, every request must complete.
    #[test]
    fn lossy_links_with_transient_partition(
        loss in arb_loss(),
        seed in any::<u64>(),
        cut_at in 10u64..60,
        cut_len in 5u64..40,
    ) {
        let r = Scenario {
            n: 9,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            // period > horizon: exactly one arrival per site.
            arrivals: ArrivalProcess::Periodic { period: 200 * T, stagger: 3_000 },
            horizon: 120 * T,
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(100),
            // Site 8 transiently cut off; failure detection disabled so
            // recovery is purely retransmission across the healed link.
            partitions: vec![(vec![0, 0, 0, 0, 0, 0, 0, 0, 1], cut_at * T)],
            heals: vec![(cut_at + cut_len) * T],
            loss,
            transport: Some(TransportConfig::default()),
            detect_delay: u64::MAX / 2,
            seed,
            ..Scenario::default()
        }.run();
        prop_assert_eq!(r.completed, 9);
        // Any dropped packet (data or ack) must provoke a retransmission.
        if r.injected_drops > 0 {
            prop_assert!(r.transport.retransmissions > 0);
        }
        prop_assert_eq!(r.transport.gave_up, 0);
    }

    /// Heartbeat-detector safety sweep: a random site crashes at a random
    /// time and recovers a random interval later, with randomized
    /// detector timing — all failure handling is heartbeat-driven (no
    /// oracle notices). The simulator's monitor panics if the suspicion /
    /// restoration / rejoin churn ever lets two sites into the CS, so
    /// safety is checked on every event of every case; the explicit
    /// assertions pin the rejoin handshake actually running.
    #[test]
    fn detector_random_crash_recovery(
        seed in any::<u64>(),
        victim in 0u32..3,
        crash_t in 1u64..30,
        gap_t in 10u64..60,
        hb_timeout_t in 6u64..14,
    ) {
        let r = Scenario {
            n: 3,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::All,
            arrivals: ArrivalProcess::Periodic { period: 2 * T, stagger: 333 },
            horizon: 120 * T,
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(100),
            crashes: vec![(SiteId(victim), crash_t * T)],
            recoveries: vec![(SiteId(victim), (crash_t + gap_t) * T)],
            transport: Some(TransportConfig {
                rto_initial: 8 * T,
                rto_max: 64 * T,
                max_retries: 40,
            }),
            detector: Some(DetectorConfig {
                hb_interval: 2 * T,
                hb_timeout: hb_timeout_t * T,
                rejoin_wait: 5 * T,
                fail_confirm: 32 * T,
            }),
            seed,
            ..Scenario::default()
        }.run();
        prop_assert!(r.completed > 0);
        prop_assert_eq!(r.detector.rejoins_sent, 1);
        // The two survivors answer the rejoin announcement.
        prop_assert!(r.detector.rejoins_observed >= 2);
    }

    /// Token and broadcast baselines under random delays (they share the
    /// simulator and must quiesce cleanly too).
    #[test]
    fn baselines_random_runs(
        delay in arb_delay(),
        seed in any::<u64>(),
        alg in prop_oneof![
            Just(Algorithm::Lamport),
            Just(Algorithm::RicartAgrawala),
            Just(Algorithm::SuzukiKasami),
            Just(Algorithm::Raymond),
            Just(Algorithm::SinghalDynamic),
        ],
    ) {
        let r = Scenario {
            n: 8,
            algorithm: alg,
            quorum: QuorumSpec::All,
            arrivals: ArrivalProcess::Poisson { mean_gap: 15 * T },
            horizon: 150 * T,
            delay,
            hold: DelayModel::Constant(100),
            seed,
            ..Scenario::default()
        }.run();
        prop_assert!(r.completed > 0);
    }
}
