//! Property-based integration tests: random workloads, delays, seeds and
//! crash schedules. Safety is enforced by the simulator's monitor (it
//! panics if two sites ever overlap in the CS); liveness is asserted as
//! "every run quiesces and serves a sensible number of requests".

use proptest::prelude::*;
use qmx::core::SiteId;
use qmx::sim::DelayModel;
use qmx::workload::arrival::ArrivalProcess;
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};

const T: u64 = 1000;

fn arb_delay() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        (100u64..3000).prop_map(DelayModel::Constant),
        (1u64..500, 500u64..4000).prop_map(|(lo, hi)| DelayModel::Uniform { lo, hi }),
        (100u64..2000).prop_map(|mean| DelayModel::Exponential { mean }),
    ]
}

fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (2u64..80).prop_map(|g| ArrivalProcess::Poisson { mean_gap: g * T }),
        (1u64..40, 0u64..2000).prop_map(|(p, s)| ArrivalProcess::Periodic {
            period: p * T,
            stagger: s,
        }),
        (200u64..5000).prop_map(|g| ArrivalProcess::Saturated { tick_gap: g }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// The delay-optimal protocol is safe and quiesces under arbitrary
    /// workloads, delay models and seeds, on grid quorums.
    #[test]
    fn delay_optimal_random_runs(
        delay in arb_delay(),
        arrivals in arb_arrivals(),
        seed in any::<u64>(),
        n in prop_oneof![Just(4usize), Just(9), Just(16), Just(25)],
    ) {
        let r = Scenario {
            n,
            algorithm: Algorithm::DelayOptimal,
            quorum: QuorumSpec::Grid,
            arrivals,
            horizon: 120 * T,
            delay,
            hold: DelayModel::Constant(100),
            seed,
            ..Scenario::default()
        }.run();
        // At least one request completes on every non-empty schedule, and
        // the run terminated (run() returned) without a safety panic.
        prop_assert!(r.completed > 0);
    }

    /// Maekawa under the same randomization (regression guard for the
    /// baseline used in every comparison).
    #[test]
    fn maekawa_random_runs(
        delay in arb_delay(),
        arrivals in arb_arrivals(),
        seed in any::<u64>(),
    ) {
        let r = Scenario {
            n: 9,
            algorithm: Algorithm::Maekawa,
            quorum: QuorumSpec::Grid,
            arrivals,
            horizon: 120 * T,
            delay,
            hold: DelayModel::Constant(100),
            seed,
            ..Scenario::default()
        }.run();
        prop_assert!(r.completed > 0);
    }

    /// The fault-tolerant variant stays safe and live under a random crash.
    #[test]
    fn ft_random_crash(
        delay in arb_delay(),
        seed in any::<u64>(),
        victim in 0u32..7,
        crash_t in 1u64..200,
    ) {
        let r = Scenario {
            n: 7,
            algorithm: Algorithm::DelayOptimalFtTree,
            quorum: QuorumSpec::Tree,
            arrivals: ArrivalProcess::Periodic { period: 10 * T, stagger: 777 },
            horizon: 250 * T,
            delay,
            hold: DelayModel::Constant(100),
            crashes: vec![(SiteId(victim), crash_t * T)],
            seed,
            ..Scenario::default()
        }.run();
        // Leaf-set crashes can never block everyone: 6 live sites and a
        // reconstructible coterie guarantee continued service.
        prop_assert!(r.completed > 0);
    }

    /// Token and broadcast baselines under random delays (they share the
    /// simulator and must quiesce cleanly too).
    #[test]
    fn baselines_random_runs(
        delay in arb_delay(),
        seed in any::<u64>(),
        alg in prop_oneof![
            Just(Algorithm::Lamport),
            Just(Algorithm::RicartAgrawala),
            Just(Algorithm::SuzukiKasami),
            Just(Algorithm::Raymond),
            Just(Algorithm::SinghalDynamic),
        ],
    ) {
        let r = Scenario {
            n: 8,
            algorithm: alg,
            quorum: QuorumSpec::All,
            arrivals: ArrivalProcess::Poisson { mean_gap: 15 * T },
            horizon: 150 * T,
            delay,
            hold: DelayModel::Constant(100),
            seed,
            ..Scenario::default()
        }.run();
        prop_assert!(r.completed > 0);
    }
}
