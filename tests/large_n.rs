//! Large-N engine coverage: the configurations the timer wheel, the
//! hot/cold protocol split, the payload slab, and the lazy quorum sources
//! exist for.
//!
//! The golden test pins exact event and message counters for a 1000-site
//! run with the failure detector enabled and one crash/rejoin cycle,
//! executed under all three schedulers (binary heap, calendar queue, timer
//! wheel): any divergence between schedulers, and any change to the
//! counters themselves, fails loudly.
//!
//! The `#[ignore]` tests are the scale smoke runs (`N = 10⁵` uncontended,
//! `N = 10⁴` contended) exercised by CI's `large-n-smoke` job in release
//! mode under a timeout; they are too slow for the debug-mode suite.

use qmx::core::{
    Config, DelayOptimal, Detector, DetectorConfig, Reliable, SiteId, TransportConfig,
};
use qmx::quorum::GridQuorumSource;
use qmx::sim::{SchedulerKind, SimConfig, Simulator};

const T: u64 = 1000;

/// `n` lazily-initialized grid-quorum sites wrapped in the reliable
/// transport and the heartbeat failure detector. Monitoring is
/// hub-and-spoke (site 0 monitors the spokes, each spoke monitors site 0)
/// over every 10th site plus the crash victim 999: a full mesh would be
/// `O(n²)` heartbeats per interval and even the full hub-and-spoke is
/// dominated by heartbeat events at this scale — the sparse topology
/// keeps the debug-mode run fast while still driving suspicion,
/// confirmation, and the rejoin handshake through real heartbeats.
fn detector_grid_sites(n: usize) -> Vec<Detector<Reliable<DelayOptimal>>> {
    let monitored: Vec<SiteId> = (1..n)
        .filter(|i| i % 10 == 0 || *i == 999)
        .map(|i| SiteId(i as u32))
        .collect();
    (0..n)
        .map(|i| {
            let me = SiteId(i as u32);
            let inner = Reliable::new(
                DelayOptimal::with_lazy_quorum_source(
                    me,
                    Config::default(),
                    Box::new(GridQuorumSource::new(n)),
                ),
                TransportConfig::default(),
            );
            let peers = if i == 0 {
                monitored.clone()
            } else if monitored.contains(&me) {
                vec![SiteId(0)]
            } else {
                Vec::new()
            };
            Detector::new(inner, peers, DetectorConfig::default())
        })
        .collect()
}

/// Runs the golden 1000-site scenario under one scheduler and returns
/// `(events processed, completed CS, total messages, metrics debug)`.
fn golden_run(scheduler: SchedulerKind) -> (usize, usize, u64, String) {
    let n = 1000usize;
    let mut sim = Simulator::new(
        detector_grid_sites(n),
        SimConfig {
            oracle_notices: false,
            scheduler,
            seed: 77,
            ..SimConfig::default()
        },
    );
    // First wave: sites off row 31 and column 7 (their quorums avoid site
    // 999, which is about to crash), with overlapping rows/columns so the
    // wave actually contends.
    for (k, s) in [0u32, 33, 66, 132, 330].into_iter().enumerate() {
        sim.schedule_request(SiteId(s), T + k as u64 * 500);
    }
    // Site 999 crashes, stays silent long enough for the hub to suspect
    // and confirm, then recovers and completes a request of its own.
    sim.schedule_crash(SiteId(999), 40 * T);
    sim.schedule_recovery(SiteId(999), 100 * T);
    for (k, s) in [999u32, 528, 0].into_iter().enumerate() {
        sim.schedule_request(SiteId(s), 130 * T + k as u64 * 500);
    }
    let events = sim.run_to_quiescence(200 * T);
    let m = sim.metrics();
    let d = m.detector();
    assert!(d.suspicions >= 1, "hub never suspected site 999: {d:?}");
    assert!(d.failures_confirmed >= 1, "confirm lease never ran: {d:?}");
    assert!(d.rejoins_observed >= 1, "the hub missed the rejoin: {d:?}");
    (
        events,
        m.completed_cs(),
        m.total_messages(),
        format!("{m:?}"),
    )
}

#[test]
fn golden_counters_n1000_detector_crash_rejoin_all_schedulers() {
    let heap = golden_run(SchedulerKind::Heap);
    for kind in [SchedulerKind::Calendar, SchedulerKind::Wheel] {
        let other = golden_run(kind);
        assert_eq!(heap, other, "replay diverged under {kind:?}");
    }
    let (events, completed, messages, _) = heap;
    assert_eq!(completed, 8, "both request waves completed");
    // Golden counters: any change to protocol, detector, scheduler, or
    // fault-path behavior at this scale must be a conscious one.
    assert_eq!(events, 122_550);
    assert_eq!(messages, 22_390);
}

/// `N = 10⁵` uncontended: 100 spread-out requests over lazily constructed
/// grid quorums (~633 members each). Release-mode CI bounds the wall
/// clock; the assertion here is that the run completes and stays exact.
#[test]
#[ignore = "scale smoke: run in release via CI large-n-smoke"]
fn uncontended_n_100k_completes() {
    let n = 100_000usize;
    let mut sim = Simulator::new(
        (0..n)
            .map(|i| {
                DelayOptimal::with_lazy_quorum_source(
                    SiteId(i as u32),
                    Config::default(),
                    Box::new(GridQuorumSource::new(n)),
                )
            })
            .collect::<Vec<_>>(),
        SimConfig {
            seed: 9,
            ..SimConfig::default()
        },
    );
    // 100 requesters scattered across the grid, far enough apart in time
    // that each completes before the next starts: pure protocol + engine
    // overhead, no contention.
    for k in 0..100u64 {
        sim.schedule_request(SiteId((k * 997) as u32), k * 10 * T);
    }
    sim.run_to_quiescence(2_000 * T);
    assert_eq!(sim.metrics().completed_cs(), 100);
}

/// `N = 10⁴` contended: 200 sites race in overlapping windows.
#[test]
#[ignore = "scale smoke: run in release via CI large-n-smoke"]
fn contended_n_10k_completes() {
    let n = 10_000usize;
    let mut sim = Simulator::new(
        (0..n)
            .map(|i| {
                DelayOptimal::with_lazy_quorum_source(
                    SiteId(i as u32),
                    Config::default(),
                    Box::new(GridQuorumSource::new(n)),
                )
            })
            .collect::<Vec<_>>(),
        SimConfig {
            seed: 10,
            ..SimConfig::default()
        },
    );
    for k in 0..200u64 {
        sim.schedule_request(SiteId((k * 47) as u32), T + k * 50);
    }
    sim.run_to_quiescence(10_000 * T);
    assert_eq!(sim.metrics().completed_cs(), 200);
}
