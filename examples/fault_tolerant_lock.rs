//! Fault tolerance (§6): a distributed lock service that survives a site
//! crash by reconstructing tree quorums around the failure.
//!
//! Seven sites serve lock requests; at t = 200T site 1 (an interior tree
//! node, member of several quorums) crashes. Sites whose quorums contained
//! it rebuild their quorums (Agrawal–El Abbadi substitution paths) and the
//! service keeps going. For contrast the same run with fixed quorums shows
//! the dependent sites going dark.
//!
//! ```sh
//! cargo run --example fault_tolerant_lock
//! ```

use qmx::core::{Config, DelayOptimal, SiteId};
use qmx::quorum::tree::{tree_system, TreeQuorumSource};
use qmx::sim::{DelayModel, SimConfig, Simulator};

const T: u64 = 1000;

fn schedule(sim: &mut Simulator<DelayOptimal>, n: usize, horizon: u64) {
    // Each site asks for the lock every 20T, staggered.
    for i in 0..n {
        let mut t = (i as u64) * T;
        while t < horizon {
            sim.schedule_request(SiteId(i as u32), t);
            t += 20 * T;
        }
    }
}

fn run(ft: bool, n: usize, crash_at: u64, horizon: u64) -> (usize, usize, Vec<usize>) {
    let sites: Vec<DelayOptimal> = (0..n)
        .map(|i| {
            if ft {
                DelayOptimal::with_quorum_source(
                    SiteId(i as u32),
                    Config::default(),
                    Box::new(TreeQuorumSource::new(n).expect("n = 2^d - 1")),
                )
            } else {
                let sys = tree_system(n).expect("n = 2^d - 1");
                DelayOptimal::new(
                    SiteId(i as u32),
                    sys.quorum_of(SiteId(i as u32)).to_vec(),
                    Config::default(),
                )
            }
        })
        .collect();
    let mut sim = Simulator::new(
        sites,
        SimConfig {
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(100),
            detect_delay: 2 * T,
            ..SimConfig::default()
        },
    );
    schedule(&mut sim, n, horizon);
    sim.schedule_crash(SiteId(1), crash_at);
    sim.run_to_quiescence(horizon * 4);

    let before = sim
        .metrics()
        .records()
        .iter()
        .filter(|r| r.entered_at < crash_at)
        .count();
    let after = sim.metrics().completed_cs() - before;
    let mut per_site = vec![0usize; n];
    for r in sim.metrics().records() {
        if r.entered_at >= crash_at {
            per_site[r.site.index()] += 1;
        }
    }
    (before, after, per_site)
}

fn main() {
    let n = 7;
    let crash_at = 200 * T;
    let horizon = 600 * T;

    println!("lock service over {n} sites, site 1 crashes at t = 200T\n");
    for (label, ft) in [
        ("fault-tolerant (tree reconstruction)", true),
        ("fixed quorums", false),
    ] {
        let (before, after, per_site) = run(ft, n, crash_at, horizon);
        println!("{label}:");
        println!("  lock grants before crash : {before}");
        println!("  lock grants after crash  : {after}");
        println!("  per-site grants after    : {per_site:?}  (site 1 is dead)");
        let starved: Vec<usize> = per_site
            .iter()
            .enumerate()
            .filter(|&(i, &c)| i != 1 && c == 0)
            .map(|(i, _)| i)
            .collect();
        if starved.is_empty() {
            println!("  every live site kept being served\n");
        } else {
            println!("  sites starved by the dead quorum member: {starved:?}\n");
        }
    }
}
