//! The protocol outside the simulator: 9 OS threads, real channels, real
//! latency, each thread grabbing the distributed lock several times.
//!
//! ```sh
//! cargo run --example live_threads
//! ```

use qmx::core::{Config, DelayOptimal, SiteId};
use qmx::quorum::grid::grid_system;
use qmx::runtime::{messages_per_cs, run_cluster, NetOptions};
use std::time::Duration;

fn main() {
    let n = 9usize;
    let rounds = 5usize;
    let quorums = grid_system(n);
    let sites: Vec<DelayOptimal> = (0..n)
        .map(|i| {
            DelayOptimal::new(
                SiteId(i as u32),
                quorums.quorum_of(SiteId(i as u32)).to_vec(),
                Config::default(),
            )
        })
        .collect();

    println!("launching {n} site threads, {rounds} lock acquisitions each...");
    let out = run_cluster(
        sites,
        NetOptions {
            latency: Duration::from_millis(2),
            hold: Duration::from_millis(1),
            rounds,
            think: Duration::from_millis(1),
            ..NetOptions::default()
        },
    );
    println!("completed CS executions : {}", out.completed);
    println!("per-site                : {:?}", out.per_site);
    println!("wire messages           : {}", out.messages);
    println!("messages per CS         : {:.2}", messages_per_cs(&out));
    println!("wall-clock              : {:?}", out.elapsed);
    assert_eq!(out.completed, n * rounds);
    println!(
        "\nmutual exclusion held across all {} entries (monitored live)",
        out.completed
    );
}
