//! Replica control (the paper's conclusion): a replicated register with
//! Gifford-style read/write quorums, writes serialized by the
//! delay-optimal mutex, survives stale replicas and concurrent writers.
//!
//! ```sh
//! cargo run --example quorum_kv
//! ```

use qmx::core::SiteId;
use qmx::replica::{OpResult, ReplicaConfig, ReplicaSim, ReplicaSimConfig};
use qmx::sim::DelayModel;

const T: u64 = 1000;

fn main() {
    let n = 5u32;
    // R = 3, W = 3 over 5 replicas: R + W > N, so quorums intersect.
    let all: Vec<SiteId> = (0..n).map(SiteId).collect();
    let mut sim = ReplicaSim::new(
        n,
        |site| ReplicaConfig {
            mutex_quorum: all.clone(),
            // Rotating 3-member windows starting at the caller.
            read_quorum: (0..3).map(|k| SiteId((site.0 + k) % n)).collect(),
            write_quorum: (0..3).map(|k| SiteId((site.0 + 2 + k) % n)).collect(),
            initial: 0,
            read_repair: false,
        },
        ReplicaSimConfig {
            delay: DelayModel::Uniform { lo: 500, hi: 1500 },
            seed: 2024,
        },
    );

    // Three concurrent writers, then a wave of reads from every site.
    sim.schedule_write(SiteId(0), 111, 0);
    sim.schedule_write(SiteId(2), 222, 10);
    sim.schedule_write(SiteId(4), 333, 20);
    for i in 0..n {
        sim.schedule_read(SiteId(i), 200 * T + u64::from(i));
    }
    sim.run(10_000 * T);

    println!("operations ({} wire messages total):", sim.messages());
    for r in sim.records() {
        match r.result {
            OpResult::Write { version } => println!(
                "  write v{version}   by {}  [{} .. {}]",
                r.site, r.submitted_at, r.completed_at
            ),
            OpResult::Read(v) => println!(
                "  read  v{} = {}  by {}  [{} .. {}]",
                v.version, v.value, r.site, r.submitted_at, r.completed_at
            ),
        }
    }

    println!("\nper-site replicas (some may be stale — that is the point):");
    for i in 0..n {
        let v = sim.stored(SiteId(i));
        println!("  {}: v{} = {}", SiteId(i), v.version, v.value);
    }
    println!(
        "\nevery read went through an intersecting quorum, so all reads at\n\
         the end returned the newest version even where local replicas lag."
    );

    // Sanity: all late reads saw version 3.
    let late_reads: Vec<_> = sim
        .records()
        .iter()
        .filter_map(|r| match r.result {
            OpResult::Read(v) if r.submitted_at >= 200 * T => Some(v.version),
            _ => None,
        })
        .collect();
    assert_eq!(late_reads.len(), n as usize);
    assert!(late_reads.iter().all(|&v| v == 3));
}
