//! Replicated data management — the application the paper's introduction
//! motivates. A replicated key-value register is updated by concurrent
//! writers; each write must be mutually exclusive across all replicas or
//! updates are lost.
//!
//! We run the scenario twice: once WITHOUT coordination (demonstrating the
//! lost-update anomaly) and once with writes serialized by the
//! delay-optimal quorum mutex (no anomalies, modest message overhead).
//!
//! ```sh
//! cargo run --example replicated_store
//! ```

use qmx::core::{Config, DelayOptimal, Effects, Protocol, SiteId};
use qmx::quorum::grid::grid_system;
use std::collections::VecDeque;

/// A replicated counter register: every site holds a copy; a write is a
/// read-modify-write that must not interleave with another write.
#[derive(Debug, Clone)]
struct Replica {
    value: u64,
}

/// One increment transaction: read the local replica, compute, then write
/// back to every replica ("write-all" replica control).
fn apply_increment(replicas: &mut [Replica], by: usize) {
    let read = replicas[by].value;
    let new = read + 1;
    for r in replicas.iter_mut() {
        r.value = new;
    }
}

fn run_uncoordinated(n: usize, increments_per_site: usize) -> u64 {
    let mut replicas = vec![Replica { value: 0 }; n];
    // All sites read before anyone writes — the classic lost-update race,
    // staged deterministically: each round, every site reads the same
    // stale value and writes read+1.
    for _round in 0..increments_per_site {
        let reads: Vec<u64> = (0..n).map(|i| replicas[i].value).collect();
        for (i, read) in reads.into_iter().enumerate() {
            let new = read + 1;
            let _ = i;
            for r in replicas.iter_mut() {
                r.value = new;
            }
        }
    }
    replicas[0].value
}

fn run_coordinated(n: usize, increments_per_site: usize) -> (u64, u64) {
    let quorums = grid_system(n);
    let mut sites: Vec<DelayOptimal> = (0..n)
        .map(|i| {
            DelayOptimal::new(
                SiteId(i as u32),
                quorums.quorum_of(SiteId(i as u32)).to_vec(),
                Config::default(),
            )
        })
        .collect();
    let mut replicas = vec![Replica { value: 0 }; n];
    let mut remaining: Vec<usize> = vec![increments_per_site; n];
    let mut inflight: VecDeque<(SiteId, SiteId, <DelayOptimal as Protocol>::Msg)> = VecDeque::new();
    let mut messages = 0u64;

    // Synchronous event loop: issue requests whenever idle, deliver
    // messages FIFO, perform the increment inside the CS.
    loop {
        let mut progressed = false;
        // Issue requests.
        for i in 0..n {
            if remaining[i] > 0 && !sites[i].in_cs() && !sites[i].wants_cs() {
                let mut fx = Effects::new();
                sites[i].request_cs(&mut fx);
                let (sends, entered) = fx.drain();
                for (to, msg) in sends {
                    inflight.push_back((SiteId(i as u32), to, msg));
                }
                if !entered.is_empty() {
                    // Degenerate (n = 1): entered synchronously.
                    apply_increment(&mut replicas, i);
                    remaining[i] -= 1;
                    sites[i].release_cs(&mut fx);
                    for (to, msg) in fx.take_sends() {
                        inflight.push_back((SiteId(i as u32), to, msg));
                    }
                }
                progressed = true;
            }
        }
        // Deliver.
        while let Some((from, to, msg)) = inflight.pop_front() {
            messages += 1;
            progressed = true;
            let mut fx = Effects::new();
            sites[to.index()].handle(from, msg, &mut fx);
            let (sends, entered) = fx.drain();
            for (t, m) in sends {
                inflight.push_back((to, t, m));
            }
            if !entered.is_empty() {
                // Critical section: the serialized read-modify-write.
                let i = to.index();
                assert!(
                    sites.iter().filter(|s| s.in_cs()).count() == 1,
                    "mutual exclusion violated"
                );
                apply_increment(&mut replicas, i);
                remaining[i] -= 1;
                let mut fx = Effects::new();
                sites[i].release_cs(&mut fx);
                for (t, m) in fx.take_sends() {
                    inflight.push_back((to, t, m));
                }
            }
        }
        if !progressed && remaining.iter().all(|&r| r == 0) {
            break;
        }
        if !progressed {
            panic!("wedged with remaining work: {remaining:?}");
        }
    }
    (replicas[0].value, messages)
}

fn main() {
    let n = 9;
    let increments_per_site = 10;
    let expected = (n * increments_per_site) as u64;

    let lost = run_uncoordinated(n, increments_per_site);
    println!("replicated counter, {n} replicas x {increments_per_site} increments each");
    println!("expected final value            : {expected}");
    println!(
        "WITHOUT mutual exclusion        : {lost}   ({} updates lost)",
        expected - lost
    );

    let (coordinated, messages) = run_coordinated(n, increments_per_site);
    println!(
        "with delay-optimal quorum mutex : {coordinated}   ({} coordination messages, {:.1} per update)",
        messages,
        messages as f64 / expected as f64
    );
    assert_eq!(coordinated, expected, "coordination must not lose updates");
}
