//! Exhaustive verification demo: explore EVERY message interleaving of the
//! delay-optimal protocol at small scope, then watch the checker catch a
//! deliberately broken protocol with a minimal counterexample trace.
//!
//! ```sh
//! cargo run --release --example model_check
//! ```

use qmx::check::{check, Violation, Workload};
use qmx::core::{Config, DelayOptimal, Effects, MsgKind, MsgMeta, Protocol, SiteId};

fn main() {
    // 1. Verify the paper's §2 example coterie C = {{a,b},{b,c}}, two CS
    //    rounds per site: every FIFO-respecting interleaving of requests,
    //    deliveries and exits is explored.
    let quorums = vec![
        vec![SiteId(0), SiteId(1)],
        vec![SiteId(1), SiteId(2)],
        vec![SiteId(1), SiteId(2)],
    ];
    let sites: Vec<DelayOptimal> = quorums
        .into_iter()
        .enumerate()
        .map(|(i, q)| DelayOptimal::new(SiteId(i as u32), q, Config::default()))
        .collect();
    match check(sites, &Workload::uniform(3, 2), 10_000_000) {
        Ok(stats) => {
            println!("delay-optimal over the paper's coterie: VERIFIED");
            println!("  distinct states : {}", stats.states);
            println!("  transitions     : {}", stats.transitions);
            println!("  terminal states : {}", stats.terminals);
            println!("  deepest path    : {} actions", stats.max_depth);
            println!("  (mutual exclusion + deadlock freedom hold in every interleaving)\n");
        }
        Err(v) => panic!("unexpected violation: {v}"),
    }

    // 2. A broken "protocol": requesters enter as soon as ANY quorum
    //    member replies (instead of all). The checker finds the minimal
    //    interleaving that breaks mutual exclusion and prints it.
    #[derive(Debug, Clone)]
    struct FirstReplyWins {
        site: SiteId,
        peers: Vec<SiteId>,
        waiting: bool,
        in_cs: bool,
    }

    #[derive(Debug, Clone)]
    enum BrokenMsg {
        Ask,
        Grant,
    }
    impl MsgMeta for BrokenMsg {
        fn kind(&self) -> MsgKind {
            match self {
                BrokenMsg::Ask => MsgKind::Request,
                BrokenMsg::Grant => MsgKind::Reply,
            }
        }
    }

    impl Protocol for FirstReplyWins {
        type Msg = BrokenMsg;
        fn site(&self) -> SiteId {
            self.site
        }
        fn request_cs(&mut self, fx: &mut Effects<BrokenMsg>) {
            self.waiting = true;
            for &p in &self.peers {
                fx.send(p, BrokenMsg::Ask);
            }
        }
        fn release_cs(&mut self, _fx: &mut Effects<BrokenMsg>) {
            self.in_cs = false;
        }
        fn handle(&mut self, from: SiteId, msg: BrokenMsg, fx: &mut Effects<BrokenMsg>) {
            match msg {
                // Always grant — no locking at all.
                BrokenMsg::Ask => fx.send(from, BrokenMsg::Grant),
                BrokenMsg::Grant => {
                    if self.waiting && !self.in_cs {
                        // BUG: first grant suffices.
                        self.waiting = false;
                        self.in_cs = true;
                        fx.enter_cs();
                    }
                }
            }
        }
        fn in_cs(&self) -> bool {
            self.in_cs
        }
        fn wants_cs(&self) -> bool {
            self.waiting
        }
    }

    let broken: Vec<FirstReplyWins> = (0..3)
        .map(|i| FirstReplyWins {
            site: SiteId(i),
            peers: (0..3).map(SiteId).filter(|s| s.0 != i).collect(),
            waiting: false,
            in_cs: false,
        })
        .collect();
    match check(broken, &Workload::uniform(3, 1), 1_000_000) {
        Ok(_) => panic!("the broken protocol must not verify"),
        Err(Violation::MutualExclusion { trace, sites }) => {
            println!("broken 'first reply wins' protocol: counterexample found");
            println!(
                "  {} and {} end up in the CS together via:",
                sites.0, sites.1
            );
            for a in trace {
                println!("    {a}");
            }
        }
        Err(other) => panic!("expected a mutual-exclusion violation, got {other}"),
    }
}
