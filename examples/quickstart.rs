//! Quickstart: run the delay-optimal mutual exclusion protocol on a
//! simulated 9-site cluster with grid quorums and print what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qmx::core::{Config, DelayOptimal, SiteId};
use qmx::quorum::grid::grid_system;
use qmx::sim::{DelayModel, SimConfig, Simulator};

fn main() {
    // 1. Build a quorum system: 9 sites in a 3x3 grid, each site's quorum
    //    is its row plus its column (K = 5).
    let n = 9usize;
    let quorums = grid_system(n);
    println!("site 4's quorum: {:?}\n", quorums.quorum_of(SiteId(4)));

    // 2. Create one protocol instance per site.
    let sites: Vec<DelayOptimal> = (0..n)
        .map(|i| {
            DelayOptimal::new(
                SiteId(i as u32),
                quorums.quorum_of(SiteId(i as u32)).to_vec(),
                Config::default(),
            )
        })
        .collect();

    // 3. Drive them with the discrete-event simulator: message delay
    //    T = 1000 ticks, CS execution E = 100 ticks.
    let mut sim = Simulator::new(
        sites,
        SimConfig {
            delay: DelayModel::Constant(1000),
            hold: DelayModel::Constant(100),
            ..SimConfig::default()
        },
    );

    // 4. Everyone wants the critical section at (nearly) the same time.
    for i in 0..n {
        sim.schedule_request(SiteId(i as u32), 10 * i as u64);
    }
    sim.run_to_quiescence(10_000_000);

    // 5. Report.
    let m = sim.metrics();
    println!("completed CS executions : {}", m.completed_cs());
    println!("total wire messages     : {}", m.total_messages());
    println!(
        "messages per CS         : {:.2}  (3(K-1) = 12 uncontended)",
        m.messages_per_cs().expect("completions")
    );
    if let Some(d) = m.mean_sync_delay() {
        println!(
            "mean sync delay         : {:.2} T (Maekawa would be 2T)",
            d / 1000.0
        );
    }
    println!("\nper-kind message counts:");
    for (kind, count) in m.messages_by_kind() {
        println!("  {kind:<10} {count}");
    }
    println!("\nCS executions in entry order:");
    let mut recs: Vec<_> = m.records().to_vec();
    recs.sort_by_key(|r| r.entered_at);
    for r in recs {
        println!(
            "  {} requested t={:<6} entered t={:<6} exited t={:<6}",
            r.site, r.requested_at, r.entered_at, r.exited_at
        );
    }
}
