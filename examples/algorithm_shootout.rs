//! Compare all seven algorithms on the same workload — a miniature
//! version of the paper's Table 1 you can tweak from the command line:
//!
//! ```sh
//! cargo run --release --example algorithm_shootout -- [N] [mean_gap_in_T]
//! ```
//!
//! Defaults: N = 25, gap = 5T (moderate contention).

use qmx::sim::DelayModel;
use qmx::workload::arrival::ArrivalProcess;
use qmx::workload::scenario::{Algorithm, QuorumSpec, Scenario};

const T: u64 = 1000;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("N must be an integer"))
        .unwrap_or(25);
    let gap_t: u64 = args
        .next()
        .map(|a| a.parse().expect("gap must be an integer number of T"))
        .unwrap_or(5);

    println!("{n} sites, Poisson arrivals with mean gap {gap_t}T, T = {T} ticks, E = 0.1T\n");
    println!(
        "{:<22} {:>6} {:>10} {:>12} {:>12} {:>10}",
        "algorithm", "K", "msgs/CS", "sync (T)", "resp (T)", "fairness"
    );
    for alg in [
        Algorithm::Lamport,
        Algorithm::RicartAgrawala,
        Algorithm::CarvalhoRoucairol,
        Algorithm::Maekawa,
        Algorithm::SuzukiKasami,
        Algorithm::Raymond,
        Algorithm::SinghalDynamic,
        Algorithm::DelayOptimal,
    ] {
        let r = Scenario {
            n,
            algorithm: alg,
            quorum: QuorumSpec::Grid,
            arrivals: ArrivalProcess::Poisson {
                mean_gap: gap_t * T,
            },
            horizon: 2_000 * T,
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(T / 10),
            ..Scenario::default()
        }
        .run();
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.2}"));
        println!(
            "{:<22} {:>6.1} {:>10} {:>12} {:>12} {:>10}",
            alg.label(),
            r.quorum_size,
            fmt(r.messages_per_cs),
            fmt(r.sync_delay_t),
            fmt(r.response_time_t),
            fmt(r.fairness),
        );
    }
    println!(
        "\n(the proposed algorithm should pair quorum-sized message counts with ~T sync delay)"
    );
}
