/root/repo/target/debug/deps/qmx_sim-8ba8cbd571f109fc.d: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libqmx_sim-8ba8cbd571f109fc.rlib: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libqmx_sim-8ba8cbd571f109fc.rmeta: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/delay.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/trace.rs:
