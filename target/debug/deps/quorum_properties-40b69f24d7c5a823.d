/root/repo/target/debug/deps/quorum_properties-40b69f24d7c5a823.d: tests/quorum_properties.rs

/root/repo/target/debug/deps/quorum_properties-40b69f24d7c5a823: tests/quorum_properties.rs

tests/quorum_properties.rs:
