/root/repo/target/debug/deps/qmx_core-71b171a16916fdca.d: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs

/root/repo/target/debug/deps/libqmx_core-71b171a16916fdca.rlib: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs

/root/repo/target/debug/deps/libqmx_core-71b171a16916fdca.rmeta: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs

crates/core/src/lib.rs:
crates/core/src/clock.rs:
crates/core/src/delay_optimal.rs:
crates/core/src/protocol.rs:
crates/core/src/reqqueue.rs:
crates/core/src/transport.rs:
