/root/repo/target/debug/deps/proptest_random_runs-77aa0539029bf588.d: tests/proptest_random_runs.rs

/root/repo/target/debug/deps/proptest_random_runs-77aa0539029bf588: tests/proptest_random_runs.rs

tests/proptest_random_runs.rs:
