/root/repo/target/debug/deps/qmx_check-df011eb2566bc22c.d: crates/check/src/lib.rs

/root/repo/target/debug/deps/libqmx_check-df011eb2566bc22c.rlib: crates/check/src/lib.rs

/root/repo/target/debug/deps/libqmx_check-df011eb2566bc22c.rmeta: crates/check/src/lib.rs

crates/check/src/lib.rs:
