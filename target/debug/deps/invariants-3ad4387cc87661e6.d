/root/repo/target/debug/deps/invariants-3ad4387cc87661e6.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-3ad4387cc87661e6: tests/invariants.rs

tests/invariants.rs:
