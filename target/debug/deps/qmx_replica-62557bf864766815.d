/root/repo/target/debug/deps/qmx_replica-62557bf864766815.d: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

/root/repo/target/debug/deps/libqmx_replica-62557bf864766815.rlib: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

/root/repo/target/debug/deps/libqmx_replica-62557bf864766815.rmeta: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

crates/replica/src/lib.rs:
crates/replica/src/kv.rs:
crates/replica/src/register.rs:
crates/replica/src/sim.rs:
