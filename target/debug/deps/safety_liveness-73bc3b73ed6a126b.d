/root/repo/target/debug/deps/safety_liveness-73bc3b73ed6a126b.d: tests/safety_liveness.rs

/root/repo/target/debug/deps/safety_liveness-73bc3b73ed6a126b: tests/safety_liveness.rs

tests/safety_liveness.rs:
