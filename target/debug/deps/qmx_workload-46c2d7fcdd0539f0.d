/root/repo/target/debug/deps/qmx_workload-46c2d7fcdd0539f0.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/libqmx_workload-46c2d7fcdd0539f0.rlib: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/libqmx_workload-46c2d7fcdd0539f0.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/replicate.rs:
crates/workload/src/scenario.rs:
crates/workload/src/stats.rs:
