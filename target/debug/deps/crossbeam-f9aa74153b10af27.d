/root/repo/target/debug/deps/crossbeam-f9aa74153b10af27.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-f9aa74153b10af27.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-f9aa74153b10af27.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
