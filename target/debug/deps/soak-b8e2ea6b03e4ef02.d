/root/repo/target/debug/deps/soak-b8e2ea6b03e4ef02.d: tests/soak.rs

/root/repo/target/debug/deps/soak-b8e2ea6b03e4ef02: tests/soak.rs

tests/soak.rs:
