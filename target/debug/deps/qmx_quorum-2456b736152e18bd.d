/root/repo/target/debug/deps/qmx_quorum-2456b736152e18bd.d: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs

/root/repo/target/debug/deps/libqmx_quorum-2456b736152e18bd.rlib: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs

/root/repo/target/debug/deps/libqmx_quorum-2456b736152e18bd.rmeta: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs

crates/quorum/src/lib.rs:
crates/quorum/src/availability.rs:
crates/quorum/src/coterie.rs:
crates/quorum/src/crumbling.rs:
crates/quorum/src/domination.rs:
crates/quorum/src/fpp.rs:
crates/quorum/src/grid.rs:
crates/quorum/src/gridset.rs:
crates/quorum/src/hqc.rs:
crates/quorum/src/majority.rs:
crates/quorum/src/rst.rs:
crates/quorum/src/tree.rs:
crates/quorum/src/wheel.rs:
