/root/repo/target/debug/deps/qmx-ba1d46155242521a.d: src/lib.rs

/root/repo/target/debug/deps/qmx-ba1d46155242521a: src/lib.rs

src/lib.rs:
