/root/repo/target/debug/deps/fault_injection-08d73a7af744bc49.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-08d73a7af744bc49: tests/fault_injection.rs

tests/fault_injection.rs:
