/root/repo/target/debug/deps/qmx-42c28f1f4954a894.d: src/lib.rs

/root/repo/target/debug/deps/libqmx-42c28f1f4954a894.rlib: src/lib.rs

/root/repo/target/debug/deps/libqmx-42c28f1f4954a894.rmeta: src/lib.rs

src/lib.rs:
