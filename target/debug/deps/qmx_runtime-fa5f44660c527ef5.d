/root/repo/target/debug/deps/qmx_runtime-fa5f44660c527ef5.d: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/debug/deps/libqmx_runtime-fa5f44660c527ef5.rlib: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/debug/deps/libqmx_runtime-fa5f44660c527ef5.rmeta: crates/runtime/src/lib.rs crates/runtime/src/net.rs

crates/runtime/src/lib.rs:
crates/runtime/src/net.rs:
