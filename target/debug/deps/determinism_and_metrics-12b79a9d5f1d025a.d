/root/repo/target/debug/deps/determinism_and_metrics-12b79a9d5f1d025a.d: tests/determinism_and_metrics.rs

/root/repo/target/debug/deps/determinism_and_metrics-12b79a9d5f1d025a: tests/determinism_and_metrics.rs

tests/determinism_and_metrics.rs:
