/root/repo/target/debug/deps/qmx_baselines-a36dcfb17c088e9a.d: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs

/root/repo/target/debug/deps/libqmx_baselines-a36dcfb17c088e9a.rlib: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs

/root/repo/target/debug/deps/libqmx_baselines-a36dcfb17c088e9a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs

crates/baselines/src/lib.rs:
crates/baselines/src/carvalho_roucairol.rs:
crates/baselines/src/lamport.rs:
crates/baselines/src/maekawa.rs:
crates/baselines/src/raymond.rs:
crates/baselines/src/ricart_agrawala.rs:
crates/baselines/src/singhal_dynamic.rs:
crates/baselines/src/suzuki_kasami.rs:
