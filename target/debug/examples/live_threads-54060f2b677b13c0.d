/root/repo/target/debug/examples/live_threads-54060f2b677b13c0.d: examples/live_threads.rs

/root/repo/target/debug/examples/live_threads-54060f2b677b13c0: examples/live_threads.rs

examples/live_threads.rs:
