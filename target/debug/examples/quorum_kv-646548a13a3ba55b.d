/root/repo/target/debug/examples/quorum_kv-646548a13a3ba55b.d: examples/quorum_kv.rs

/root/repo/target/debug/examples/quorum_kv-646548a13a3ba55b: examples/quorum_kv.rs

examples/quorum_kv.rs:
