/root/repo/target/debug/examples/fault_tolerant_lock-d9ff6880670995e6.d: examples/fault_tolerant_lock.rs

/root/repo/target/debug/examples/fault_tolerant_lock-d9ff6880670995e6: examples/fault_tolerant_lock.rs

examples/fault_tolerant_lock.rs:
