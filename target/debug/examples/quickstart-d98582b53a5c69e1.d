/root/repo/target/debug/examples/quickstart-d98582b53a5c69e1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d98582b53a5c69e1: examples/quickstart.rs

examples/quickstart.rs:
