/root/repo/target/debug/examples/algorithm_shootout-45fed8789251973d.d: examples/algorithm_shootout.rs

/root/repo/target/debug/examples/algorithm_shootout-45fed8789251973d: examples/algorithm_shootout.rs

examples/algorithm_shootout.rs:
