/root/repo/target/debug/examples/model_check-22c476907e4ff9a0.d: examples/model_check.rs

/root/repo/target/debug/examples/model_check-22c476907e4ff9a0: examples/model_check.rs

examples/model_check.rs:
