/root/repo/target/debug/examples/replicated_store-a0bc96dc8be21a10.d: examples/replicated_store.rs

/root/repo/target/debug/examples/replicated_store-a0bc96dc8be21a10: examples/replicated_store.rs

examples/replicated_store.rs:
