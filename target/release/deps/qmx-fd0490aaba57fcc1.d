/root/repo/target/release/deps/qmx-fd0490aaba57fcc1.d: src/lib.rs

/root/repo/target/release/deps/libqmx-fd0490aaba57fcc1.rlib: src/lib.rs

/root/repo/target/release/deps/libqmx-fd0490aaba57fcc1.rmeta: src/lib.rs

src/lib.rs:
