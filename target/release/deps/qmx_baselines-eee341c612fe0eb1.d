/root/repo/target/release/deps/qmx_baselines-eee341c612fe0eb1.d: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs

/root/repo/target/release/deps/libqmx_baselines-eee341c612fe0eb1.rlib: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs

/root/repo/target/release/deps/libqmx_baselines-eee341c612fe0eb1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs

crates/baselines/src/lib.rs:
crates/baselines/src/carvalho_roucairol.rs:
crates/baselines/src/lamport.rs:
crates/baselines/src/maekawa.rs:
crates/baselines/src/raymond.rs:
crates/baselines/src/ricart_agrawala.rs:
crates/baselines/src/singhal_dynamic.rs:
crates/baselines/src/suzuki_kasami.rs:
