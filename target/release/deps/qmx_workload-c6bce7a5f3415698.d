/root/repo/target/release/deps/qmx_workload-c6bce7a5f3415698.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/libqmx_workload-c6bce7a5f3415698.rlib: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/libqmx_workload-c6bce7a5f3415698.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/replicate.rs:
crates/workload/src/scenario.rs:
crates/workload/src/stats.rs:
