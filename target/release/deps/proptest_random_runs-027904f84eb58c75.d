/root/repo/target/release/deps/proptest_random_runs-027904f84eb58c75.d: tests/proptest_random_runs.rs

/root/repo/target/release/deps/proptest_random_runs-027904f84eb58c75: tests/proptest_random_runs.rs

tests/proptest_random_runs.rs:
