/root/repo/target/release/deps/qmx_check-a148beec22dfb0b9.d: crates/check/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libqmx_check-a148beec22dfb0b9.rmeta: crates/check/src/lib.rs Cargo.toml

crates/check/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
