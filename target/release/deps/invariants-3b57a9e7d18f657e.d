/root/repo/target/release/deps/invariants-3b57a9e7d18f657e.d: tests/invariants.rs

/root/repo/target/release/deps/invariants-3b57a9e7d18f657e: tests/invariants.rs

tests/invariants.rs:
