/root/repo/target/release/deps/qmx_runtime-c14d0d0dfee46aef.d: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/release/deps/qmx_runtime-c14d0d0dfee46aef: crates/runtime/src/lib.rs crates/runtime/src/net.rs

crates/runtime/src/lib.rs:
crates/runtime/src/net.rs:
