/root/repo/target/release/deps/quorum_properties-72590555a858d1f9.d: tests/quorum_properties.rs Cargo.toml

/root/repo/target/release/deps/libquorum_properties-72590555a858d1f9.rmeta: tests/quorum_properties.rs Cargo.toml

tests/quorum_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
