/root/repo/target/release/deps/fault_injection-85329485ed1a444a.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-85329485ed1a444a: tests/fault_injection.rs

tests/fault_injection.rs:
