/root/repo/target/release/deps/qmx-8a0fbdb62a7fb1e0.d: src/lib.rs

/root/repo/target/release/deps/libqmx-8a0fbdb62a7fb1e0.rlib: src/lib.rs

/root/repo/target/release/deps/libqmx-8a0fbdb62a7fb1e0.rmeta: src/lib.rs

src/lib.rs:
