/root/repo/target/release/deps/faulttolerance-a6998f2b5d988af8.d: crates/bench/src/bin/faulttolerance.rs

/root/repo/target/release/deps/faulttolerance-a6998f2b5d988af8: crates/bench/src/bin/faulttolerance.rs

crates/bench/src/bin/faulttolerance.rs:
