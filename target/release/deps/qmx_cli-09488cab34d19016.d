/root/repo/target/release/deps/qmx_cli-09488cab34d19016.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libqmx_cli-09488cab34d19016.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libqmx_cli-09488cab34d19016.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
