/root/repo/target/release/deps/rand-5d0bae1dd8d31457.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-5d0bae1dd8d31457.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
