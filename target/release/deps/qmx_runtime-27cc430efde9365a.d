/root/repo/target/release/deps/qmx_runtime-27cc430efde9365a.d: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/release/deps/qmx_runtime-27cc430efde9365a: crates/runtime/src/lib.rs crates/runtime/src/net.rs

crates/runtime/src/lib.rs:
crates/runtime/src/net.rs:
