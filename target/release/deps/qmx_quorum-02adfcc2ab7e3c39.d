/root/repo/target/release/deps/qmx_quorum-02adfcc2ab7e3c39.d: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs Cargo.toml

/root/repo/target/release/deps/libqmx_quorum-02adfcc2ab7e3c39.rmeta: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs Cargo.toml

crates/quorum/src/lib.rs:
crates/quorum/src/availability.rs:
crates/quorum/src/coterie.rs:
crates/quorum/src/crumbling.rs:
crates/quorum/src/domination.rs:
crates/quorum/src/fpp.rs:
crates/quorum/src/grid.rs:
crates/quorum/src/gridset.rs:
crates/quorum/src/hqc.rs:
crates/quorum/src/majority.rs:
crates/quorum/src/rst.rs:
crates/quorum/src/tree.rs:
crates/quorum/src/wheel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
