/root/repo/target/release/deps/soak-fdcaee6d128d36cc.d: tests/soak.rs

/root/repo/target/release/deps/soak-fdcaee6d128d36cc: tests/soak.rs

tests/soak.rs:
