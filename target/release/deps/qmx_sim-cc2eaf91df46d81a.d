/root/repo/target/release/deps/qmx_sim-cc2eaf91df46d81a.d: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libqmx_sim-cc2eaf91df46d81a.rlib: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libqmx_sim-cc2eaf91df46d81a.rmeta: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/delay.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/trace.rs:
