/root/repo/target/release/deps/protocol_paths-5f7f01b8359834c8.d: crates/core/tests/protocol_paths.rs

/root/repo/target/release/deps/protocol_paths-5f7f01b8359834c8: crates/core/tests/protocol_paths.rs

crates/core/tests/protocol_paths.rs:
