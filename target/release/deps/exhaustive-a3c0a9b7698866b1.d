/root/repo/target/release/deps/exhaustive-a3c0a9b7698866b1.d: crates/check/tests/exhaustive.rs

/root/repo/target/release/deps/exhaustive-a3c0a9b7698866b1: crates/check/tests/exhaustive.rs

crates/check/tests/exhaustive.rs:
