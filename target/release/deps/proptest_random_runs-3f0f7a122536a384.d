/root/repo/target/release/deps/proptest_random_runs-3f0f7a122536a384.d: tests/proptest_random_runs.rs Cargo.toml

/root/repo/target/release/deps/libproptest_random_runs-3f0f7a122536a384.rmeta: tests/proptest_random_runs.rs Cargo.toml

tests/proptest_random_runs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
