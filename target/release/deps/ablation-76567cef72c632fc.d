/root/repo/target/release/deps/ablation-76567cef72c632fc.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-76567cef72c632fc: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
