/root/repo/target/release/deps/qmx_quorum-f23f583d96aa4212.d: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs

/root/repo/target/release/deps/qmx_quorum-f23f583d96aa4212: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs

crates/quorum/src/lib.rs:
crates/quorum/src/availability.rs:
crates/quorum/src/coterie.rs:
crates/quorum/src/crumbling.rs:
crates/quorum/src/domination.rs:
crates/quorum/src/fpp.rs:
crates/quorum/src/grid.rs:
crates/quorum/src/gridset.rs:
crates/quorum/src/hqc.rs:
crates/quorum/src/majority.rs:
crates/quorum/src/rst.rs:
crates/quorum/src/tree.rs:
crates/quorum/src/wheel.rs:
