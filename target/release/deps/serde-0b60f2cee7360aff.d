/root/repo/target/release/deps/serde-0b60f2cee7360aff.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-0b60f2cee7360aff.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
