/root/repo/target/release/deps/syncdelay-112c3c1ca0e98746.d: crates/bench/src/bin/syncdelay.rs

/root/repo/target/release/deps/syncdelay-112c3c1ca0e98746: crates/bench/src/bin/syncdelay.rs

crates/bench/src/bin/syncdelay.rs:
