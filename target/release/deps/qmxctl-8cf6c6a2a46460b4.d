/root/repo/target/release/deps/qmxctl-8cf6c6a2a46460b4.d: crates/cli/src/main.rs

/root/repo/target/release/deps/qmxctl-8cf6c6a2a46460b4: crates/cli/src/main.rs

crates/cli/src/main.rs:
