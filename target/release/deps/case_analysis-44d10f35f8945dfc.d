/root/repo/target/release/deps/case_analysis-44d10f35f8945dfc.d: crates/core/tests/case_analysis.rs

/root/repo/target/release/deps/case_analysis-44d10f35f8945dfc: crates/core/tests/case_analysis.rs

crates/core/tests/case_analysis.rs:
