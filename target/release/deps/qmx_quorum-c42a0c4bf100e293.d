/root/repo/target/release/deps/qmx_quorum-c42a0c4bf100e293.d: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs

/root/repo/target/release/deps/libqmx_quorum-c42a0c4bf100e293.rlib: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs

/root/repo/target/release/deps/libqmx_quorum-c42a0c4bf100e293.rmeta: crates/quorum/src/lib.rs crates/quorum/src/availability.rs crates/quorum/src/coterie.rs crates/quorum/src/crumbling.rs crates/quorum/src/domination.rs crates/quorum/src/fpp.rs crates/quorum/src/grid.rs crates/quorum/src/gridset.rs crates/quorum/src/hqc.rs crates/quorum/src/majority.rs crates/quorum/src/rst.rs crates/quorum/src/tree.rs crates/quorum/src/wheel.rs

crates/quorum/src/lib.rs:
crates/quorum/src/availability.rs:
crates/quorum/src/coterie.rs:
crates/quorum/src/crumbling.rs:
crates/quorum/src/domination.rs:
crates/quorum/src/fpp.rs:
crates/quorum/src/grid.rs:
crates/quorum/src/gridset.rs:
crates/quorum/src/hqc.rs:
crates/quorum/src/majority.rs:
crates/quorum/src/rst.rs:
crates/quorum/src/tree.rs:
crates/quorum/src/wheel.rs:
