/root/repo/target/release/deps/determinism_and_metrics-4f1197d2611bc724.d: tests/determinism_and_metrics.rs

/root/repo/target/release/deps/determinism_and_metrics-4f1197d2611bc724: tests/determinism_and_metrics.rs

tests/determinism_and_metrics.rs:
