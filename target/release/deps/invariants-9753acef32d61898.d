/root/repo/target/release/deps/invariants-9753acef32d61898.d: tests/invariants.rs Cargo.toml

/root/repo/target/release/deps/libinvariants-9753acef32d61898.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
