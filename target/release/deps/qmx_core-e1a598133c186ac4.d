/root/repo/target/release/deps/qmx_core-e1a598133c186ac4.d: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs

/root/repo/target/release/deps/libqmx_core-e1a598133c186ac4.rlib: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs

/root/repo/target/release/deps/libqmx_core-e1a598133c186ac4.rmeta: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs

crates/core/src/lib.rs:
crates/core/src/clock.rs:
crates/core/src/delay_optimal.rs:
crates/core/src/protocol.rs:
crates/core/src/reqqueue.rs:
crates/core/src/transport.rs:
