/root/repo/target/release/deps/safety_liveness-b4b969bc20bbbb2b.d: tests/safety_liveness.rs

/root/repo/target/release/deps/safety_liveness-b4b969bc20bbbb2b: tests/safety_liveness.rs

tests/safety_liveness.rs:
