/root/repo/target/release/deps/crossbeam-cf63052f073cd8db.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-cf63052f073cd8db.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
