/root/repo/target/release/deps/qmx_check-193918c91e1a4026.d: crates/check/src/lib.rs

/root/repo/target/release/deps/libqmx_check-193918c91e1a4026.rlib: crates/check/src/lib.rs

/root/repo/target/release/deps/libqmx_check-193918c91e1a4026.rmeta: crates/check/src/lib.rs

crates/check/src/lib.rs:
