/root/repo/target/release/deps/qmx_core-511bd1892e4bbe40.d: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs

/root/repo/target/release/deps/libqmx_core-511bd1892e4bbe40.rlib: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs

/root/repo/target/release/deps/libqmx_core-511bd1892e4bbe40.rmeta: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs

crates/core/src/lib.rs:
crates/core/src/clock.rs:
crates/core/src/delay_optimal.rs:
crates/core/src/protocol.rs:
crates/core/src/reqqueue.rs:
