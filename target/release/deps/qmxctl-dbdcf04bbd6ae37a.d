/root/repo/target/release/deps/qmxctl-dbdcf04bbd6ae37a.d: crates/cli/src/main.rs

/root/repo/target/release/deps/qmxctl-dbdcf04bbd6ae37a: crates/cli/src/main.rs

crates/cli/src/main.rs:
