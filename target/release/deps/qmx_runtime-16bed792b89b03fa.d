/root/repo/target/release/deps/qmx_runtime-16bed792b89b03fa.d: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/release/deps/libqmx_runtime-16bed792b89b03fa.rlib: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/release/deps/libqmx_runtime-16bed792b89b03fa.rmeta: crates/runtime/src/lib.rs crates/runtime/src/net.rs

crates/runtime/src/lib.rs:
crates/runtime/src/net.rs:
