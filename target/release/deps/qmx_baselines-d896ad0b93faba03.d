/root/repo/target/release/deps/qmx_baselines-d896ad0b93faba03.d: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs crates/baselines/src/testutil.rs

/root/repo/target/release/deps/qmx_baselines-d896ad0b93faba03: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs crates/baselines/src/testutil.rs

crates/baselines/src/lib.rs:
crates/baselines/src/carvalho_roucairol.rs:
crates/baselines/src/lamport.rs:
crates/baselines/src/maekawa.rs:
crates/baselines/src/raymond.rs:
crates/baselines/src/ricart_agrawala.rs:
crates/baselines/src/singhal_dynamic.rs:
crates/baselines/src/suzuki_kasami.rs:
crates/baselines/src/testutil.rs:
