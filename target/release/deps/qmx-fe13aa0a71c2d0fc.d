/root/repo/target/release/deps/qmx-fe13aa0a71c2d0fc.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libqmx-fe13aa0a71c2d0fc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
