/root/repo/target/release/deps/qmx_check-3d893a05884b267a.d: crates/check/src/lib.rs

/root/repo/target/release/deps/libqmx_check-3d893a05884b267a.rlib: crates/check/src/lib.rs

/root/repo/target/release/deps/libqmx_check-3d893a05884b267a.rmeta: crates/check/src/lib.rs

crates/check/src/lib.rs:
