/root/repo/target/release/deps/table1-15819ead7f123b95.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-15819ead7f123b95: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
