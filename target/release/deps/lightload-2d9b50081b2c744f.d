/root/repo/target/release/deps/lightload-2d9b50081b2c744f.d: crates/bench/src/bin/lightload.rs

/root/repo/target/release/deps/lightload-2d9b50081b2c744f: crates/bench/src/bin/lightload.rs

crates/bench/src/bin/lightload.rs:
