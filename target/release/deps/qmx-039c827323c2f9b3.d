/root/repo/target/release/deps/qmx-039c827323c2f9b3.d: src/lib.rs

/root/repo/target/release/deps/qmx-039c827323c2f9b3: src/lib.rs

src/lib.rs:
