/root/repo/target/release/deps/parking_lot-11eb4e8daa8150c9.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-11eb4e8daa8150c9.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
