/root/repo/target/release/deps/qmx_core-6a3fb4d8177b05e1.d: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs

/root/repo/target/release/deps/qmx_core-6a3fb4d8177b05e1: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs

crates/core/src/lib.rs:
crates/core/src/clock.rs:
crates/core/src/delay_optimal.rs:
crates/core/src/protocol.rs:
crates/core/src/reqqueue.rs:
crates/core/src/transport.rs:
