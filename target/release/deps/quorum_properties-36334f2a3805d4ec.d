/root/repo/target/release/deps/quorum_properties-36334f2a3805d4ec.d: tests/quorum_properties.rs

/root/repo/target/release/deps/quorum_properties-36334f2a3805d4ec: tests/quorum_properties.rs

tests/quorum_properties.rs:
