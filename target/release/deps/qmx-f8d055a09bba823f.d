/root/repo/target/release/deps/qmx-f8d055a09bba823f.d: src/lib.rs

/root/repo/target/release/deps/qmx-f8d055a09bba823f: src/lib.rs

src/lib.rs:
