/root/repo/target/release/deps/throughput-28e6489a5dbb2fdc.d: crates/bench/src/bin/throughput.rs

/root/repo/target/release/deps/throughput-28e6489a5dbb2fdc: crates/bench/src/bin/throughput.rs

crates/bench/src/bin/throughput.rs:
