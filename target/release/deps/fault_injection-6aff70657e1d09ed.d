/root/repo/target/release/deps/fault_injection-6aff70657e1d09ed.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-6aff70657e1d09ed: tests/fault_injection.rs

tests/fault_injection.rs:
