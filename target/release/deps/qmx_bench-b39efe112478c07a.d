/root/repo/target/release/deps/qmx_bench-b39efe112478c07a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/qmx_bench-b39efe112478c07a: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
