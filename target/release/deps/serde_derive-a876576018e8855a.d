/root/repo/target/release/deps/serde_derive-a876576018e8855a.d: crates/vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-a876576018e8855a.so: crates/vendor/serde_derive/src/lib.rs

crates/vendor/serde_derive/src/lib.rs:
