/root/repo/target/release/deps/safety_liveness-b0ee287fe26df7e3.d: tests/safety_liveness.rs

/root/repo/target/release/deps/safety_liveness-b0ee287fe26df7e3: tests/safety_liveness.rs

tests/safety_liveness.rs:
