/root/repo/target/release/deps/soak-9eb67875e22690dc.d: tests/soak.rs

/root/repo/target/release/deps/soak-9eb67875e22690dc: tests/soak.rs

tests/soak.rs:
