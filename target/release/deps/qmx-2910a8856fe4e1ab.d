/root/repo/target/release/deps/qmx-2910a8856fe4e1ab.d: src/lib.rs

/root/repo/target/release/deps/libqmx-2910a8856fe4e1ab.rlib: src/lib.rs

/root/repo/target/release/deps/libqmx-2910a8856fe4e1ab.rmeta: src/lib.rs

src/lib.rs:
