/root/repo/target/release/deps/qmx_workload-43d21e7e3c911b57.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/qmx_workload-43d21e7e3c911b57: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/replicate.rs:
crates/workload/src/scenario.rs:
crates/workload/src/stats.rs:
