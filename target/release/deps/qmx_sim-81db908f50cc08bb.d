/root/repo/target/release/deps/qmx_sim-81db908f50cc08bb.d: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libqmx_sim-81db908f50cc08bb.rmeta: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/delay.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
