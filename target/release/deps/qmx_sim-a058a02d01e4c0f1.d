/root/repo/target/release/deps/qmx_sim-a058a02d01e4c0f1.d: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/qmx_sim-a058a02d01e4c0f1: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/delay.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/trace.rs:
