/root/repo/target/release/deps/holdsweep-e557c5934f107cb2.d: crates/bench/src/bin/holdsweep.rs

/root/repo/target/release/deps/holdsweep-e557c5934f107cb2: crates/bench/src/bin/holdsweep.rs

crates/bench/src/bin/holdsweep.rs:
