/root/repo/target/release/deps/qmx_sim-7819ccfc40a6ab4f.d: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libqmx_sim-7819ccfc40a6ab4f.rlib: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libqmx_sim-7819ccfc40a6ab4f.rmeta: crates/sim/src/lib.rs crates/sim/src/delay.rs crates/sim/src/metrics.rs crates/sim/src/sim.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/delay.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sim.rs:
crates/sim/src/trace.rs:
