/root/repo/target/release/deps/serde-7dd195e389ec2734.d: crates/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7dd195e389ec2734.rlib: crates/vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7dd195e389ec2734.rmeta: crates/vendor/serde/src/lib.rs

crates/vendor/serde/src/lib.rs:
