/root/repo/target/release/deps/availability-37b4b51d26d84470.d: crates/bench/src/bin/availability.rs

/root/repo/target/release/deps/availability-37b4b51d26d84470: crates/bench/src/bin/availability.rs

crates/bench/src/bin/availability.rs:
