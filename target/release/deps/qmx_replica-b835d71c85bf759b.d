/root/repo/target/release/deps/qmx_replica-b835d71c85bf759b.d: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

/root/repo/target/release/deps/libqmx_replica-b835d71c85bf759b.rlib: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

/root/repo/target/release/deps/libqmx_replica-b835d71c85bf759b.rmeta: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

crates/replica/src/lib.rs:
crates/replica/src/kv.rs:
crates/replica/src/register.rs:
crates/replica/src/sim.rs:
