/root/repo/target/release/deps/qmx_replica-a4ee1be70819ae4c.d: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

/root/repo/target/release/deps/qmx_replica-a4ee1be70819ae4c: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

crates/replica/src/lib.rs:
crates/replica/src/kv.rs:
crates/replica/src/register.rs:
crates/replica/src/sim.rs:
