/root/repo/target/release/deps/qmx-819944df0f732ab1.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libqmx-819944df0f732ab1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
