/root/repo/target/release/deps/qmx_core-c71585a2af939adf.d: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs Cargo.toml

/root/repo/target/release/deps/libqmx_core-c71585a2af939adf.rmeta: crates/core/src/lib.rs crates/core/src/clock.rs crates/core/src/delay_optimal.rs crates/core/src/protocol.rs crates/core/src/reqqueue.rs crates/core/src/transport.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/clock.rs:
crates/core/src/delay_optimal.rs:
crates/core/src/protocol.rs:
crates/core/src/reqqueue.rs:
crates/core/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
