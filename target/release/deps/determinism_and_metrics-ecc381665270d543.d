/root/repo/target/release/deps/determinism_and_metrics-ecc381665270d543.d: tests/determinism_and_metrics.rs

/root/repo/target/release/deps/determinism_and_metrics-ecc381665270d543: tests/determinism_and_metrics.rs

tests/determinism_and_metrics.rs:
