/root/repo/target/release/deps/qmx_replica-1c009f1880ecd606.d: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs Cargo.toml

/root/repo/target/release/deps/libqmx_replica-1c009f1880ecd606.rmeta: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs Cargo.toml

crates/replica/src/lib.rs:
crates/replica/src/kv.rs:
crates/replica/src/register.rs:
crates/replica/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
