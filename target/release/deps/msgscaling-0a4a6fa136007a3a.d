/root/repo/target/release/deps/msgscaling-0a4a6fa136007a3a.d: crates/bench/src/bin/msgscaling.rs

/root/repo/target/release/deps/msgscaling-0a4a6fa136007a3a: crates/bench/src/bin/msgscaling.rs

crates/bench/src/bin/msgscaling.rs:
