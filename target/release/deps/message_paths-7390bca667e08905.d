/root/repo/target/release/deps/message_paths-7390bca667e08905.d: crates/baselines/tests/message_paths.rs

/root/repo/target/release/deps/message_paths-7390bca667e08905: crates/baselines/tests/message_paths.rs

crates/baselines/tests/message_paths.rs:
