/root/repo/target/release/deps/soak-13c82ee60ef05de7.d: tests/soak.rs Cargo.toml

/root/repo/target/release/deps/libsoak-13c82ee60ef05de7.rmeta: tests/soak.rs Cargo.toml

tests/soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
