/root/repo/target/release/deps/qmx_runtime-0fa3430259a572e6.d: crates/runtime/src/lib.rs crates/runtime/src/net.rs Cargo.toml

/root/repo/target/release/deps/libqmx_runtime-0fa3430259a572e6.rmeta: crates/runtime/src/lib.rs crates/runtime/src/net.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
