/root/repo/target/release/deps/invariants-8d67c682d83b90e4.d: tests/invariants.rs

/root/repo/target/release/deps/invariants-8d67c682d83b90e4: tests/invariants.rs

tests/invariants.rs:
