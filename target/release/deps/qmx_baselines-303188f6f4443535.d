/root/repo/target/release/deps/qmx_baselines-303188f6f4443535.d: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs Cargo.toml

/root/repo/target/release/deps/libqmx_baselines-303188f6f4443535.rmeta: crates/baselines/src/lib.rs crates/baselines/src/carvalho_roucairol.rs crates/baselines/src/lamport.rs crates/baselines/src/maekawa.rs crates/baselines/src/raymond.rs crates/baselines/src/ricart_agrawala.rs crates/baselines/src/singhal_dynamic.rs crates/baselines/src/suzuki_kasami.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/carvalho_roucairol.rs:
crates/baselines/src/lamport.rs:
crates/baselines/src/maekawa.rs:
crates/baselines/src/raymond.rs:
crates/baselines/src/ricart_agrawala.rs:
crates/baselines/src/singhal_dynamic.rs:
crates/baselines/src/suzuki_kasami.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
