/root/repo/target/release/deps/qmx_workload-a1a9d4ef54d59a19.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs Cargo.toml

/root/repo/target/release/deps/libqmx_workload-a1a9d4ef54d59a19.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/replicate.rs:
crates/workload/src/scenario.rs:
crates/workload/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
