/root/repo/target/release/deps/safety_liveness-89579ac132a63243.d: tests/safety_liveness.rs Cargo.toml

/root/repo/target/release/deps/libsafety_liveness-89579ac132a63243.rmeta: tests/safety_liveness.rs Cargo.toml

tests/safety_liveness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
