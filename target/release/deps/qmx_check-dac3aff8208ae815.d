/root/repo/target/release/deps/qmx_check-dac3aff8208ae815.d: crates/check/src/lib.rs

/root/repo/target/release/deps/qmx_check-dac3aff8208ae815: crates/check/src/lib.rs

crates/check/src/lib.rs:
