/root/repo/target/release/deps/fault_injection-1c8f67786d50a022.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/release/deps/libfault_injection-1c8f67786d50a022.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
