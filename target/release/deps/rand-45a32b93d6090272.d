/root/repo/target/release/deps/rand-45a32b93d6090272.d: crates/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-45a32b93d6090272.rlib: crates/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-45a32b93d6090272.rmeta: crates/vendor/rand/src/lib.rs

crates/vendor/rand/src/lib.rs:
