/root/repo/target/release/deps/proptest_random_runs-b2a8efaae90690d3.d: tests/proptest_random_runs.rs

/root/repo/target/release/deps/proptest_random_runs-b2a8efaae90690d3: tests/proptest_random_runs.rs

tests/proptest_random_runs.rs:
