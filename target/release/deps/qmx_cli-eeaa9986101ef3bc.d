/root/repo/target/release/deps/qmx_cli-eeaa9986101ef3bc.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/qmx_cli-eeaa9986101ef3bc: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
