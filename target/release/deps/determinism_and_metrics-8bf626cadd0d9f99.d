/root/repo/target/release/deps/determinism_and_metrics-8bf626cadd0d9f99.d: tests/determinism_and_metrics.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism_and_metrics-8bf626cadd0d9f99.rmeta: tests/determinism_and_metrics.rs Cargo.toml

tests/determinism_and_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
