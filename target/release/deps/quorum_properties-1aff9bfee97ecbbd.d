/root/repo/target/release/deps/quorum_properties-1aff9bfee97ecbbd.d: tests/quorum_properties.rs

/root/repo/target/release/deps/quorum_properties-1aff9bfee97ecbbd: tests/quorum_properties.rs

tests/quorum_properties.rs:
