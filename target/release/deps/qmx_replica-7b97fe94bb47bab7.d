/root/repo/target/release/deps/qmx_replica-7b97fe94bb47bab7.d: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

/root/repo/target/release/deps/libqmx_replica-7b97fe94bb47bab7.rlib: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

/root/repo/target/release/deps/libqmx_replica-7b97fe94bb47bab7.rmeta: crates/replica/src/lib.rs crates/replica/src/kv.rs crates/replica/src/register.rs crates/replica/src/sim.rs

crates/replica/src/lib.rs:
crates/replica/src/kv.rs:
crates/replica/src/register.rs:
crates/replica/src/sim.rs:
