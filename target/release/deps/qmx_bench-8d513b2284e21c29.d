/root/repo/target/release/deps/qmx_bench-8d513b2284e21c29.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libqmx_bench-8d513b2284e21c29.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libqmx_bench-8d513b2284e21c29.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
