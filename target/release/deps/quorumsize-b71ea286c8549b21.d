/root/repo/target/release/deps/quorumsize-b71ea286c8549b21.d: crates/bench/src/bin/quorumsize.rs

/root/repo/target/release/deps/quorumsize-b71ea286c8549b21: crates/bench/src/bin/quorumsize.rs

crates/bench/src/bin/quorumsize.rs:
