/root/repo/target/release/deps/heavyload-caae1f7c0bb6ddb9.d: crates/bench/src/bin/heavyload.rs

/root/repo/target/release/deps/heavyload-caae1f7c0bb6ddb9: crates/bench/src/bin/heavyload.rs

crates/bench/src/bin/heavyload.rs:
