/root/repo/target/release/deps/qmx_workload-53f2364e8032383e.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/libqmx_workload-53f2364e8032383e.rlib: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/libqmx_workload-53f2364e8032383e.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/replicate.rs crates/workload/src/scenario.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/replicate.rs:
crates/workload/src/scenario.rs:
crates/workload/src/stats.rs:
