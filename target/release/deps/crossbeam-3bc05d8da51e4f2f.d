/root/repo/target/release/deps/crossbeam-3bc05d8da51e4f2f.d: crates/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-3bc05d8da51e4f2f.rlib: crates/vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-3bc05d8da51e4f2f.rmeta: crates/vendor/crossbeam/src/lib.rs

crates/vendor/crossbeam/src/lib.rs:
