/root/repo/target/release/deps/qmx_runtime-17daebbd211b79fc.d: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/release/deps/libqmx_runtime-17daebbd211b79fc.rlib: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/release/deps/libqmx_runtime-17daebbd211b79fc.rmeta: crates/runtime/src/lib.rs crates/runtime/src/net.rs

crates/runtime/src/lib.rs:
crates/runtime/src/net.rs:
