/root/repo/target/release/deps/parking_lot-e16b8d6a380cfaab.d: crates/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e16b8d6a380cfaab.rlib: crates/vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e16b8d6a380cfaab.rmeta: crates/vendor/parking_lot/src/lib.rs

crates/vendor/parking_lot/src/lib.rs:
