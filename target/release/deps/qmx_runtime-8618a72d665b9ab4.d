/root/repo/target/release/deps/qmx_runtime-8618a72d665b9ab4.d: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/release/deps/libqmx_runtime-8618a72d665b9ab4.rlib: crates/runtime/src/lib.rs crates/runtime/src/net.rs

/root/repo/target/release/deps/libqmx_runtime-8618a72d665b9ab4.rmeta: crates/runtime/src/lib.rs crates/runtime/src/net.rs

crates/runtime/src/lib.rs:
crates/runtime/src/net.rs:
