/root/repo/target/release/deps/crossbeam-68a3e85b76c487e9.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-68a3e85b76c487e9: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
