/root/repo/target/release/examples/quickstart-94679572ff06332c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-94679572ff06332c: examples/quickstart.rs

examples/quickstart.rs:
