/root/repo/target/release/examples/replicated_store-01b0b26b036848c3.d: examples/replicated_store.rs

/root/repo/target/release/examples/replicated_store-01b0b26b036848c3: examples/replicated_store.rs

examples/replicated_store.rs:
