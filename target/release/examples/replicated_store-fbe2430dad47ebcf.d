/root/repo/target/release/examples/replicated_store-fbe2430dad47ebcf.d: examples/replicated_store.rs Cargo.toml

/root/repo/target/release/examples/libreplicated_store-fbe2430dad47ebcf.rmeta: examples/replicated_store.rs Cargo.toml

examples/replicated_store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
