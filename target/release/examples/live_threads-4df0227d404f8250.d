/root/repo/target/release/examples/live_threads-4df0227d404f8250.d: examples/live_threads.rs Cargo.toml

/root/repo/target/release/examples/liblive_threads-4df0227d404f8250.rmeta: examples/live_threads.rs Cargo.toml

examples/live_threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
