/root/repo/target/release/examples/replicated_store-8df015527c72da42.d: examples/replicated_store.rs

/root/repo/target/release/examples/replicated_store-8df015527c72da42: examples/replicated_store.rs

examples/replicated_store.rs:
