/root/repo/target/release/examples/algorithm_shootout-37f3240abe546cb3.d: examples/algorithm_shootout.rs Cargo.toml

/root/repo/target/release/examples/libalgorithm_shootout-37f3240abe546cb3.rmeta: examples/algorithm_shootout.rs Cargo.toml

examples/algorithm_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
