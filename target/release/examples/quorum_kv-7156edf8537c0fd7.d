/root/repo/target/release/examples/quorum_kv-7156edf8537c0fd7.d: examples/quorum_kv.rs Cargo.toml

/root/repo/target/release/examples/libquorum_kv-7156edf8537c0fd7.rmeta: examples/quorum_kv.rs Cargo.toml

examples/quorum_kv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
