/root/repo/target/release/examples/fault_tolerant_lock-32d1ecd2110b2e97.d: examples/fault_tolerant_lock.rs

/root/repo/target/release/examples/fault_tolerant_lock-32d1ecd2110b2e97: examples/fault_tolerant_lock.rs

examples/fault_tolerant_lock.rs:
