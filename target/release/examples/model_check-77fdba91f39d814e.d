/root/repo/target/release/examples/model_check-77fdba91f39d814e.d: examples/model_check.rs Cargo.toml

/root/repo/target/release/examples/libmodel_check-77fdba91f39d814e.rmeta: examples/model_check.rs Cargo.toml

examples/model_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
