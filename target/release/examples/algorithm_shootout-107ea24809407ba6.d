/root/repo/target/release/examples/algorithm_shootout-107ea24809407ba6.d: examples/algorithm_shootout.rs

/root/repo/target/release/examples/algorithm_shootout-107ea24809407ba6: examples/algorithm_shootout.rs

examples/algorithm_shootout.rs:
