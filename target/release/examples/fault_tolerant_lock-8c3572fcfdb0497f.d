/root/repo/target/release/examples/fault_tolerant_lock-8c3572fcfdb0497f.d: examples/fault_tolerant_lock.rs

/root/repo/target/release/examples/fault_tolerant_lock-8c3572fcfdb0497f: examples/fault_tolerant_lock.rs

examples/fault_tolerant_lock.rs:
