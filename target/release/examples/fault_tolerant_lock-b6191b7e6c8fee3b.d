/root/repo/target/release/examples/fault_tolerant_lock-b6191b7e6c8fee3b.d: examples/fault_tolerant_lock.rs Cargo.toml

/root/repo/target/release/examples/libfault_tolerant_lock-b6191b7e6c8fee3b.rmeta: examples/fault_tolerant_lock.rs Cargo.toml

examples/fault_tolerant_lock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
