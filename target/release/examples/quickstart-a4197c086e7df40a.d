/root/repo/target/release/examples/quickstart-a4197c086e7df40a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a4197c086e7df40a: examples/quickstart.rs

examples/quickstart.rs:
