/root/repo/target/release/examples/algorithm_shootout-63f8b514255392c0.d: examples/algorithm_shootout.rs

/root/repo/target/release/examples/algorithm_shootout-63f8b514255392c0: examples/algorithm_shootout.rs

examples/algorithm_shootout.rs:
