/root/repo/target/release/examples/live_threads-640df8ba7a28748f.d: examples/live_threads.rs

/root/repo/target/release/examples/live_threads-640df8ba7a28748f: examples/live_threads.rs

examples/live_threads.rs:
