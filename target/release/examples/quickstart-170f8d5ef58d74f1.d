/root/repo/target/release/examples/quickstart-170f8d5ef58d74f1.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-170f8d5ef58d74f1.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
