/root/repo/target/release/examples/model_check-0e37623bd44ebbf8.d: examples/model_check.rs

/root/repo/target/release/examples/model_check-0e37623bd44ebbf8: examples/model_check.rs

examples/model_check.rs:
