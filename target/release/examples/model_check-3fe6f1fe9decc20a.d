/root/repo/target/release/examples/model_check-3fe6f1fe9decc20a.d: examples/model_check.rs

/root/repo/target/release/examples/model_check-3fe6f1fe9decc20a: examples/model_check.rs

examples/model_check.rs:
