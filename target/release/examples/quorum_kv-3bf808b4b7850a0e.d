/root/repo/target/release/examples/quorum_kv-3bf808b4b7850a0e.d: examples/quorum_kv.rs

/root/repo/target/release/examples/quorum_kv-3bf808b4b7850a0e: examples/quorum_kv.rs

examples/quorum_kv.rs:
