/root/repo/target/release/examples/live_threads-a8283058ca4f5cdf.d: examples/live_threads.rs

/root/repo/target/release/examples/live_threads-a8283058ca4f5cdf: examples/live_threads.rs

examples/live_threads.rs:
