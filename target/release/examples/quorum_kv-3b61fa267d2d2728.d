/root/repo/target/release/examples/quorum_kv-3b61fa267d2d2728.d: examples/quorum_kv.rs

/root/repo/target/release/examples/quorum_kv-3b61fa267d2d2728: examples/quorum_kv.rs

examples/quorum_kv.rs:
