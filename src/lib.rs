//! # qmx — delay-optimal quorum-based distributed mutual exclusion
//!
//! Umbrella crate for the `qmx` workspace, a full reproduction of
//! *"A Delay-Optimal Quorum-Based Mutual Exclusion Scheme with
//! Fault-Tolerance Capability"* (Cao, Singhal, Deng, Rishe, Sun — ICDCS
//! 1998). It re-exports the public API of every member crate so examples and
//! applications can depend on a single crate:
//!
//! * [`qmx_core`] — the delay-optimal protocol and the shared
//!   [`Protocol`](qmx_core::Protocol) state-machine interface.
//! * [`qmx_quorum`] — coteries and quorum constructions (grid, FPP,
//!   tree, HQC, grid-set, RST, majority) plus availability analysis.
//! * [`qmx_sim`] — deterministic discrete-event simulator.
//! * [`qmx_baselines`] — Lamport, Ricart–Agrawala, Maekawa,
//!   Suzuki–Kasami, Raymond, and Singhal-dynamic baselines.
//! * [`qmx_workload`] — workload generators, scenario runner, and
//!   metrics.
//! * [`qmx_runtime`] — the networked runtime: framed transport seam
//!   (loopback, TCP, UDS) and the poll-driven per-site
//!   [`Node`](qmx_runtime::node::Node) event loop.
//! * [`qmx_client`] — client library (poll-driven core, blocking
//!   wrapper), the deterministic loopback cluster harness, and the
//!   open-loop bench engine.
//! * [`qmx_replica`] — replicated data management (read/write
//!   quorums with writes serialized by the mutex).
//! * [`qmx_check`] — bounded exhaustive model checker.
//!
//! See the repository `README.md` for a guided tour and `EXPERIMENTS.md` for
//! the paper-reproduction results.

#![forbid(unsafe_code)]

pub use qmx_baselines as baselines;
pub use qmx_check as check;
pub use qmx_client as client;
pub use qmx_core as core;
pub use qmx_quorum as quorum;
pub use qmx_replica as replica;
pub use qmx_runtime as runtime;
pub use qmx_sim as sim;
pub use qmx_workload as workload;
