//! Workspace-local stand-in for `serde` (offline build).
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on a few core
//! types for downstream consumers; nothing in-tree serializes through a
//! serde `Serializer`. The stand-in therefore provides marker traits and a
//! derive that implements them structurally (so `#[derive(Serialize)]`
//! compiles and the bounds hold), without any data-format machinery.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types whose values can be serialized.
pub trait Serialize {}

/// Marker for types whose values can be deserialized.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
