//! Workspace-local stand-in for `proptest` (offline build).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, [`prop_oneof!`], `any::<T>()`,
//! [`collection::btree_set`], `prop_assert!`/`prop_assert_eq!`, and a
//! [`test_runner::Config`] with a `cases` knob.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports (and persists) the RNG seed
//!   that produced it instead of a minimized input. Re-running replays all
//!   persisted seeds first, exactly like upstream's regression files.
//! * **Deterministic case generation.** Case seeds derive from the test
//!   name, so CI runs are reproducible; set `PROPTEST_RNG_SEED` to explore
//!   a different stream.
//! * Regression entries use a `cc qmx-<hex>` format (upstream's hashed `cc`
//!   entries cannot be decoded without upstream's generator).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest test starts with.
pub mod prelude {
    pub use crate::strategy::{any, Just, OneOf, OneOfBuilder, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (3u32..=5).generate(&mut rng);
            assert!((3..=5).contains(&w));
            let m = (0u64..4).prop_map(|x| x * 2).generate(&mut rng);
            assert!(m % 2 == 0 && m < 8);
            let (a, b) = (0u64..3, 10u64..13).generate(&mut rng);
            assert!(a < 3 && (10..13).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u32), Just(2u32), (5u32..6).prop_map(|x| x)];
        let mut rng = TestRng::from_seed(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen, [1u32, 2, 5].into_iter().collect());
    }

    #[test]
    fn btree_set_respects_size_range() {
        let s = crate::collection::btree_set(0u32..100, 2..5);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!((2..5).contains(&set.len()), "len {}", set.len());
        }
    }

    #[test]
    fn btree_set_caps_at_domain_size() {
        // Only 2 distinct elements exist; asking for up to 4 must not hang.
        let s = crate::collection::btree_set(0u32..2, 0..5);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..50 {
            assert!(s.generate(&mut rng).len() <= 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: args bind, config applies, asserts work.
        #[test]
        fn macro_smoke(x in 0u64..50, y in any::<u64>(), flip in prop_oneof![Just(true), Just(false)]) {
            prop_assert!(x < 50);
            prop_assert_eq!(u64::from(flip) + u64::from(!flip), 1);
            let _ = y;
        }
    }
}
