//! Value-generation strategies (no shrinking; see the crate docs).

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_raw() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_raw() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice between two strategies sharing a value type; chains of
/// these implement [`prop_oneof!`](crate::prop_oneof). `a_arms` counts the
/// original arms folded into `a`, keeping the overall choice uniform.
#[derive(Debug, Clone)]
pub struct OneOf<A, B> {
    a: A,
    b: B,
    a_arms: u32,
}

impl<A: Strategy, B: Strategy<Value = A::Value>> Strategy for OneOf<A, B> {
    type Value = A::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.rng.gen_range(0..self.a_arms + 1) < self.a_arms {
            self.a.generate(rng)
        } else {
            self.b.generate(rng)
        }
    }
}

/// Left-fold builder behind [`prop_oneof!`](crate::prop_oneof). The
/// `Strategy<Value = ...>` bound on [`OneOfBuilder::or`] unifies every
/// arm's value type during trait inference (so `Just(9)` in a `usize`
/// union types its literal correctly, like upstream's `TupleUnion`).
#[derive(Debug, Clone)]
pub struct OneOfBuilder<S> {
    s: S,
    arms: u32,
}

impl<S: Strategy> OneOfBuilder<S> {
    /// Starts a union with its first arm.
    pub fn new(s: S) -> Self {
        OneOfBuilder { s, arms: 1 }
    }

    /// Adds an arm.
    pub fn or<B: Strategy<Value = S::Value>>(self, b: B) -> OneOfBuilder<OneOf<S, B>> {
        let arms = self.arms;
        OneOfBuilder {
            s: OneOf {
                a: self.s,
                b,
                a_arms: arms,
            },
            arms: arms + 1,
        }
    }

    /// Finishes the union.
    pub fn build(self) -> S {
        self.s
    }
}

/// Uniformly picks one strategy arm, then draws from it.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        let u = $crate::strategy::OneOfBuilder::new($first);
        $(let u = u.or($rest);)*
        u.build()
    }};
}

/// Asserts inside a property (reports the failing seed via the runner).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs `Config::cases` random cases (after replaying any
/// persisted regression seeds).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let cfg = $cfg;
            $crate::test_runner::run_cases(
                stringify!($name),
                file!(),
                &cfg,
                |rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    $body
                },
            );
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}
