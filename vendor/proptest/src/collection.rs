//! Collection strategies (the subset this workspace uses).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for [`BTreeSet`]s built by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = if self.size.is_empty() {
            self.size.start
        } else {
            rng.rng.gen_range(self.size.clone())
        };
        let mut out = BTreeSet::new();
        // The element domain may hold fewer than `target` distinct values;
        // bound the attempts so generation always terminates.
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(20) + 20 {
            out.insert(self.elem.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Sets of `elem`-generated values with a size drawn from `size`.
pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { elem, size }
}
