//! The case runner: deterministic seed schedule, regression-seed replay and
//! persistence.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::io::Write;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Runner configuration (upstream's `ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// RNG handed to strategies; wraps the workspace's deterministic `StdRng`.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Builds a generator for one case seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Raw 64 uniform bits (used by `any::<int>()`).
    pub fn next_raw(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// FNV-1a, for deriving a stable per-test base seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Path of the regression file for a test source file: upstream's
/// convention, `tests/foo.rs` → `tests/foo.proptest-regressions`.
fn regression_path(source_file: &str) -> PathBuf {
    PathBuf::from(source_file.strip_suffix(".rs").unwrap_or(source_file))
        .with_extension("proptest-regressions")
}

/// Persisted seeds for `test_name` (lines `cc qmx-<hex> # <test> ...`).
/// Upstream's hashed `cc <sha>` entries are skipped — they cannot be
/// decoded without upstream's generator.
fn persisted_seeds(source_file: &str, test_name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regression_path(source_file)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("cc qmx-") else {
            continue;
        };
        let mut parts = rest.split_whitespace();
        let Some(hex) = parts.next() else { continue };
        // A seed line may name its test after `#`; replay unnamed seeds
        // everywhere, named seeds only in the matching test.
        let named = line.split('#').nth(1).map(str::trim);
        if named.is_some_and(|n| !n.starts_with(test_name)) {
            continue;
        }
        if let Ok(seed) = u64::from_str_radix(hex, 16) {
            out.push(seed);
        }
    }
    out
}

fn persist_seed(source_file: &str, test_name: &str, seed: u64) {
    let path = regression_path(source_file);
    let line = format!("cc qmx-{seed:016x} # {test_name}\n");
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    if existing.contains(line.trim_end()) {
        return;
    }
    // Best-effort: failure to persist must not mask the test failure.
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Runs persisted regression seeds, then `cfg.cases` fresh cases. On a
/// panic inside `case`, prints and persists the seed, then re-panics.
pub fn run_cases<F>(test_name: &str, source_file: &str, cfg: &Config, mut case: F)
where
    F: FnMut(&mut TestRng),
{
    let base = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(test_name));
    let replay = persisted_seeds(source_file, test_name);
    let fresh =
        (0..u64::from(cfg.cases)).map(|i| base.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15)));
    for (i, seed) in replay.into_iter().chain(fresh).enumerate() {
        let mut rng = TestRng::from_seed(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = outcome {
            persist_seed(source_file, test_name, seed);
            eprintln!(
                "proptest stand-in: {test_name} case {i} FAILED with rng seed \
                 qmx-{seed:016x} (persisted to {}; replay is automatic)",
                regression_path(source_file).display()
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_per_name() {
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
        assert_ne!(fnv1a("abc"), fnv1a("abd"));
    }

    #[test]
    fn regression_path_follows_upstream_convention() {
        assert_eq!(
            regression_path("tests/foo.rs"),
            PathBuf::from("tests/foo.proptest-regressions")
        );
    }

    #[test]
    fn runner_executes_requested_cases() {
        let cfg = Config {
            cases: 5,
            ..Config::default()
        };
        let mut n = 0;
        run_cases("counting", "/nonexistent/x.rs", &cfg, |_rng| n += 1);
        assert_eq!(n, 5);
    }
}
