//! Workspace-local stand-in for `serde_derive` (offline build).
//!
//! Emits structural marker-trait impls for the stand-in `serde` crate. Only
//! plain (non-generic) structs and enums are supported, which covers every
//! derive site in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive stand-in: could not find a struct/enum name");
}

/// Derives the stand-in `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

/// Derives the stand-in `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
