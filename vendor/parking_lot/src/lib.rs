//! Workspace-local stand-in for `parking_lot` (offline build): a `Mutex`
//! with the parking_lot API shape (`lock()` returns the guard directly, no
//! poisoning) implemented over `std::sync::Mutex`.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
///
/// Poisoning is deliberately ignored, matching parking_lot semantics: a
/// panicking critical section does not wedge every later locker.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("free"), 5);
    }
}
