//! Workspace-local stand-in for `criterion` (offline build).
//!
//! Benchmarks compile and run against this crate with the same source: it
//! provides `criterion_group!`/`criterion_main!`, benchmark groups,
//! `iter`/`iter_batched`/`iter_batched_ref`, and prints mean wall-clock
//! timings. There is no statistical analysis — under `cargo test` (or when
//! `--test` is passed, as cargo does for harness-less bench targets) each
//! benchmark body runs once as a smoke test; under `cargo bench` a short
//! fixed-iteration timing loop runs instead.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are sized (API-compatible marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    iters: u64,
    last: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.last = Some(start.elapsed());
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.last = Some(total);
    }

    /// Like [`Bencher::iter_batched`] but passes the input by `&mut`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.last = Some(total);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            iters: self.crit.iters,
            last: None,
        };
        f(&mut b);
        let per_iter = b
            .last
            .map(|d| d.as_secs_f64() / b.iters.max(1) as f64)
            .unwrap_or(0.0);
        let mut line = format!("{}/{id}: {:.3} ms/iter", self.name, per_iter * 1e3);
        if let Some(Throughput::Elements(e)) = self.throughput {
            if per_iter > 0.0 {
                line.push_str(&format!(" ({:.0} elem/s)", e as f64 / per_iter));
            }
        }
        println!("{line}");
    }

    /// Ends the group (no-op; prints happen per benchmark).
    pub fn finish(self) {}
}

/// Benchmark harness entry point (API-compatible subset).
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Smoke-test mode (one iteration) under `cargo test`, which passes
        // `--test` to harness-less bench binaries.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iters: if test_mode { 1 } else { 10 },
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            crit: self,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion { iters: 3 };
        let mut g = c.benchmark_group("t");
        let mut runs = 0;
        g.throughput(Throughput::Elements(10));
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn batched_setup_not_reused() {
        let mut c = Criterion { iters: 4 };
        let mut g = c.benchmark_group("t");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.bench_function("batched_ref", |b| {
            b.iter_batched_ref(|| vec![1], |v| v.push(2), BatchSize::SmallInput)
        });
        g.finish();
    }
}
