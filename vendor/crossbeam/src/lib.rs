//! Workspace-local stand-in for the `crossbeam` crate (offline build).
//!
//! Only the `channel` module surface the runtime uses is provided:
//! [`channel::unbounded`], cloneable [`channel::Sender`],
//! [`channel::Receiver`] with `recv_timeout`, and the std error types. The
//! implementation delegates to `std::sync::mpsc`, which matches the needed
//! semantics (MPSC, unbounded, FIFO per sender).

#![forbid(unsafe_code)]

/// Multi-producer single-consumer channels (crossbeam-channel API subset).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel; cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`; errors only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_senders_fan_in() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
