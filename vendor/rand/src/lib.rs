//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the *small* slice of the rand 0.8 API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, [`Rng::gen_bool`], and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, fast, and fully
//! deterministic, which is all the simulator and the test suite require.
//! Streams differ from upstream `rand`, so recorded seeds produce different
//! (but equally deterministic) executions than they would with crates.io
//! rand.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform generator interface (subset of `rand_core`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy; this offline stand-in derives it
    /// from the system clock instead (never used on determinism-critical
    /// paths).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Types that can describe a sampling range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range needs a non-empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = uniform_u128_below(rng, span);
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range needs lo <= hi");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = uniform_u128_below(rng, span);
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform draw in `[0, span)` (span ≤ 2^64 here in practice) via rejection
/// sampling to avoid modulo bias.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Full-width draw (only reachable for ranges spanning ≥ 2^64).
        return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
    }
    let span = span as u64;
    if span.is_power_of_two() {
        return (rng.next_u64() & (span - 1)) as u128;
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span) as u128;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range needs a non-empty range");
        let unit = unit_f64(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }

    /// A uniformly random `u64` (the only `gen::<T>()` the workspace needs).
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Same API, different (but stable) stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix of any seed
            // cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_fill_the_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi);
    }
}
