//! The replicated register state machine.

use qmx_core::{Config, DelayOptimal, Effects, MsgKind, MsgMeta, Protocol, SiteId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A version-stamped value. Higher version wins; versions are issued under
/// mutual exclusion so they are unique and gapless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Versioned {
    /// Monotone write version (0 = initial value).
    pub version: u64,
    /// The stored value.
    pub value: u64,
}

impl Versioned {
    /// The initial (version 0) value.
    pub fn initial(value: u64) -> Self {
        Versioned { version: 0, value }
    }
}

/// Client operation identifier (assigned by the driver; unique per run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

/// Completed-operation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// A read returning the highest-versioned value in the read quorum.
    Read(Versioned),
    /// A write installed at this version.
    Write {
        /// The version the write was assigned.
        version: u64,
    },
}

/// Wire messages of the replicated register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegMsg {
    /// Tunneled mutual-exclusion traffic (the embedded [`DelayOptimal`]).
    Mutex(qmx_core::Msg),
    /// Writer asking a write-quorum member for its current version.
    VersionReq {
        /// The write operation this belongs to.
        op: OpId,
    },
    /// Response to [`RegMsg::VersionReq`].
    VersionResp {
        /// The write operation this belongs to.
        op: OpId,
        /// The member's current replica.
        stored: Versioned,
    },
    /// Install a new version at a write-quorum member.
    Install {
        /// The write operation this belongs to.
        op: OpId,
        /// The value to install.
        val: Versioned,
    },
    /// Acknowledge an [`RegMsg::Install`].
    InstallAck {
        /// The write operation this belongs to.
        op: OpId,
    },
    /// Reader asking a read-quorum member for its replica.
    ReadReq {
        /// The read operation this belongs to.
        op: OpId,
    },
    /// Response to [`RegMsg::ReadReq`].
    ReadResp {
        /// The read operation this belongs to.
        op: OpId,
        /// The member's current replica.
        stored: Versioned,
    },
}

impl MsgMeta for RegMsg {
    fn kind(&self) -> MsgKind {
        match self {
            RegMsg::Mutex(m) => m.kind(),
            RegMsg::VersionReq { .. } | RegMsg::ReadReq { .. } => MsgKind::Request,
            RegMsg::VersionResp { .. } | RegMsg::ReadResp { .. } | RegMsg::InstallAck { .. } => {
                MsgKind::Reply
            }
            RegMsg::Install { .. } => MsgKind::Info,
        }
    }
}

/// Configuration of one replica site.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Quorum for the embedded mutual exclusion (arbiters of writes).
    pub mutex_quorum: Vec<SiteId>,
    /// Members consulted on reads (`R` of them — all are consulted; the
    /// quorum IS the set).
    pub read_quorum: Vec<SiteId>,
    /// Members written on writes.
    pub write_quorum: Vec<SiteId>,
    /// Initial value of the register.
    pub initial: u64,
    /// Read repair: after a read, push the newest version to any queried
    /// member that returned a stale one (anti-entropy; keeps replicas
    /// converged even when they sit outside every write quorum).
    pub read_repair: bool,
}

#[derive(Debug, Clone)]
enum Pending {
    WriteAcquiring {
        op: OpId,
        value: u64,
    },
    WriteReadingVersion {
        op: OpId,
        value: u64,
        versions: BTreeMap<SiteId, u64>,
    },
    WriteInstalling {
        op: OpId,
        version: u64,
        acks: BTreeSet<SiteId>,
    },
    Reading {
        op: OpId,
        resps: BTreeMap<SiteId, Versioned>,
    },
}

/// One site of the replicated register: a full replica, a read quorum, a
/// write quorum, and an embedded delay-optimal mutex serializing writes.
///
/// ```
/// use qmx_core::{Effects, SiteId};
/// use qmx_replica::{OpId, ReplicaConfig, ReplicaSite};
/// let mut site = ReplicaSite::new(
///     SiteId(0),
///     ReplicaConfig {
///         mutex_quorum: vec![SiteId(0)], // single-site degenerate case
///         read_quorum: vec![SiteId(0)],
///         write_quorum: vec![SiteId(0)],
///         initial: 0,
///         read_repair: false,
///     },
/// );
/// let mut fx = Effects::new();
/// site.submit_write(OpId(1), 42, &mut fx);
/// // Everything is local: the write completes synchronously.
/// let done = site.take_completed();
/// assert_eq!(done.len(), 1);
/// assert_eq!(site.stored().value, 42);
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaSite {
    site: SiteId,
    mutex: DelayOptimal,
    store: Versioned,
    read_quorum: Vec<SiteId>,
    write_quorum: Vec<SiteId>,
    read_repair: bool,
    pending: Option<Pending>,
    completed: Vec<(OpId, OpResult)>,
    local_q: VecDeque<(SiteId, RegMsg)>,
}

impl ReplicaSite {
    /// Creates a replica site.
    ///
    /// # Panics
    ///
    /// Panics if any quorum is empty.
    pub fn new(site: SiteId, cfg: ReplicaConfig) -> Self {
        assert!(!cfg.read_quorum.is_empty(), "read quorum must be non-empty");
        assert!(
            !cfg.write_quorum.is_empty(),
            "write quorum must be non-empty"
        );
        ReplicaSite {
            site,
            mutex: DelayOptimal::new(site, cfg.mutex_quorum, Config::default()),
            store: Versioned::initial(cfg.initial),
            read_quorum: cfg.read_quorum,
            write_quorum: cfg.write_quorum,
            read_repair: cfg.read_repair,
            pending: None,
            completed: Vec::new(),
            local_q: VecDeque::new(),
        }
    }

    /// This site's id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The replica currently stored at this site.
    pub fn stored(&self) -> Versioned {
        self.store
    }

    /// Whether an operation is in progress at this site.
    pub fn busy(&self) -> bool {
        self.pending.is_some()
    }

    /// Drains operations completed since the last call.
    pub fn take_completed(&mut self) -> Vec<(OpId, OpResult)> {
        std::mem::take(&mut self.completed)
    }

    /// Starts a read.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in progress.
    pub fn submit_read(&mut self, op: OpId, fx: &mut Effects<RegMsg>) {
        assert!(self.pending.is_none(), "one operation at a time per site");
        self.pending = Some(Pending::Reading {
            op,
            resps: BTreeMap::new(),
        });
        for m in self.read_quorum.clone() {
            self.route(fx, m, RegMsg::ReadReq { op });
        }
        self.pump(fx);
    }

    /// Starts a write of `value`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in progress.
    pub fn submit_write(&mut self, op: OpId, value: u64, fx: &mut Effects<RegMsg>) {
        assert!(self.pending.is_none(), "one operation at a time per site");
        self.pending = Some(Pending::WriteAcquiring { op, value });
        let mut mfx = Effects::new();
        self.mutex.request_cs(&mut mfx);
        self.forward_mutex_effects(mfx, fx);
        self.pump(fx);
    }

    /// Delivers a wire message.
    pub fn handle(&mut self, from: SiteId, msg: RegMsg, fx: &mut Effects<RegMsg>) {
        self.dispatch(from, msg, fx);
        self.pump(fx);
    }

    /// §6 integration: failure notices forwarded to the embedded mutex.
    pub fn on_site_failure(&mut self, failed: SiteId, fx: &mut Effects<RegMsg>) {
        let mut mfx = Effects::new();
        self.mutex.on_site_failure(failed, &mut mfx);
        self.forward_mutex_effects(mfx, fx);
        self.pump(fx);
    }

    fn route(&mut self, fx: &mut Effects<RegMsg>, to: SiteId, msg: RegMsg) {
        if to == self.site {
            self.local_q.push_back((self.site, msg));
        } else {
            fx.send(to, msg);
        }
    }

    fn pump(&mut self, fx: &mut Effects<RegMsg>) {
        while let Some((from, msg)) = self.local_q.pop_front() {
            self.dispatch(from, msg, fx);
        }
    }

    fn forward_mutex_effects(&mut self, mut mfx: Effects<qmx_core::Msg>, fx: &mut Effects<RegMsg>) {
        let (sends, entered) = mfx.drain();
        for (to, m) in sends {
            // The mutex never sends to itself (it short-circuits), so no
            // local routing is needed — but keep it uniform anyway.
            self.route(fx, to, RegMsg::Mutex(m));
        }
        if !entered.is_empty() {
            self.on_cs_granted(fx);
        }
    }

    /// The write lock is ours: discover the newest version.
    fn on_cs_granted(&mut self, fx: &mut Effects<RegMsg>) {
        let Some(Pending::WriteAcquiring { op, value }) = self.pending.clone() else {
            unreachable!("CS granted without a pending write");
        };
        self.pending = Some(Pending::WriteReadingVersion {
            op,
            value,
            versions: BTreeMap::new(),
        });
        for m in self.write_quorum.clone() {
            self.route(fx, m, RegMsg::VersionReq { op });
        }
    }

    fn dispatch(&mut self, from: SiteId, msg: RegMsg, fx: &mut Effects<RegMsg>) {
        match msg {
            RegMsg::Mutex(m) => {
                let mut mfx = Effects::new();
                self.mutex.handle(from, m, &mut mfx);
                self.forward_mutex_effects(mfx, fx);
            }
            RegMsg::VersionReq { op } => {
                let stored = self.store;
                self.route(fx, from, RegMsg::VersionResp { op, stored });
            }
            RegMsg::VersionResp { op, stored } => {
                let Some(Pending::WriteReadingVersion {
                    op: cur,
                    value,
                    mut versions,
                }) = self.pending.clone()
                else {
                    return; // stale response
                };
                if cur != op {
                    return;
                }
                versions.insert(from, stored.version);
                if self.write_quorum.iter().all(|m| versions.contains_key(m)) {
                    // All write-quorum members answered: issue version+1.
                    let version = versions.values().max().copied().unwrap_or(0) + 1;
                    self.pending = Some(Pending::WriteInstalling {
                        op,
                        version,
                        acks: BTreeSet::new(),
                    });
                    for m in self.write_quorum.clone() {
                        self.route(
                            fx,
                            m,
                            RegMsg::Install {
                                op,
                                val: Versioned { version, value },
                            },
                        );
                    }
                } else {
                    self.pending = Some(Pending::WriteReadingVersion {
                        op: cur,
                        value,
                        versions,
                    });
                }
            }
            RegMsg::Install { op, val } => {
                if val.version > self.store.version {
                    self.store = val;
                }
                self.route(fx, from, RegMsg::InstallAck { op });
            }
            RegMsg::InstallAck { op } => {
                let Some(Pending::WriteInstalling {
                    op: cur,
                    version,
                    mut acks,
                }) = self.pending.clone()
                else {
                    return; // stale ack
                };
                if cur != op {
                    return;
                }
                acks.insert(from);
                if self.write_quorum.iter().all(|m| acks.contains(m)) {
                    // Durable on the full write quorum: release the write
                    // lock and report completion.
                    self.pending = None;
                    self.completed.push((op, OpResult::Write { version }));
                    let mut mfx = Effects::new();
                    self.mutex.release_cs(&mut mfx);
                    self.forward_mutex_effects(mfx, fx);
                } else {
                    self.pending = Some(Pending::WriteInstalling {
                        op: cur,
                        version,
                        acks,
                    });
                }
            }
            RegMsg::ReadReq { op } => {
                let stored = self.store;
                self.route(fx, from, RegMsg::ReadResp { op, stored });
            }
            RegMsg::ReadResp { op, stored } => {
                let Some(Pending::Reading { op: cur, mut resps }) = self.pending.clone() else {
                    return; // stale response
                };
                if cur != op {
                    return;
                }
                resps.insert(from, stored);
                if self.read_quorum.iter().all(|m| resps.contains_key(m)) {
                    let best = resps.values().max().copied().expect("non-empty quorum");
                    if self.read_repair {
                        // Push the winner to stale members (their acks are
                        // ignored — the op is complete either way).
                        for (&m, &v) in &resps {
                            if v.version < best.version {
                                self.route(fx, m, RegMsg::Install { op, val: best });
                            }
                        }
                    }
                    self.pending = None;
                    self.completed.push((op, OpResult::Read(best)));
                } else {
                    self.pending = Some(Pending::Reading { op: cur, resps });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synchronous harness delivering all messages FIFO.
    struct Net {
        sites: Vec<ReplicaSite>,
        inflight: VecDeque<(SiteId, SiteId, RegMsg)>,
    }

    impl Net {
        fn new(n: u32) -> Self {
            let all: Vec<SiteId> = (0..n).map(SiteId).collect();
            let cfg = |_i: u32| ReplicaConfig {
                mutex_quorum: all.clone(),
                read_quorum: all.clone(),
                write_quorum: all.clone(),
                initial: 0,
                read_repair: false,
            };
            Net {
                sites: (0..n)
                    .map(|i| ReplicaSite::new(SiteId(i), cfg(i)))
                    .collect(),
                inflight: VecDeque::new(),
            }
        }

        fn collect(&mut self, from: SiteId, fx: &mut Effects<RegMsg>) {
            for (to, m) in fx.take_sends() {
                self.inflight.push_back((from, to, m));
            }
        }

        fn settle(&mut self) {
            while let Some((from, to, m)) = self.inflight.pop_front() {
                let mut fx = Effects::new();
                self.sites[to.index()].handle(from, m, &mut fx);
                self.collect(to, &mut fx);
            }
        }

        fn write(&mut self, s: u32, op: u64, value: u64) {
            let mut fx = Effects::new();
            self.sites[s as usize].submit_write(OpId(op), value, &mut fx);
            self.collect(SiteId(s), &mut fx);
        }

        fn read(&mut self, s: u32, op: u64) {
            let mut fx = Effects::new();
            self.sites[s as usize].submit_read(OpId(op), &mut fx);
            self.collect(SiteId(s), &mut fx);
        }
    }

    #[test]
    fn single_write_installs_version_1_everywhere() {
        let mut net = Net::new(3);
        net.write(0, 1, 42);
        net.settle();
        let done = net.sites[0].take_completed();
        assert_eq!(done, vec![(OpId(1), OpResult::Write { version: 1 })]);
        for s in &net.sites {
            assert_eq!(
                s.stored(),
                Versioned {
                    version: 1,
                    value: 42
                }
            );
        }
    }

    #[test]
    fn read_returns_latest_write() {
        let mut net = Net::new(3);
        net.write(0, 1, 7);
        net.settle();
        net.write(1, 2, 9);
        net.settle();
        net.read(2, 3);
        net.settle();
        let done = net.sites[2].take_completed();
        assert_eq!(
            done,
            vec![(
                OpId(3),
                OpResult::Read(Versioned {
                    version: 2,
                    value: 9
                })
            )]
        );
    }

    #[test]
    fn concurrent_writes_serialize_with_distinct_versions() {
        let mut net = Net::new(3);
        net.write(0, 1, 10);
        net.write(1, 2, 20);
        net.write(2, 3, 30);
        net.settle();
        let mut versions = Vec::new();
        for s in &mut net.sites {
            for (_, r) in s.take_completed() {
                match r {
                    OpResult::Write { version } => versions.push(version),
                    OpResult::Read(_) => unreachable!(),
                }
            }
        }
        versions.sort_unstable();
        assert_eq!(versions, vec![1, 2, 3], "versions are gapless and unique");
        // All replicas converge to the version-3 value.
        let final_store = net.sites[0].stored();
        assert_eq!(final_store.version, 3);
        assert!(net.sites.iter().all(|s| s.stored() == final_store));
    }

    #[test]
    fn initial_read_sees_version_0() {
        let mut net = Net::new(2);
        net.read(1, 1);
        net.settle();
        assert_eq!(
            net.sites[1].take_completed(),
            vec![(
                OpId(1),
                OpResult::Read(Versioned {
                    version: 0,
                    value: 0
                })
            )]
        );
    }

    #[test]
    #[should_panic(expected = "one operation at a time")]
    fn overlapping_ops_at_one_site_panic() {
        let mut net = Net::new(2);
        net.write(0, 1, 1);
        net.write(0, 2, 2);
    }

    #[test]
    fn partial_write_quorum_reads_still_intersect() {
        // R = {0,1}, W = {1,2}: R ∩ W = {1} — a read after a write must
        // still see it through the common member.
        let all: Vec<SiteId> = (0..3).map(SiteId).collect();
        let mk = |site: u32| {
            ReplicaSite::new(
                SiteId(site),
                ReplicaConfig {
                    mutex_quorum: all.clone(),
                    read_quorum: vec![SiteId(0), SiteId(1)],
                    write_quorum: vec![SiteId(1), SiteId(2)],
                    initial: 0,
                    read_repair: false,
                },
            )
        };
        let mut net = Net {
            sites: (0..3).map(mk).collect(),
            inflight: VecDeque::new(),
        };
        net.write(0, 1, 5);
        net.settle();
        net.read(2, 2);
        net.settle();
        assert_eq!(
            net.sites[2].take_completed(),
            vec![(
                OpId(2),
                OpResult::Read(Versioned {
                    version: 1,
                    value: 5
                })
            )]
        );
        // Site 0 is NOT in the write quorum: its local store is stale, yet
        // its reads are correct via the quorum.
        assert_eq!(net.sites[0].stored().version, 0);
    }

    #[test]
    fn read_repair_converges_stale_replicas() {
        // Same asymmetric quorums, but with read repair on: after a read
        // that touches the stale site 0, site 0 catches up.
        let all: Vec<SiteId> = (0..3).map(SiteId).collect();
        let mk = |site: u32| {
            ReplicaSite::new(
                SiteId(site),
                ReplicaConfig {
                    mutex_quorum: all.clone(),
                    read_quorum: vec![SiteId(0), SiteId(1)],
                    write_quorum: vec![SiteId(1), SiteId(2)],
                    initial: 0,
                    read_repair: true,
                },
            )
        };
        let mut net = Net {
            sites: (0..3).map(mk).collect(),
            inflight: VecDeque::new(),
        };
        net.write(1, 1, 77);
        net.settle();
        assert_eq!(net.sites[0].stored().version, 0, "stale before the read");
        net.read(2, 2);
        net.settle();
        assert_eq!(
            net.sites[0].stored(),
            Versioned {
                version: 1,
                value: 77
            },
            "read repair pushed the newest version to the stale replica"
        );
    }
}
