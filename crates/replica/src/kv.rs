//! A multi-key replicated store: one [`ReplicaSite`]-style register per
//! key, each with its own embedded write mutex, multiplexed over a single
//! message stream.
//!
//! Writes to *different* keys proceed concurrently (independent mutexes);
//! writes to the same key serialize. Reads never take the mutex. This is
//! the natural scale-out of the paper's conclusion ("replicated data
//! management"): the mutual exclusion cost is paid per contended key, not
//! per store.

use crate::register::{OpId, OpResult, RegMsg, ReplicaConfig, ReplicaSite};
use qmx_core::{Effects, MsgKind, MsgMeta, SiteId};
use std::collections::BTreeMap;

/// A key in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

/// Wire messages: per-key register traffic, tagged with the key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvMsg {
    /// The key whose register this message belongs to.
    pub key: Key,
    /// The register-level message.
    pub inner: RegMsg,
}

impl MsgMeta for KvMsg {
    fn kind(&self) -> MsgKind {
        self.inner.kind()
    }
}

/// One site of the multi-key store.
///
/// Unlike a single [`ReplicaSite`], a `KvSite` allows one in-flight
/// operation **per key** (operations on different keys are independent).
#[derive(Debug, Clone)]
pub struct KvSite {
    site: SiteId,
    cfg: ReplicaConfig,
    registers: BTreeMap<Key, ReplicaSite>,
    completed: Vec<(Key, OpId, OpResult)>,
}

impl KvSite {
    /// Creates a site whose per-key registers all use `cfg`'s quorums.
    pub fn new(site: SiteId, cfg: ReplicaConfig) -> Self {
        KvSite {
            site,
            cfg,
            registers: BTreeMap::new(),
            completed: Vec::new(),
        }
    }

    /// This site's id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    fn register(&mut self, key: Key) -> &mut ReplicaSite {
        let site = self.site;
        let cfg = self.cfg.clone();
        self.registers
            .entry(key)
            .or_insert_with(|| ReplicaSite::new(site, cfg))
    }

    /// Whether an operation is in flight for `key` at this site.
    pub fn busy(&self, key: Key) -> bool {
        self.registers.get(&key).is_some_and(ReplicaSite::busy)
    }

    /// The locally stored replica for `key` (version 0 default if never
    /// touched).
    pub fn stored(&self, key: Key) -> crate::register::Versioned {
        self.registers
            .get(&key)
            .map_or(crate::register::Versioned::initial(self.cfg.initial), |r| {
                r.stored()
            })
    }

    /// Operations completed since the last call, as `(key, op, result)`.
    pub fn take_completed(&mut self) -> Vec<(Key, OpId, OpResult)> {
        std::mem::take(&mut self.completed)
    }

    fn lift(key: Key, fx_inner: &mut Effects<RegMsg>, fx: &mut Effects<KvMsg>) {
        for (to, inner) in fx_inner.take_sends() {
            fx.send(to, KvMsg { key, inner });
        }
    }

    /// Starts a read of `key`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight for this key here.
    pub fn submit_read(&mut self, key: Key, op: OpId, fx: &mut Effects<KvMsg>) {
        let mut inner_fx = Effects::new();
        self.register(key).submit_read(op, &mut inner_fx);
        Self::lift(key, &mut inner_fx, fx);
        self.harvest(key);
    }

    /// Starts a write of `value` to `key`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight for this key here.
    pub fn submit_write(&mut self, key: Key, op: OpId, value: u64, fx: &mut Effects<KvMsg>) {
        let mut inner_fx = Effects::new();
        self.register(key).submit_write(op, value, &mut inner_fx);
        Self::lift(key, &mut inner_fx, fx);
        self.harvest(key);
    }

    /// Delivers a wire message.
    pub fn handle(&mut self, from: SiteId, msg: KvMsg, fx: &mut Effects<KvMsg>) {
        let key = msg.key;
        let mut inner_fx = Effects::new();
        self.register(key).handle(from, msg.inner, &mut inner_fx);
        Self::lift(key, &mut inner_fx, fx);
        self.harvest(key);
    }

    /// Forwards a failure notice to every key's register.
    pub fn on_site_failure(&mut self, failed: SiteId, fx: &mut Effects<KvMsg>) {
        let keys: Vec<Key> = self.registers.keys().copied().collect();
        for key in keys {
            let mut inner_fx = Effects::new();
            self.register(key).on_site_failure(failed, &mut inner_fx);
            Self::lift(key, &mut inner_fx, fx);
            self.harvest(key);
        }
    }

    fn harvest(&mut self, key: Key) {
        if let Some(r) = self.registers.get_mut(&key) {
            for (op, result) in r.take_completed() {
                self.completed.push((key, op, result));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::Versioned;
    use std::collections::VecDeque;

    struct Net {
        sites: Vec<KvSite>,
        inflight: VecDeque<(SiteId, SiteId, KvMsg)>,
    }

    impl Net {
        fn new(n: u32) -> Self {
            let all: Vec<SiteId> = (0..n).map(SiteId).collect();
            Net {
                sites: (0..n)
                    .map(|i| {
                        KvSite::new(
                            SiteId(i),
                            ReplicaConfig {
                                mutex_quorum: all.clone(),
                                read_quorum: all.clone(),
                                write_quorum: all.clone(),
                                initial: 0,
                                read_repair: false,
                            },
                        )
                    })
                    .collect(),
                inflight: VecDeque::new(),
            }
        }

        fn collect(&mut self, from: SiteId, fx: &mut Effects<KvMsg>) {
            for (to, m) in fx.take_sends() {
                self.inflight.push_back((from, to, m));
            }
        }

        fn settle(&mut self) {
            while let Some((from, to, m)) = self.inflight.pop_front() {
                let mut fx = Effects::new();
                self.sites[to.index()].handle(from, m, &mut fx);
                self.collect(to, &mut fx);
            }
        }

        fn write(&mut self, s: u32, key: u64, op: u64, value: u64) {
            let mut fx = Effects::new();
            self.sites[s as usize].submit_write(Key(key), OpId(op), value, &mut fx);
            self.collect(SiteId(s), &mut fx);
        }

        fn read(&mut self, s: u32, key: u64, op: u64) {
            let mut fx = Effects::new();
            self.sites[s as usize].submit_read(Key(key), OpId(op), &mut fx);
            self.collect(SiteId(s), &mut fx);
        }
    }

    #[test]
    fn independent_keys_do_not_serialize() {
        let mut net = Net::new(3);
        // Concurrent writes to DIFFERENT keys from the same site: allowed.
        net.write(0, 1, 1, 11);
        net.write(0, 2, 2, 22);
        net.settle();
        let mut done = net.sites[0].take_completed();
        done.sort_by_key(|&(k, ..)| k);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0, Key(1));
        assert_eq!(done[1].0, Key(2));
        assert_eq!(
            net.sites[1].stored(Key(1)),
            Versioned {
                version: 1,
                value: 11
            }
        );
        assert_eq!(
            net.sites[1].stored(Key(2)),
            Versioned {
                version: 1,
                value: 22
            }
        );
    }

    #[test]
    fn same_key_writes_serialize_with_gapless_versions() {
        let mut net = Net::new(3);
        net.write(0, 7, 1, 100);
        net.write(1, 7, 2, 200);
        net.write(2, 7, 3, 300);
        net.settle();
        let mut versions: Vec<u64> = Vec::new();
        for s in &mut net.sites {
            for (k, _, r) in s.take_completed() {
                assert_eq!(k, Key(7));
                if let OpResult::Write { version } = r {
                    versions.push(version);
                }
            }
        }
        versions.sort_unstable();
        assert_eq!(versions, vec![1, 2, 3]);
    }

    #[test]
    fn reads_see_per_key_state() {
        let mut net = Net::new(2);
        net.write(0, 5, 1, 55);
        net.settle();
        net.read(1, 5, 2);
        net.read(1, 6, 3); // untouched key
        net.settle();
        let mut done = net.sites[1].take_completed();
        done.sort_by_key(|&(_, op, _)| op);
        assert_eq!(
            done[0],
            (
                Key(5),
                OpId(2),
                OpResult::Read(Versioned {
                    version: 1,
                    value: 55
                })
            )
        );
        assert_eq!(
            done[1],
            (
                Key(6),
                OpId(3),
                OpResult::Read(Versioned {
                    version: 0,
                    value: 0
                })
            )
        );
    }

    #[test]
    #[should_panic(expected = "one operation at a time")]
    fn same_key_same_site_overlap_panics() {
        let mut net = Net::new(2);
        net.write(0, 1, 1, 1);
        net.write(0, 1, 2, 2);
    }

    #[test]
    fn busy_is_per_key() {
        let mut net = Net::new(2);
        net.write(0, 1, 1, 1);
        assert!(net.sites[0].busy(Key(1)));
        assert!(!net.sites[0].busy(Key(2)));
        net.settle();
        assert!(!net.sites[0].busy(Key(1)));
    }
}
