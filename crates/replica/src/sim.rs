//! A small discrete-event driver for [`ReplicaSite`] clusters (reads and
//! writes are not critical sections, so the CS-shaped driver in `qmx-sim`
//! does not apply; the delay models and determinism discipline are shared).

use crate::register::{OpId, OpResult, RegMsg, ReplicaConfig, ReplicaSite};
use qmx_core::{Effects, SiteId};
use qmx_sim::DelayModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct ReplicaSimConfig {
    /// Message delay distribution.
    pub delay: DelayModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReplicaSimConfig {
    fn default() -> Self {
        ReplicaSimConfig {
            delay: DelayModel::Constant(1000),
            seed: 7,
        }
    }
}

/// Record of one completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation id.
    pub op: OpId,
    /// The submitting site.
    pub site: SiteId,
    /// Virtual submission time.
    pub submitted_at: u64,
    /// Virtual completion time.
    pub completed_at: u64,
    /// The outcome.
    pub result: OpResult,
}

#[derive(Debug)]
enum Ev {
    Deliver {
        from: SiteId,
        to: SiteId,
        msg: RegMsg,
    },
    Read {
        site: SiteId,
    },
    Write {
        site: SiteId,
        value: u64,
    },
    Cut {
        from: SiteId,
        to: SiteId,
    },
    Restore {
        from: SiteId,
        to: SiteId,
    },
}

struct Item {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Deterministic discrete-event driver for a replicated-register cluster.
pub struct ReplicaSim {
    sites: Vec<ReplicaSite>,
    cfg: ReplicaSimConfig,
    rng: StdRng,
    now: u64,
    seq: u64,
    next_op: u64,
    events: BinaryHeap<Reverse<Item>>,
    link_clock: BTreeMap<(SiteId, SiteId), u64>,
    submitted: BTreeMap<OpId, (SiteId, u64)>,
    records: Vec<OpRecord>,
    messages: u64,
    dropped_ops: u64,
    /// Directed links currently cut: a message from `.0` to `.1` is
    /// silently discarded at delivery time (asymmetric partitions are
    /// expressible by cutting only one direction).
    cuts: BTreeSet<(SiteId, SiteId)>,
    dropped_msgs: u64,
}

impl ReplicaSim {
    /// Builds a cluster where every site uses the same quorum configuration
    /// factory.
    pub fn new(n: u32, cfg_of: impl Fn(SiteId) -> ReplicaConfig, cfg: ReplicaSimConfig) -> Self {
        ReplicaSim {
            sites: (0..n)
                .map(|i| ReplicaSite::new(SiteId(i), cfg_of(SiteId(i))))
                .collect(),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            now: 0,
            seq: 0,
            next_op: 1,
            events: BinaryHeap::new(),
            link_clock: BTreeMap::new(),
            submitted: BTreeMap::new(),
            records: Vec::new(),
            messages: 0,
            dropped_ops: 0,
            cuts: BTreeSet::new(),
            dropped_msgs: 0,
        }
    }

    /// A cluster where every quorum (mutex, read, write) is all `n` sites.
    pub fn full_quorums(n: u32, cfg: ReplicaSimConfig) -> Self {
        let all: Vec<SiteId> = (0..n).map(SiteId).collect();
        Self::new(
            n,
            move |_| ReplicaConfig {
                mutex_quorum: all.clone(),
                read_quorum: all.clone(),
                write_quorum: all.clone(),
                initial: 0,
                read_repair: false,
            },
            cfg,
        )
    }

    fn push(&mut self, time: u64, ev: Ev) {
        self.seq += 1;
        self.events.push(Reverse(Item {
            time,
            seq: self.seq,
            ev,
        }));
    }

    /// Schedules a read at `site`.
    pub fn schedule_read(&mut self, site: SiteId, at: u64) {
        self.push(at, Ev::Read { site });
    }

    /// Schedules a write of `value` at `site`.
    pub fn schedule_write(&mut self, site: SiteId, value: u64, at: u64) {
        self.push(at, Ev::Write { site, value });
    }

    /// Schedules a *directed* link cut at `at`: from then on, messages
    /// from `from` to `to` are discarded at delivery time (messages
    /// already in flight that would arrive after the cut are lost too).
    /// The reverse direction is unaffected.
    pub fn schedule_cut(&mut self, from: SiteId, to: SiteId, at: u64) {
        self.push(at, Ev::Cut { from, to });
    }

    /// Schedules the repair of a directed cut at `at`.
    pub fn schedule_restore(&mut self, from: SiteId, to: SiteId, at: u64) {
        self.push(at, Ev::Restore { from, to });
    }

    /// Cuts both directions between `a` and `b` at `at`.
    pub fn schedule_partition(&mut self, a: SiteId, b: SiteId, at: u64) {
        self.schedule_cut(a, b, at);
        self.schedule_cut(b, a, at);
    }

    /// Heals both directions between `a` and `b` at `at`.
    pub fn schedule_heal(&mut self, a: SiteId, b: SiteId, at: u64) {
        self.schedule_restore(a, b, at);
        self.schedule_restore(b, a, at);
    }

    /// Completed-operation records (in completion order).
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Total wire messages.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Operations dropped because the submitting site was busy.
    pub fn dropped_ops(&self) -> u64 {
        self.dropped_ops
    }

    /// Messages discarded by directed link cuts.
    pub fn dropped_msgs(&self) -> u64 {
        self.dropped_msgs
    }

    /// Current replica at `site` (for convergence assertions).
    pub fn stored(&self, site: SiteId) -> crate::register::Versioned {
        self.sites[site.index()].stored()
    }

    fn apply(&mut self, actor: SiteId, fx: &mut Effects<RegMsg>) {
        for (to, msg) in fx.take_sends() {
            self.messages += 1;
            let sampled = self.cfg.delay.sample(&mut self.rng);
            let link = self.link_clock.entry((actor, to)).or_insert(0);
            let at = (self.now + sampled).max(*link);
            *link = at;
            self.push(
                at,
                Ev::Deliver {
                    from: actor,
                    to,
                    msg,
                },
            );
        }
        for (op, result) in self.sites[actor.index()].take_completed() {
            let (site, submitted_at) = self
                .submitted
                .remove(&op)
                .expect("completed op was submitted");
            self.records.push(OpRecord {
                op,
                site,
                submitted_at,
                completed_at: self.now,
                result,
            });
        }
    }

    /// Runs until quiescence or `horizon`. Returns events processed.
    pub fn run(&mut self, horizon: u64) -> usize {
        let mut processed = 0;
        while let Some(Reverse(item)) = self.events.pop() {
            if item.time > horizon {
                self.now = horizon;
                break;
            }
            self.now = item.time;
            processed += 1;
            match item.ev {
                Ev::Deliver { from, to, msg } => {
                    if self.cuts.contains(&(from, to)) {
                        self.dropped_msgs += 1;
                        continue;
                    }
                    let mut fx = Effects::new();
                    self.sites[to.index()].handle(from, msg, &mut fx);
                    self.apply(to, &mut fx);
                }
                Ev::Cut { from, to } => {
                    self.cuts.insert((from, to));
                }
                Ev::Restore { from, to } => {
                    self.cuts.remove(&(from, to));
                }
                Ev::Read { site } => {
                    if self.sites[site.index()].busy() {
                        self.dropped_ops += 1;
                        continue;
                    }
                    let op = OpId(self.next_op);
                    self.next_op += 1;
                    self.submitted.insert(op, (site, self.now));
                    let mut fx = Effects::new();
                    self.sites[site.index()].submit_read(op, &mut fx);
                    self.apply(site, &mut fx);
                }
                Ev::Write { site, value } => {
                    if self.sites[site.index()].busy() {
                        self.dropped_ops += 1;
                        continue;
                    }
                    let op = OpId(self.next_op);
                    self.next_op += 1;
                    self.submitted.insert(op, (site, self.now));
                    let mut fx = Effects::new();
                    self.sites[site.index()].submit_write(op, value, &mut fx);
                    self.apply(site, &mut fx);
                }
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 1000;

    #[test]
    fn writes_serialize_and_replicas_converge() {
        let mut sim = ReplicaSim::full_quorums(4, ReplicaSimConfig::default());
        for i in 0..4u32 {
            sim.schedule_write(SiteId(i), 100 + u64::from(i), (u64::from(i)) * 10);
        }
        sim.run(10_000 * T);
        let mut versions: Vec<u64> = sim
            .records()
            .iter()
            .filter_map(|r| match r.result {
                OpResult::Write { version } => Some(version),
                OpResult::Read(_) => None,
            })
            .collect();
        versions.sort_unstable();
        assert_eq!(versions, vec![1, 2, 3, 4]);
        let v = sim.stored(SiteId(0));
        assert_eq!(v.version, 4);
        for i in 1..4u32 {
            assert_eq!(sim.stored(SiteId(i)), v, "replica {i} diverged");
        }
    }

    #[test]
    fn reads_after_writes_see_them() {
        let mut sim = ReplicaSim::full_quorums(3, ReplicaSimConfig::default());
        sim.schedule_write(SiteId(0), 55, 0);
        sim.schedule_read(SiteId(2), 100 * T); // long after the write
        sim.run(1_000 * T);
        let read = sim
            .records()
            .iter()
            .find_map(|r| match r.result {
                OpResult::Read(v) => Some(v),
                OpResult::Write { .. } => None,
            })
            .expect("read completed");
        assert_eq!(read.version, 1);
        assert_eq!(read.value, 55);
    }

    #[test]
    fn monotone_reads_property_under_random_delays() {
        // Reads issued strictly after a write completes must return at
        // least that write's version.
        let cfg = ReplicaSimConfig {
            delay: DelayModel::Exponential { mean: 800 },
            seed: 1234,
        };
        let mut sim = ReplicaSim::full_quorums(5, cfg);
        for r in 0..10u64 {
            sim.schedule_write(SiteId((r % 5) as u32), r, r * 30 * T);
            sim.schedule_read(SiteId(((r + 2) % 5) as u32), r * 30 * T + 15 * T);
        }
        sim.run(10_000 * T);
        let records = sim.records().to_vec();
        for r in &records {
            if let OpResult::Read(v) = r.result {
                let completed_before: u64 = records
                    .iter()
                    .filter_map(|w| match w.result {
                        OpResult::Write { version } if w.completed_at <= r.submitted_at => {
                            Some(version)
                        }
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
                assert!(
                    v.version >= completed_before,
                    "read {:?} returned v{} but v{} completed before submission",
                    r.op,
                    v.version,
                    completed_before
                );
            }
        }
    }

    #[test]
    fn busy_sites_drop_operations() {
        let mut sim = ReplicaSim::full_quorums(2, ReplicaSimConfig::default());
        sim.schedule_write(SiteId(0), 1, 0);
        sim.schedule_write(SiteId(0), 2, 1); // still acquiring: dropped
        sim.run(1_000 * T);
        assert_eq!(sim.dropped_ops(), 1);
        assert_eq!(sim.records().len(), 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let cfg = ReplicaSimConfig {
                delay: DelayModel::Uniform { lo: 100, hi: 2000 },
                seed,
            };
            let mut sim = ReplicaSim::full_quorums(3, cfg);
            for r in 0..6u64 {
                sim.schedule_write(SiteId((r % 3) as u32), r, r * 5 * T);
            }
            sim.run(10_000 * T);
            (sim.messages(), sim.records().to_vec())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }
}
