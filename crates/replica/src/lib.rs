//! # qmx-replica
//!
//! Replicated data management built on the delay-optimal quorum mutex —
//! the application the paper's conclusion points at: *"the proposed idea
//! can be used in replicated data management, as long as the quorum being
//! used supports replica control."*
//!
//! The design is Gifford-style read/write quorum replication with writes
//! serialized by distributed mutual exclusion:
//!
//! * every site holds a full replica: a [`Versioned`] value;
//! * a **write** first acquires the CS through an embedded
//!   [`qmx_core::DelayOptimal`] instance (so writes are totally ordered), then reads
//!   the newest version from its write quorum, installs `version + 1` on
//!   every write-quorum member, waits for all acks, and only then releases
//!   the CS;
//! * a **read** needs no mutex: it queries its read quorum and returns the
//!   highest-versioned value.
//!
//! With `R + W > N` (read and write quorums intersect) and serialized
//! writes, every read returns the value of the latest *completed* write or
//! a write concurrent with the read — the classic regular-register
//! guarantee, checked by the tests and the property suite.
//!
//! The crate ships its own small driver, [`ReplicaSim`] — operations are
//! not critical sections, so the CS-shaped `qmx-sim` driver does not fit —
//! but reuses the workspace's delay models and deterministic-seed
//! discipline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kv;
pub mod register;
pub mod sim;

pub use kv::{Key, KvMsg, KvSite};
pub use register::{OpId, OpResult, RegMsg, ReplicaConfig, ReplicaSite, Versioned};
pub use sim::{OpRecord, ReplicaSim, ReplicaSimConfig};
