//! Replica-layer test debt: read-your-writes under partial R/W quorum
//! overlap, write serialization through the embedded lock space, and the
//! stale-read regression with one replica partitioned by a directed link
//! cut.
//!
//! The paper's replica control (Gifford-style R/W quorums with writes
//! serialized by the delay-optimal mutex) is only correct because every
//! read quorum intersects every write quorum; these tests pin the
//! behaviour at the intersection — including the case where the
//! intersection is exactly one site and everyone else in the read quorum
//! is stale.

use qmx_core::SiteId;
use qmx_replica::{OpResult, ReplicaConfig, ReplicaSim, ReplicaSimConfig};

const T: u64 = 1000;

/// 5 sites; writes land on {0,1,2}, reads consult {2,3,4}: the overlap
/// is exactly site 2. The mutex quorum is a majority so writes are
/// totally ordered.
fn overlap_cluster(read_repair: bool) -> ReplicaSim {
    let mutex: Vec<SiteId> = (0..5).map(SiteId).collect();
    ReplicaSim::new(
        5,
        move |_| ReplicaConfig {
            mutex_quorum: mutex.clone(),
            write_quorum: vec![SiteId(0), SiteId(1), SiteId(2)],
            read_quorum: vec![SiteId(2), SiteId(3), SiteId(4)],
            initial: 0,
            read_repair,
        },
        ReplicaSimConfig::default(),
    )
}

fn reads(sim: &ReplicaSim) -> Vec<(u64, u64)> {
    sim.records()
        .iter()
        .filter_map(|r| match r.result {
            OpResult::Read(v) => Some((v.version, v.value)),
            OpResult::Write { .. } => None,
        })
        .collect()
}

fn write_versions(sim: &ReplicaSim) -> Vec<u64> {
    let mut out: Vec<u64> = sim
        .records()
        .iter()
        .filter_map(|r| match r.result {
            OpResult::Write { version } => Some(version),
            OpResult::Read(_) => None,
        })
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn read_your_writes_through_single_site_overlap() {
    let mut sim = overlap_cluster(false);
    // Writer at site 0, reader at site 4 — disjoint except through the
    // quorum structure itself.
    sim.schedule_write(SiteId(0), 77, 0);
    sim.schedule_read(SiteId(4), 100 * T);
    sim.run(10_000 * T);

    assert_eq!(reads(&sim), vec![(1, 77)], "read must see the write");
    // Sites 3 and 4 were never written: the freshness came from the
    // overlap site 2 winning the version comparison.
    assert_eq!(sim.stored(SiteId(3)).version, 0);
    assert_eq!(sim.stored(SiteId(4)).version, 0);
    assert_eq!(sim.stored(SiteId(2)).version, 1);
}

#[test]
fn concurrent_writes_serialize_through_lock_space() {
    let mut sim = overlap_cluster(false);
    // All five sites write at staggered instants well inside each
    // other's mutex round trips: the embedded mutex must serialize them
    // into five distinct, gapless versions.
    for i in 0..5u32 {
        sim.schedule_write(SiteId(i), 500 + u64::from(i), u64::from(i) * 2 * T);
    }
    sim.run(50_000 * T);

    assert_eq!(write_versions(&sim), vec![1, 2, 3, 4, 5]);
    // Every write-quorum member converged on the same final version and
    // the winning value is the one installed by version 5.
    let final_v = sim.stored(SiteId(0));
    assert_eq!(final_v.version, 5);
    for s in [SiteId(1), SiteId(2)] {
        assert_eq!(sim.stored(s), final_v, "write-quorum member diverged");
    }
}

#[test]
fn stale_read_regression_with_partitioned_replica() {
    let mut sim = overlap_cluster(false);

    // First write completes cleanly, so every write-quorum member holds
    // version 1.
    sim.schedule_write(SiteId(0), 10, 0);

    // Then site 2 — the *only* overlap between read and write quorums —
    // is cut off from the writer (directed: writer→2 only; site 2 still
    // answers reads). A second write would now be unable to reach its
    // full write quorum, so it must NOT complete; a read must keep
    // returning version 1, never a torn half-installed version 2.
    sim.schedule_cut(SiteId(0), SiteId(2), 50 * T);
    sim.schedule_write(SiteId(0), 20, 60 * T);
    sim.schedule_read(SiteId(4), 500 * T);
    sim.run(2_000 * T);

    assert_eq!(
        write_versions(&sim),
        vec![1],
        "a write that cannot reach its quorum must not report completion"
    );
    assert!(sim.dropped_msgs() > 0, "the cut actually dropped traffic");
    assert_eq!(
        reads(&sim),
        vec![(1, 10)],
        "reads see the last completed write, not the torn one"
    );

    // Heal the link: the stalled write's retransmission-free world means
    // it stays incomplete, but new operations flow again and the system
    // is not wedged.
    sim.schedule_restore(SiteId(0), SiteId(2), 3_000 * T);
    sim.schedule_read(SiteId(3), 3_500 * T);
    sim.run(10_000 * T);
    let all_reads = reads(&sim);
    assert_eq!(all_reads.len(), 2, "post-heal read completes");
    assert_eq!(all_reads[1].1, 10, "post-heal read still serves v1's value");
}

#[test]
fn asymmetric_cut_spares_reverse_direction() {
    let mut sim = overlap_cluster(false);
    // Cut only 4→0. A write from 0 (which consults 2's direction 0→2 and
    // never needs 4→0) completes; a read at 4 (whose queries travel
    // 4→{2,3,4} and answers travel back) also completes, because the cut
    // direction is not on either path.
    sim.schedule_cut(SiteId(4), SiteId(0), 0);
    sim.schedule_write(SiteId(1), 33, 10 * T);
    sim.schedule_read(SiteId(4), 300 * T);
    sim.run(5_000 * T);

    assert_eq!(write_versions(&sim), vec![1]);
    assert_eq!(reads(&sim), vec![(1, 33)]);
}

#[test]
fn read_repair_heals_stale_members_after_partition() {
    let mut sim = overlap_cluster(true);
    sim.schedule_write(SiteId(0), 91, 0);
    // Sites 3 and 4 sit outside the write quorum, so they are stale by
    // construction. A read through {2,3,4} with read-repair enabled must
    // push version 1 to both.
    sim.schedule_read(SiteId(4), 200 * T);
    sim.run(10_000 * T);

    assert_eq!(reads(&sim), vec![(1, 91)]);
    for s in [SiteId(2), SiteId(3), SiteId(4)] {
        assert_eq!(sim.stored(s).version, 1, "read repair missed {s:?}");
        assert_eq!(sim.stored(s).value, 91);
    }
}
