//! Crate smoke test: one write/read round through the Gifford-style
//! replica layer. The write acquires the embedded `DelayOptimal` mutex,
//! installs the new version on its write quorum, and releases; the read
//! then assembles a read quorum and must see that exact version. This is
//! the end-to-end path the paper's conclusion points at (replica control
//! on top of the delay-optimal quorum mutex), pinned at the smallest
//! interesting scope.

use qmx_core::SiteId;
use qmx_replica::{OpResult, ReplicaSim, ReplicaSimConfig};

#[test]
fn one_serialized_write_then_quorum_read_round_trips() {
    let mut sim = ReplicaSim::full_quorums(3, ReplicaSimConfig::default());
    sim.schedule_write(SiteId(0), 42, 0);
    sim.schedule_read(SiteId(1), 50_000); // well after the write settles
    sim.run(1_000_000);

    assert_eq!(sim.dropped_ops(), 0, "no site was busy, nothing drops");
    let records = sim.records();
    assert_eq!(records.len(), 2, "both operations complete");

    let write = records
        .iter()
        .find_map(|r| match r.result {
            OpResult::Write { version } => Some((r, version)),
            OpResult::Read(_) => None,
        })
        .expect("the write completed");
    assert_eq!(write.1, 1, "first serialized write installs version 1");

    let read = records
        .iter()
        .find_map(|r| match r.result {
            OpResult::Read(v) => Some((r, v)),
            OpResult::Write { .. } => None,
        })
        .expect("the read completed");
    assert_eq!(read.1.version, 1, "read quorum intersects the write quorum");
    assert_eq!(read.1.value, 42);
    assert!(
        write.0.completed_at <= read.0.submitted_at,
        "the read was scheduled after the write settled"
    );

    // Replica control held: every site converged on the written value.
    for i in 0..3u32 {
        let v = sim.stored(SiteId(i));
        assert_eq!((v.version, v.value), (1, 42), "replica {i} diverged");
    }
}
