//! Maekawa-style grid quorums: `quorum(s) = row(s) ∪ column(s)`.
//!
//! Sites `0..N` are arranged row-major in a `r × c` grid with `c = ⌈√N⌉`
//! and `r = ⌈N/c⌉`; the final row may be partial. A site's quorum is every
//! site in its row plus every site in its column, giving `≈ 2√N − 1`
//! members.
//!
//! Intersection holds even for the truncated grid: for sites `a = (i₁,j₁)`
//! and `b = (i₂,j₂)` with `i₁ ≤ i₂`, the cell `(i₁,j₂)` exists because
//! `i₁·c + j₂ ≤ i₂·c + j₂ < N`, and it lies in `a`'s row and `b`'s column.

use crate::coterie::QuorumSystem;
use qmx_core::SiteId;

/// Builds the grid quorum system over `n` sites.
///
/// ```
/// use qmx_quorum::grid::grid_system;
/// let sys = grid_system(16); // 4x4 grid
/// assert_eq!(sys.max_quorum_size(), 7); // row + column - self
/// assert!(sys.verify_intersection().is_ok());
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn grid_system(n: usize) -> QuorumSystem {
    assert!(n > 0, "need at least one site");
    let c = (n as f64).sqrt().ceil() as usize;
    let quorums = (0..n)
        .map(|s| {
            let (row, col) = (s / c, s % c);
            let mut q: Vec<SiteId> = Vec::new();
            // Row members.
            for j in 0..c {
                let id = row * c + j;
                if id < n {
                    q.push(SiteId(id as u32));
                }
            }
            // Column members.
            for i in 0..n.div_ceil(c) {
                let id = i * c + col;
                if id < n {
                    q.push(SiteId(id as u32));
                }
            }
            q
        })
        .collect();
    QuorumSystem::new(n, quorums)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_square_quorum_size_is_2_sqrt_minus_1() {
        for n in [4usize, 9, 16, 25, 49] {
            let sys = grid_system(n);
            let k = 2 * (n as f64).sqrt() as usize - 1;
            assert_eq!(sys.max_quorum_size(), k, "n={n}");
            assert_eq!(sys.mean_quorum_size(), k as f64, "n={n}");
        }
    }

    #[test]
    fn every_site_is_in_its_own_quorum() {
        for n in [1usize, 5, 12, 25, 40] {
            let sys = grid_system(n);
            assert_eq!(sys.self_inclusion_rate(), 1.0, "n={n}");
        }
    }

    #[test]
    fn intersection_holds_for_all_n_up_to_60() {
        for n in 1..=60 {
            let sys = grid_system(n);
            assert!(sys.verify_intersection().is_ok(), "n={n}");
        }
    }

    #[test]
    fn single_site_grid() {
        let sys = grid_system(1);
        assert_eq!(sys.quorum_of(SiteId(0)), &[SiteId(0)]);
    }

    #[test]
    fn truncated_grid_example() {
        // n=7, c=3: grid rows [0,1,2],[3,4,5],[6]. Site 6 = (2,0).
        let sys = grid_system(7);
        assert_eq!(sys.quorum_of(SiteId(6)), &[SiteId(0), SiteId(3), SiteId(6)]);
    }
}
