//! Maekawa-style grid quorums: `quorum(s) = row(s) ∪ column(s)`.
//!
//! Sites `0..N` are arranged row-major in a `r × c` grid with `c = ⌈√N⌉`
//! and `r = ⌈N/c⌉`; the final row may be partial. A site's quorum is every
//! site in its row plus every site in its column, giving `≈ 2√N − 1`
//! members.
//!
//! Intersection holds even for the truncated grid: for sites `a = (i₁,j₁)`
//! and `b = (i₂,j₂)` with `i₁ ≤ i₂`, the cell `(i₁,j₂)` exists because
//! `i₁·c + j₂ ≤ i₂·c + j₂ < N`, and it lies in `a`'s row and `b`'s column.

use crate::coterie::QuorumSystem;
use qmx_core::{QuorumSource, SiteId};
use std::collections::BTreeSet;

/// Builds the grid quorum system over `n` sites.
///
/// ```
/// use qmx_quorum::grid::grid_system;
/// let sys = grid_system(16); // 4x4 grid
/// assert_eq!(sys.max_quorum_size(), 7); // row + column - self
/// assert!(sys.verify_intersection().is_ok());
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn grid_system(n: usize) -> QuorumSystem {
    assert!(n > 0, "need at least one site");
    let c = (n as f64).sqrt().ceil() as usize;
    let quorums = (0..n)
        .map(|s| {
            let (row, col) = (s / c, s % c);
            let mut q: Vec<SiteId> = Vec::new();
            // Row members.
            for j in 0..c {
                let id = row * c + j;
                if id < n {
                    q.push(SiteId(id as u32));
                }
            }
            // Column members.
            for i in 0..n.div_ceil(c) {
                let id = i * c + col;
                if id < n {
                    q.push(SiteId(id as u32));
                }
            }
            q
        })
        .collect();
    QuorumSystem::new(n, quorums)
}

/// Lazy grid quorums: yields one site's `O(√N)` quorum on demand without
/// materializing the `N × 2√N` coterie, so the large-N engine can run
/// `N = 10⁵` sites in `O(N·√N)` total quorum memory only for the sites
/// that actually request.
///
/// With no failed sites the result is element-for-element identical to
/// [`grid_system`]'s `quorum_of` (sorted, duplicate-free row ∪ column).
/// With failures it implements the §6 reconstruction rule: any live row
/// plus any live column is again a grid quorum. Reconstruction restricts
/// the row choice to *complete* rows (every cell of the truncated grid
/// present): the pairwise-intersection proof needs the crossing cell
/// `(min row, other's column)` to exist, which a complete row guarantees
/// against every column; a site's *own* (possibly partial) row is always
/// safe because a partial row is necessarily the last one, so any other
/// quorum's row lies above it and crosses this site's column instead.
#[derive(Debug, Clone)]
pub struct GridQuorumSource {
    n: usize,
    c: usize,
}

impl GridQuorumSource {
    /// Creates a lazy source over `n` sites arranged in a `⌈n/c⌉ × c` grid,
    /// `c = ⌈√n⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one site");
        let c = (n as f64).sqrt().ceil() as usize;
        GridQuorumSource { n, c }
    }

    /// Cells of row `i` that exist in the truncated grid.
    fn row_cells(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.c)
            .map(move |j| i * self.c + j)
            .filter(|&s| s < self.n)
    }

    /// Cells of column `j` that exist in the truncated grid.
    fn col_cells(&self, j: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n.div_ceil(self.c))
            .map(move |i| i * self.c + j)
            .filter(|&s| s < self.n)
    }

    fn row_live(&self, i: usize, down: &BTreeSet<SiteId>) -> bool {
        self.row_cells(i).all(|s| !down.contains(&SiteId(s as u32)))
    }

    fn col_live(&self, j: usize, down: &BTreeSet<SiteId>) -> bool {
        self.col_cells(j).all(|s| !down.contains(&SiteId(s as u32)))
    }

    /// Sorted, duplicate-free `row(i) ∪ col(j)`.
    fn quorum(&self, i: usize, j: usize) -> Vec<SiteId> {
        let mut q: Vec<SiteId> = self
            .row_cells(i)
            .chain(self.col_cells(j))
            .map(|s| SiteId(s as u32))
            .collect();
        q.sort_unstable();
        q.dedup();
        q
    }
}

impl QuorumSource for GridQuorumSource {
    fn quorum_avoiding(&mut self, site: SiteId, down: &BTreeSet<SiteId>) -> Option<Vec<SiteId>> {
        let (row, col) = (site.index() / self.c, site.index() % self.c);
        // Fast path: the site's own row and column (exactly what
        // `grid_system` assigns) — always intersection-safe, even when the
        // own row is the partial last one.
        if self.row_live(row, down) && self.col_live(col, down) {
            return Some(self.quorum(row, col));
        }
        // §6 reconstruction: first live *complete* row (any row when the
        // grid has a single row) plus first live column.
        let rows = self.n.div_ceil(self.c);
        let live_row = (0..rows)
            .find(|&i| (rows == 1 || (i + 1) * self.c <= self.n) && self.row_live(i, down))?;
        let live_col = (0..self.c.min(self.n)).find(|&j| self.col_live(j, down))?;
        Some(self.quorum(live_row, live_col))
    }

    fn box_clone(&self) -> Box<dyn QuorumSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_square_quorum_size_is_2_sqrt_minus_1() {
        for n in [4usize, 9, 16, 25, 49] {
            let sys = grid_system(n);
            let k = 2 * (n as f64).sqrt() as usize - 1;
            assert_eq!(sys.max_quorum_size(), k, "n={n}");
            assert_eq!(sys.mean_quorum_size(), k as f64, "n={n}");
        }
    }

    #[test]
    fn every_site_is_in_its_own_quorum() {
        for n in [1usize, 5, 12, 25, 40] {
            let sys = grid_system(n);
            assert_eq!(sys.self_inclusion_rate(), 1.0, "n={n}");
        }
    }

    #[test]
    fn intersection_holds_for_all_n_up_to_60() {
        for n in 1..=60 {
            let sys = grid_system(n);
            assert!(sys.verify_intersection().is_ok(), "n={n}");
        }
    }

    #[test]
    fn single_site_grid() {
        let sys = grid_system(1);
        assert_eq!(sys.quorum_of(SiteId(0)), &[SiteId(0)]);
    }

    #[test]
    fn truncated_grid_example() {
        // n=7, c=3: grid rows [0,1,2],[3,4,5],[6]. Site 6 = (2,0).
        let sys = grid_system(7);
        assert_eq!(sys.quorum_of(SiteId(6)), &[SiteId(0), SiteId(3), SiteId(6)]);
    }

    #[test]
    fn lazy_source_matches_eager_system() {
        for n in 1..=60usize {
            let sys = grid_system(n);
            let mut lazy = GridQuorumSource::new(n);
            for s in 0..n {
                let site = SiteId(s as u32);
                let q = lazy
                    .quorum_avoiding(site, &BTreeSet::new())
                    .expect("no failures: quorum must exist");
                assert_eq!(q.as_slice(), sys.quorum_of(site), "n={n} site={s}");
            }
        }
    }

    #[test]
    fn lazy_source_reconstructs_around_failures() {
        // n=12, c=4: rows [0..4),[4..8),[8..12). Kill site 5: every quorum
        // using row 1 or column 1 must re-route.
        let mut lazy = GridQuorumSource::new(12);
        let down: BTreeSet<SiteId> = [SiteId(5)].into_iter().collect();
        for s in 0..12u32 {
            if s == 5 {
                continue;
            }
            let q = lazy
                .quorum_avoiding(SiteId(s), &down)
                .expect("a live row and column exist");
            assert!(!q.contains(&SiteId(5)), "site={s} picked the dead site");
        }
        // Reconstructed quorums pairwise intersect (and intersect intact
        // own-row quorums).
        let mut quorums = Vec::new();
        for s in 0..12u32 {
            if s != 5 {
                quorums.push(lazy.quorum_avoiding(SiteId(s), &down).unwrap());
            }
        }
        for a in &quorums {
            for b in &quorums {
                assert!(
                    crate::coterie::intersects(a, b),
                    "{a:?} and {b:?} are disjoint"
                );
            }
        }
    }

    #[test]
    fn lazy_source_reports_inaccessible_when_no_row_survives() {
        // n=4, c=2: rows {0,1},{2,3}. Kill 0 and 3: no live row remains.
        let mut lazy = GridQuorumSource::new(4);
        let down: BTreeSet<SiteId> = [SiteId(0), SiteId(3)].into_iter().collect();
        assert_eq!(lazy.quorum_avoiding(SiteId(1), &down), None);
    }
}
