//! Rangarajan–Setia–Tripathi quorums (reference \[11\] of the paper) — the
//! dual of grid-set.
//!
//! The `N` sites are partitioned into `m = N/G` subgroups of `G` sites.
//! The **upper** level arranges the subgroups in a Maekawa grid (row ∪
//! column of subgroups, `≈ 2√m − 1` of them); the **lower** level takes a
//! **majority** `(G+1)/2` inside each selected subgroup. Quorum size is
//! `≈ (G+1)/2 · (2√(N/G) − 1)`, the paper's `(G+1)/2 · √(N/G)` up to the
//! grid constant.
//!
//! Intersection: the subgroup grids intersect in a subgroup; majorities
//! inside that subgroup intersect. Like grid-set, a minority of each
//! subgroup may fail with **no reconfiguration**; unlike grid-set, message
//! complexity stays sub-linear in `N` for small `G`.

use crate::coterie::QuorumSystem;
use crate::grid::grid_system;
use crate::gridset::TwoLevelError;
use crate::majority::majority_size;
use qmx_core::SiteId;

/// Builds the RST quorum system: subgroups of size `g` in a grid, majority
/// inside each selected subgroup. Subgroup `k` owns sites `[k·g, (k+1)·g)`.
///
/// # Errors
///
/// [`TwoLevelError::NotDivisible`] if `g` does not divide `n` (or is zero).
pub fn rst_system(n: usize, g: usize) -> Result<QuorumSystem, TwoLevelError> {
    if g == 0 || n == 0 || !n.is_multiple_of(g) {
        return Err(TwoLevelError::NotDivisible { n, g });
    }
    let m = n / g; // number of subgroups
    let maj = majority_size(g);
    let group_grid = grid_system(m); // grid over subgroup indices
    let quorums = (0..n)
        .map(|s| {
            let my_group = s / g;
            let within = s % g;
            let mut q: Vec<SiteId> = Vec::new();
            for grp in group_grid.quorum_of(SiteId(my_group as u32)) {
                let base = grp.index() * g;
                // Majority window inside the subgroup, rotated by the
                // requester's offset to spread load.
                for k in 0..maj {
                    q.push(SiteId((base + (within + k) % g) as u32));
                }
            }
            q
        })
        .collect();
    Ok(QuorumSystem::new(n, quorums))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_group_sizes() {
        assert!(rst_system(10, 4).is_err());
        assert!(rst_system(0, 1).is_err());
    }

    #[test]
    fn intersection_holds() {
        for (n, g) in [(12usize, 3usize), (16, 4), (18, 2), (27, 3), (45, 5)] {
            let sys = rst_system(n, g).unwrap();
            assert!(sys.verify_intersection().is_ok(), "n={n} g={g}");
        }
    }

    #[test]
    fn quorum_size_matches_formula() {
        // n=36, g=4: m=9 subgroups in 3x3 grid -> 5 subgroups; majority
        // of 4 = 3 -> 15 sites.
        let sys = rst_system(36, 4).unwrap();
        assert_eq!(sys.max_quorum_size(), 5 * 3);
    }

    #[test]
    fn self_inclusion() {
        for (n, g) in [(12usize, 3usize), (36, 4)] {
            let sys = rst_system(n, g).unwrap();
            assert_eq!(sys.self_inclusion_rate(), 1.0, "n={n} g={g}");
        }
    }

    #[test]
    fn degenerate_group_of_one_is_pure_grid() {
        let sys = rst_system(9, 1).unwrap();
        let grid = grid_system(9);
        assert_eq!(sys.quorum_of(SiteId(5)), grid.quorum_of(SiteId(5)));
    }
}
