//! Hierarchical Quorum Consensus (Kumar; reference \[4\] of the paper).
//!
//! Sites `0..N` (`N = 3^d`) are the leaves of a complete ternary tree.
//! A quorum is formed recursively: at every internal level, pick a
//! **majority (2 of 3)** of the subtrees and recurse into each. The quorum
//! size is therefore `2^d = N^(log₃ 2) ≈ N^0.63`, matching the paper's
//! "quorum size becomes N^0.63" (§6, HQC).
//!
//! Intersection: two quorums pick 2-of-3 subtrees at the root, so they share
//! at least one subtree; induction inside that subtree yields a common leaf.

use crate::coterie::QuorumSystem;
use qmx_core::SiteId;

/// Error constructing an HQC system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HqcError {
    /// `N` is not a power of three.
    NotPowerOfThree(usize),
}

impl std::fmt::Display for HqcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HqcError::NotPowerOfThree(n) => write!(f, "HQC needs N = 3^d sites, got {n}"),
        }
    }
}

impl std::error::Error for HqcError {}

fn log3_exact(mut n: usize) -> Option<u32> {
    if n == 0 {
        return None;
    }
    let mut d = 0;
    while n.is_multiple_of(3) {
        n /= 3;
        d += 1;
    }
    (n == 1).then_some(d)
}

/// Collects a quorum over leaves `[base, base + 3^depth)`, steered by
/// `steer` (two base-3 digits per level select which 2-of-3 subtrees).
fn collect(base: usize, depth: u32, steer: u64, out: &mut Vec<SiteId>) {
    if depth == 0 {
        out.push(SiteId(base as u32));
        return;
    }
    let third = 3usize.pow(depth - 1);
    // Choose which subtree to skip at this level from the steer.
    let skip = (steer / 3u64.pow(depth - 1)) % 3;
    for c in 0..3usize {
        if c as u64 == skip {
            continue;
        }
        collect(base + c * third, depth - 1, steer, out);
    }
}

/// Builds the HQC quorum system over `n = 3^d` sites. Site `i` steers the
/// majority choices by its own id, so different sites pick different
/// quorums and load spreads.
///
/// ```
/// use qmx_quorum::hqc::hqc_system;
/// let sys = hqc_system(27).expect("27 = 3^3");
/// assert_eq!(sys.max_quorum_size(), 8); // 2^3 = N^0.63
/// ```
///
/// # Errors
///
/// [`HqcError::NotPowerOfThree`] if `n` is not `3^d`.
pub fn hqc_system(n: usize) -> Result<QuorumSystem, HqcError> {
    let d = log3_exact(n).ok_or(HqcError::NotPowerOfThree(n))?;
    let quorums = (0..n)
        .map(|s| {
            let mut q = Vec::new();
            // Steer so that site s's own subtree chain is never skipped:
            // skip digit = (own digit + 1) mod 3 at each level.
            let mut steer = 0u64;
            for lvl in 0..d {
                let digit = (s / 3usize.pow(lvl)) % 3;
                steer += (((digit + 1) % 3) as u64) * 3u64.pow(lvl);
            }
            collect(0, d, steer, &mut q);
            q
        })
        .collect();
    Ok(QuorumSystem::new(n, quorums))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_powers_of_three() {
        assert_eq!(hqc_system(10).unwrap_err(), HqcError::NotPowerOfThree(10));
        assert_eq!(hqc_system(0).unwrap_err(), HqcError::NotPowerOfThree(0));
        assert_eq!(
            HqcError::NotPowerOfThree(10).to_string(),
            "HQC needs N = 3^d sites, got 10"
        );
    }

    #[test]
    fn quorum_size_is_2_pow_d() {
        for (n, expect) in [(1usize, 1usize), (3, 2), (9, 4), (27, 8), (81, 16)] {
            let sys = hqc_system(n).unwrap();
            assert_eq!(sys.max_quorum_size(), expect, "n={n}");
            assert_eq!(sys.mean_quorum_size(), expect as f64, "n={n}");
        }
    }

    #[test]
    fn size_tracks_n_pow_0_63() {
        let sys = hqc_system(81).unwrap();
        let expect = (81f64).powf((2f64).ln() / (3f64).ln());
        assert!((sys.mean_quorum_size() - expect).abs() < 1e-9);
    }

    #[test]
    fn coterie_properties_hold() {
        for n in [3usize, 9, 27] {
            let sys = hqc_system(n).unwrap();
            assert!(sys.verify_intersection().is_ok(), "n={n}");
            assert!(sys.verify_minimality().is_ok(), "n={n}");
        }
    }

    #[test]
    fn sites_are_in_their_own_quorum() {
        let sys = hqc_system(27).unwrap();
        assert_eq!(sys.self_inclusion_rate(), 1.0);
    }

    #[test]
    fn trivial_single_site() {
        let sys = hqc_system(1).unwrap();
        assert_eq!(sys.quorum_of(SiteId(0)), &[SiteId(0)]);
    }
}
