//! Availability analysis: the probability that a live quorum exists when
//! each site is independently up with probability `p`.
//!
//! This quantifies the resilience axis of the paper's §6 comparison between
//! quorum constructions: majority voting is highly available but expensive,
//! grid/FPP quorums are cheap but fragile, the two-level and tree schemes
//! sit between. Exact computation enumerates all `2^N` up/down patterns
//! (fine for `N ≤ ~22`); Monte Carlo sampling covers larger systems.

use crate::coterie::QuorumSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether some quorum of `sys` is fully contained in the `up` set.
fn some_quorum_live(sys: &QuorumSystem, up: &[bool]) -> bool {
    sys.quorums()
        .iter()
        .any(|q| q.iter().all(|s| up[s.index()]))
}

/// Closed-form availability of the *full* majority coterie (every
/// `⌊n/2⌋+1`-subset is a quorum): `P(Binomial(n, p) ≥ ⌊n/2⌋+1)`.
///
/// Note this is an upper bound for [`crate::majority::majority_system`],
/// whose rotating-window coterie contains only `n` of the majorities.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `n == 0`.
pub fn true_majority_availability(n: usize, p: f64) -> f64 {
    assert!(n > 0, "need at least one site");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let need = n / 2 + 1;
    let mut total = 0.0;
    for k in need..=n {
        // C(n, k) computed incrementally in f64 (fine for the n used here).
        let mut c = 1.0;
        for i in 0..k {
            c = c * (n - i) as f64 / (i + 1) as f64;
        }
        total += c * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
    }
    total
}

/// Exact availability by enumerating all up/down patterns.
///
/// ```
/// use qmx_quorum::availability::exact_availability;
/// use qmx_quorum::majority::majority_system;
/// let sys = majority_system(3);
/// // P(at least 2 of 3 up) at p = 0.9: 3(0.81)(0.1) + 0.729 = 0.972.
/// assert!((exact_availability(&sys, 0.9) - 0.972).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `sys.n() > 24` (enumeration would be prohibitively slow) or if
/// `p` is outside `[0, 1]`.
pub fn exact_availability(sys: &QuorumSystem, p: f64) -> f64 {
    let n = sys.n();
    assert!(n <= 24, "exact enumeration limited to N <= 24, got {n}");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut total = 0.0;
    let mut up = vec![false; n];
    for mask in 0u64..(1u64 << n) {
        let mut prob = 1.0;
        for (i, flag) in up.iter_mut().enumerate() {
            *flag = (mask >> i) & 1 == 1;
            prob *= if *flag { p } else { 1.0 - p };
        }
        if prob > 0.0 && some_quorum_live(sys, &up) {
            total += prob;
        }
    }
    total
}

/// Monte Carlo availability estimate with `samples` trials and a fixed RNG
/// seed (deterministic and reproducible).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `samples == 0`.
pub fn monte_carlo_availability(sys: &QuorumSystem, p: f64, samples: u32, seed: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = sys.n();
    let mut hits = 0u32;
    let mut up = vec![false; n];
    for _ in 0..samples {
        for flag in up.iter_mut() {
            *flag = rng.gen_bool(p);
        }
        if some_quorum_live(sys, &up) {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::grid_system;
    use crate::majority::majority_system;
    use crate::tree::tree_system;

    #[test]
    fn perfect_sites_give_full_availability() {
        let sys = grid_system(9);
        assert_eq!(exact_availability(&sys, 1.0), 1.0);
        assert_eq!(exact_availability(&sys, 0.0), 0.0);
    }

    #[test]
    fn single_site_availability_is_p() {
        let sys = majority_system(1);
        assert!((exact_availability(&sys, 0.7) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn majority_of_three_matches_closed_form() {
        // P(at least 2 of 3 up) = 3p^2(1-p) + p^3.
        let sys = majority_system(3);
        for p in [0.3, 0.5, 0.9] {
            let expect = 3.0 * p * p * (1.0 - p) + p * p * p;
            assert!(
                (exact_availability(&sys, p) - expect).abs() < 1e-12,
                "p={p}"
            );
        }
    }

    #[test]
    fn majority_beats_grid_at_high_p() {
        // The paper's trade-off: (true) majority voting is the most
        // resilient construction.
        let grid = grid_system(9);
        for p in [0.6, 0.8, 0.9] {
            assert!(
                true_majority_availability(9, p) >= exact_availability(&grid, p),
                "p={p}"
            );
        }
    }

    #[test]
    fn true_majority_closed_form_matches_enumeration_bound() {
        // For n=3 the rotating-window system IS the full majority coterie.
        let sys = majority_system(3);
        for p in [0.2, 0.5, 0.8] {
            assert!(
                (true_majority_availability(3, p) - exact_availability(&sys, p)).abs() < 1e-12,
                "p={p}"
            );
        }
    }

    #[test]
    fn tree_quorum_availability_uses_substitution_paths() {
        // The full coterie of the tree (all steered variants under all
        // failure sets) is richer than the failure-free system captures;
        // even so, the failure-free system already tolerates leaf loss via
        // other sites' paths.
        let sys = tree_system(7).unwrap();
        let a = exact_availability(&sys, 0.9);
        assert!(a > 0.85 && a <= 1.0);
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let sys = grid_system(9);
        let p = 0.8;
        let exact = exact_availability(&sys, p);
        let mc = monte_carlo_availability(&sys, p, 20_000, 42);
        assert!((exact - mc).abs() < 0.02, "exact={exact} mc={mc}");
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let sys = grid_system(16);
        let a = monte_carlo_availability(&sys, 0.7, 5_000, 7);
        let b = monte_carlo_availability(&sys, 0.7, 5_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exact enumeration limited")]
    fn exact_rejects_large_n() {
        let sys = majority_system(30);
        let _ = exact_availability(&sys, 0.5);
    }
}
