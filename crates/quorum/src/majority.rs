//! Majority voting quorums (Thomas; reference \[18\] of the paper).
//!
//! Any `⌊N/2⌋ + 1` sites form a quorum: two majorities always intersect.
//! Highest resilience (tolerates any `⌈N/2⌉ − 1` failures) but `O(N)`
//! message complexity — the opposite end of the trade-off from grid/FPP.
//!
//! Site `i` takes the majority window starting at itself
//! (`{i, i+1, …} mod N`) so load spreads evenly.

use crate::coterie::QuorumSystem;
use qmx_core::{QuorumSource, SiteId};
use std::collections::BTreeSet;

/// Size of a majority among `n` sites.
pub fn majority_size(n: usize) -> usize {
    n / 2 + 1
}

/// Builds the rotating-window majority quorum system over `n` sites.
///
/// ```
/// use qmx_quorum::majority::majority_system;
/// let sys = majority_system(7);
/// assert_eq!(sys.max_quorum_size(), 4); // floor(7/2) + 1
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn majority_system(n: usize) -> QuorumSystem {
    assert!(n > 0, "need at least one site");
    let m = majority_size(n);
    let quorums = (0..n)
        .map(|s| (0..m).map(|k| SiteId(((s + k) % n) as u32)).collect())
        .collect();
    QuorumSystem::new(n, quorums)
}

/// A [`QuorumSource`] that returns any majority of the *live* sites'
/// universe: the first `⌊N/2⌋+1` live sites starting from the requester.
/// Returns `None` once half or more of the sites are down (a majority of
/// the original universe must stay live for safety).
#[derive(Debug, Clone)]
pub struct MajorityQuorumSource {
    n: usize,
}

impl MajorityQuorumSource {
    /// Creates a source over `n` sites.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one site");
        MajorityQuorumSource { n }
    }
}

impl QuorumSource for MajorityQuorumSource {
    fn quorum_avoiding(&mut self, site: SiteId, down: &BTreeSet<SiteId>) -> Option<Vec<SiteId>> {
        let m = majority_size(self.n);
        let mut q: Vec<SiteId> = Vec::with_capacity(m);
        for k in 0..self.n {
            let cand = SiteId(((site.index() + k) % self.n) as u32);
            if !down.contains(&cand) {
                q.push(cand);
                if q.len() == m {
                    q.sort_unstable();
                    return Some(q);
                }
            }
        }
        None
    }

    fn box_clone(&self) -> Box<dyn QuorumSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_sizes() {
        assert_eq!(majority_size(1), 1);
        assert_eq!(majority_size(2), 2);
        assert_eq!(majority_size(5), 3);
        assert_eq!(majority_size(6), 4);
    }

    #[test]
    fn system_is_valid_coterie() {
        for n in [1usize, 2, 3, 7, 10, 15] {
            let sys = majority_system(n);
            assert!(sys.verify_intersection().is_ok(), "n={n}");
            assert_eq!(sys.max_quorum_size(), majority_size(n), "n={n}");
            assert_eq!(sys.self_inclusion_rate(), 1.0, "n={n}");
        }
    }

    #[test]
    fn windows_rotate() {
        let sys = majority_system(5);
        assert_eq!(sys.quorum_of(SiteId(3)), &[SiteId(0), SiteId(3), SiteId(4)]);
    }

    #[test]
    fn source_tolerates_minority_failures() {
        let mut src = MajorityQuorumSource::new(5);
        let down: BTreeSet<SiteId> = [SiteId(1), SiteId(2)].into_iter().collect();
        let q = src.quorum_avoiding(SiteId(0), &down).unwrap();
        assert_eq!(q, vec![SiteId(0), SiteId(3), SiteId(4)]);
        let down: BTreeSet<SiteId> = [SiteId(1), SiteId(2), SiteId(3)].into_iter().collect();
        assert!(src.quorum_avoiding(SiteId(0), &down).is_none());
    }
}
