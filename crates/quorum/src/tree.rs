//! Agrawal–El Abbadi tree quorums (reference \[1\] of the paper).
//!
//! Sites `0..N` (`N = 2^d − 1`) form a complete binary tree laid out
//! heap-style (children of `i` are `2i+1`, `2i+2`). A quorum is obtained by
//! walking from the root to a leaf; when a node on the path is unavailable,
//! it is *substituted* by **two** root-to-leaf paths through both of its
//! children. With no failures the quorum size is `log₂(N+1)`; as sites fail
//! the quorum degrades gracefully up to majority-like sizes (worst case
//! `⌈(N+1)/2⌉` leaves).
//!
//! This is the canonical *reconstructible* coterie for the paper's §6
//! fault-tolerance scheme, so [`TreeQuorumSource`] implements
//! [`QuorumSource`] for use with `DelayOptimal::with_quorum_source`.

use crate::coterie::QuorumSystem;
use qmx_core::{QuorumSource, SiteId};
use std::collections::BTreeSet;

/// Error constructing a tree quorum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// `N` is not `2^d − 1` for some `d ≥ 1`.
    NotFullTree(usize),
    /// No quorum exists that avoids the failed sites.
    NoLiveQuorum,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::NotFullTree(n) => {
                write!(f, "tree quorums need N = 2^d - 1 sites, got {n}")
            }
            TreeError::NoLiveQuorum => write!(f, "no live quorum exists"),
        }
    }
}

impl std::error::Error for TreeError {}

fn is_full_tree(n: usize) -> bool {
    n >= 1 && (n + 1).is_power_of_two()
}

/// Recursive quorum collection. `steer` biases which child is tried first
/// at each level (bit `depth` of `steer`), spreading load across sites.
fn collect(
    node: usize,
    n: usize,
    down: &BTreeSet<SiteId>,
    steer: u64,
    depth: u32,
    out: &mut Vec<SiteId>,
) -> bool {
    if node >= n {
        // Walked past a leaf: vacuous success (parent was a leaf).
        return true;
    }
    let left = 2 * node + 1;
    let right = 2 * node + 2;
    let is_leaf = left >= n;
    let alive = !down.contains(&SiteId(node as u32));
    if alive {
        out.push(SiteId(node as u32));
        if is_leaf {
            return true;
        }
        // Follow one root-to-leaf path; try the steered child first.
        let (first, second) = if (steer >> depth) & 1 == 0 {
            (left, right)
        } else {
            (right, left)
        };
        let mark = out.len();
        if collect(first, n, down, steer, depth + 1, out) {
            return true;
        }
        out.truncate(mark);
        if collect(second, n, down, steer, depth + 1, out) {
            return true;
        }
        out.truncate(mark - 1); // remove `node` too
        false
    } else {
        if is_leaf {
            return false;
        }
        // Substitute the failed node with paths through BOTH children.
        let mark = out.len();
        if collect(left, n, down, steer, depth + 1, out)
            && collect(right, n, down, steer, depth + 1, out)
        {
            true
        } else {
            out.truncate(mark);
            false
        }
    }
}

/// Computes one tree quorum over `n` sites avoiding `down`, biased by
/// `steer` (typically the requesting site id, to spread load).
///
/// # Errors
///
/// [`TreeError::NotFullTree`] if `n` is not `2^d − 1`;
/// [`TreeError::NoLiveQuorum`] if failures disconnect every quorum.
pub fn tree_quorum(
    n: usize,
    down: &BTreeSet<SiteId>,
    steer: u64,
) -> Result<Vec<SiteId>, TreeError> {
    if !is_full_tree(n) {
        return Err(TreeError::NotFullTree(n));
    }
    let mut out = Vec::new();
    if collect(0, n, down, steer, 0, &mut out) {
        out.sort_unstable();
        out.dedup();
        Ok(out)
    } else {
        Err(TreeError::NoLiveQuorum)
    }
}

/// Builds the failure-free tree quorum system (each site steers by its own
/// id, so different sites get different root-to-leaf paths).
///
/// ```
/// use qmx_quorum::tree::tree_system;
/// let sys = tree_system(15).expect("15 = 2^4 - 1");
/// assert_eq!(sys.max_quorum_size(), 4); // log2(N+1)
/// ```
///
/// # Errors
///
/// [`TreeError::NotFullTree`] if `n` is not `2^d − 1`.
pub fn tree_system(n: usize) -> Result<QuorumSystem, TreeError> {
    let empty = BTreeSet::new();
    let quorums = (0..n)
        .map(|s| tree_quorum(n, &empty, s as u64))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(QuorumSystem::new(n, quorums))
}

/// A [`QuorumSource`] that reconstructs tree quorums around failed sites,
/// for the §6 fault-tolerant protocol.
#[derive(Debug, Clone)]
pub struct TreeQuorumSource {
    n: usize,
}

impl TreeQuorumSource {
    /// Creates a source over `n = 2^d − 1` sites.
    ///
    /// # Errors
    ///
    /// [`TreeError::NotFullTree`] if `n` is not `2^d − 1`.
    pub fn new(n: usize) -> Result<Self, TreeError> {
        if is_full_tree(n) {
            Ok(TreeQuorumSource { n })
        } else {
            Err(TreeError::NotFullTree(n))
        }
    }
}

impl QuorumSource for TreeQuorumSource {
    fn quorum_avoiding(&mut self, site: SiteId, down: &BTreeSet<SiteId>) -> Option<Vec<SiteId>> {
        tree_quorum(self.n, down, site.0 as u64).ok()
    }

    fn box_clone(&self) -> Box<dyn QuorumSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn down(ids: &[u32]) -> BTreeSet<SiteId> {
        ids.iter().map(|&i| SiteId(i)).collect()
    }

    #[test]
    fn rejects_non_full_tree_sizes() {
        assert_eq!(tree_system(6).unwrap_err(), TreeError::NotFullTree(6));
        assert!(TreeQuorumSource::new(4).is_err());
        assert_eq!(
            TreeError::NotFullTree(6).to_string(),
            "tree quorums need N = 2^d - 1 sites, got 6"
        );
    }

    #[test]
    fn failure_free_quorum_is_a_root_leaf_path() {
        // N = 7, depth 3: path length log2(8) = 3.
        let q = tree_quorum(7, &BTreeSet::new(), 0).unwrap();
        assert_eq!(q, vec![SiteId(0), SiteId(1), SiteId(3)]);
        let q = tree_quorum(7, &BTreeSet::new(), 0b11).unwrap();
        assert_eq!(q, vec![SiteId(0), SiteId(2), SiteId(6)]);
    }

    #[test]
    fn tree_system_is_a_valid_coterie() {
        for n in [1usize, 3, 7, 15, 31, 63] {
            let sys = tree_system(n).unwrap();
            assert!(sys.verify_intersection().is_ok(), "n={n}");
            let depth = (n + 1).trailing_zeros() as usize;
            assert_eq!(sys.max_quorum_size(), depth, "n={n}");
        }
    }

    #[test]
    fn root_failure_substitutes_two_paths() {
        let q = tree_quorum(7, &down(&[0]), 0).unwrap();
        // Both subtrees contribute a path: {1,3} and {2,5or6}... steered
        // left-first: {1,3,2,5}.
        assert_eq!(q, vec![SiteId(1), SiteId(2), SiteId(3), SiteId(5)]);
    }

    #[test]
    fn interior_failure_widens_quorum() {
        let q = tree_quorum(7, &down(&[1]), 0).unwrap();
        // Node 1 replaced by paths through both its children 3 and 4.
        assert_eq!(q, vec![SiteId(0), SiteId(3), SiteId(4)]);
    }

    #[test]
    fn quorums_avoiding_failures_still_intersect() {
        // Any two quorums constructed under (possibly different) failure
        // sets must intersect — that is what keeps the FT protocol safe.
        let scenarios = [
            down(&[]),
            down(&[0]),
            down(&[1]),
            down(&[2]),
            down(&[0, 1]),
            down(&[3, 4]),
            down(&[1, 6]),
        ];
        let mut quorums = Vec::new();
        for d in &scenarios {
            for steer in 0..8u64 {
                if let Ok(q) = tree_quorum(15, d, steer) {
                    quorums.push(q);
                }
            }
        }
        for (i, a) in quorums.iter().enumerate() {
            for b in &quorums[i + 1..] {
                assert!(
                    a.iter().any(|x| b.contains(x)),
                    "quorums {a:?} and {b:?} do not intersect"
                );
            }
        }
    }

    #[test]
    fn leaf_failures_exhaust_quorums() {
        // All leaves down: no quorum can terminate.
        let err = tree_quorum(7, &down(&[3, 4, 5, 6]), 0).unwrap_err();
        assert_eq!(err, TreeError::NoLiveQuorum);
        assert_eq!(err.to_string(), "no live quorum exists");
    }

    #[test]
    fn quorum_source_reconstructs() {
        let mut src = TreeQuorumSource::new(7).unwrap();
        let q0 = src.quorum_avoiding(SiteId(0), &BTreeSet::new()).unwrap();
        assert_eq!(q0.len(), 3);
        let q1 = src.quorum_avoiding(SiteId(0), &down(&[q0[1].0])).unwrap();
        assert!(!q1.contains(&q0[1]));
        assert!(src
            .quorum_avoiding(SiteId(0), &down(&[3, 4, 5, 6]))
            .is_none());
    }

    #[test]
    fn single_node_tree() {
        let q = tree_quorum(1, &BTreeSet::new(), 0).unwrap();
        assert_eq!(q, vec![SiteId(0)]);
        assert!(tree_quorum(1, &down(&[0]), 0).is_err());
    }
}
