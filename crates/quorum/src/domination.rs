//! Coterie domination (Garcia-Molina & Barbará, 1985).
//!
//! Coterie `C` **dominates** coterie `D` iff `C ≠ D` and every quorum of
//! `D` contains some quorum of `C`. A dominating coterie is strictly
//! better: whenever `D` can assemble a quorum, so can `C` (so `C`'s
//! availability is at least `D`'s at every site reliability `p`), and
//! `C`'s quorums are no larger. Nondominated (ND) coteries are thus the
//! efficient frontier of quorum design; the paper's cited constructions
//! (majority for odd `N`, FPP, tree quorums) are all ND or near-ND.
//!
//! The property-based suite cross-checks the availability consequence:
//! `dominates(c, d)` implies `avail_c(p) ≥ avail_d(p)` for every `p`.

use crate::coterie::{is_subset, QuorumSystem};
use qmx_core::SiteId;
use std::collections::BTreeSet;

/// Normalizes a quorum list: sorts members, drops duplicates.
fn normalize(quorums: &[Vec<SiteId>]) -> BTreeSet<Vec<SiteId>> {
    quorums
        .iter()
        .map(|q| {
            let mut q = q.clone();
            q.sort_unstable();
            q.dedup();
            q
        })
        .collect()
}

/// Whether coterie `c` dominates coterie `d`: `c ≠ d` and every quorum of
/// `d` contains some quorum of `c`.
///
/// Both arguments are plain quorum lists (order and duplicates ignored).
///
/// ```
/// use qmx_core::SiteId;
/// use qmx_quorum::domination::dominates;
/// let s = |ids: &[u32]| ids.iter().map(|&i| SiteId(i)).collect::<Vec<_>>();
/// // {{a,b},{b,c}} dominates {{a,b,c}}.
/// assert!(dominates(&[s(&[0, 1]), s(&[1, 2])], &[s(&[0, 1, 2])]));
/// ```
pub fn dominates(c: &[Vec<SiteId>], d: &[Vec<SiteId>]) -> bool {
    let cn = normalize(c);
    let dn = normalize(d);
    if cn == dn {
        return false;
    }
    dn.iter().all(|qd| cn.iter().any(|qc| is_subset(qc, qd)))
}

impl QuorumSystem {
    /// Whether this system's coterie dominates `other`'s (see
    /// [`dominates`]).
    pub fn coterie_dominates(&self, other: &QuorumSystem) -> bool {
        dominates(&self.distinct_quorums(), &other.distinct_quorums())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::exact_availability;
    use crate::grid::grid_system;
    use crate::majority::majority_system;

    fn s(ids: &[u32]) -> Vec<SiteId> {
        ids.iter().map(|&i| SiteId(i)).collect()
    }

    #[test]
    fn smaller_quorums_dominate_the_full_set() {
        // C = {{a,b},{b,c}} dominates D = {{a,b,c}}: the only quorum of D
        // contains {a,b}.
        let c = vec![s(&[0, 1]), s(&[1, 2])];
        let d = vec![s(&[0, 1, 2])];
        assert!(dominates(&c, &d));
        assert!(!dominates(&d, &c));
    }

    #[test]
    fn a_coterie_does_not_dominate_itself() {
        let c = vec![s(&[0, 1]), s(&[1, 2])];
        assert!(!dominates(&c, &c));
        // Same coterie expressed with duplicates/reordering: still equal.
        let c2 = vec![s(&[2, 1]), s(&[1, 0]), s(&[0, 1])];
        assert!(!dominates(&c, &c2));
    }

    #[test]
    fn incomparable_coteries() {
        // {{a,b}} vs {{b,c}} under {a,b,c}: neither contains the other's
        // quorum (NB: these are valid one-quorum coteries individually).
        let c = vec![s(&[0, 1])];
        let d = vec![s(&[1, 2])];
        assert!(!dominates(&c, &d));
        assert!(!dominates(&d, &c));
    }

    #[test]
    fn majority_dominates_supermajority() {
        // All 2-subsets of {0,1,2} dominate all... take D = the
        // "two-thirds" coterie {{0,1,2}} and C = majority-of-3.
        let maj = majority_system(3).distinct_quorums();
        let full = vec![s(&[0, 1, 2])];
        assert!(dominates(&maj, &full));
    }

    #[test]
    fn domination_implies_availability_ordering() {
        // The theorem the concept exists for: wherever D has a live
        // quorum, so does C. Check on concrete systems and several p.
        let c = QuorumSystem::new(3, vec![s(&[0, 1]), s(&[1, 2]), s(&[0, 2])]);
        let d = QuorumSystem::new(3, vec![s(&[0, 1, 2]), s(&[0, 1, 2]), s(&[0, 1, 2])]);
        assert!(c.coterie_dominates(&d));
        for p10 in 1..10 {
            let p = f64::from(p10) / 10.0;
            assert!(
                exact_availability(&c, p) >= exact_availability(&d, p) - 1e-12,
                "p={p}"
            );
        }
    }

    #[test]
    fn grid_and_majority_are_incomparable_at_9() {
        let grid = grid_system(9);
        let maj = majority_system(9);
        assert!(!grid.coterie_dominates(&maj));
        assert!(!maj.coterie_dominates(&grid));
    }
}
