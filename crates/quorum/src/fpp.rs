//! Finite-projective-plane quorums (Maekawa's optimal construction).
//!
//! For a prime `q`, the projective plane `PG(2, q)` has `N = q² + q + 1`
//! points and as many lines; every line contains `q + 1` points, every two
//! lines meet in exactly one point, and every two points lie on exactly one
//! line. Taking lines as quorums yields the size-optimal symmetric coterie
//! with `K = q + 1 ≈ √N`.
//!
//! Points and lines are both represented by normalized homogeneous triples
//! over `GF(q)`; point `p` lies on line `l` iff `p · l ≡ 0 (mod q)`. Site
//! `i` is the `i`-th point; its quorum is a line *through* `i` (chosen by a
//! greedy system of distinct representatives), so `i ∈ req_set(i)` as
//! Maekawa's algorithm expects.

use crate::coterie::QuorumSystem;
use qmx_core::SiteId;

/// Error constructing a projective plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FppError {
    /// The order is not a prime (prime powers are not supported).
    NotPrime(usize),
}

impl std::fmt::Display for FppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FppError::NotPrime(q) => write!(f, "projective plane order {q} is not prime"),
        }
    }
}

impl std::error::Error for FppError {}

fn is_prime(q: usize) -> bool {
    if q < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= q {
        if q.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Normalized homogeneous triples of `PG(2, q)`: the first non-zero
/// coordinate is 1. There are exactly `q² + q + 1` of them.
fn points(q: u64) -> Vec<[u64; 3]> {
    let mut pts = Vec::new();
    // (1, y, z)
    for y in 0..q {
        for z in 0..q {
            pts.push([1, y, z]);
        }
    }
    // (0, 1, z)
    for z in 0..q {
        pts.push([0, 1, z]);
    }
    // (0, 0, 1)
    pts.push([0, 0, 1]);
    pts
}

fn dot(a: &[u64; 3], b: &[u64; 3], q: u64) -> u64 {
    (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]) % q
}

/// Builds the FPP quorum system of prime order `q` over `N = q² + q + 1`
/// sites: site `i`'s quorum is a line through point `i`.
///
/// ```
/// use qmx_quorum::fpp::fpp_system;
/// let fano = fpp_system(2).expect("2 is prime"); // the Fano plane
/// assert_eq!(fano.n(), 7);
/// assert_eq!(fano.max_quorum_size(), 3);
/// ```
///
/// # Errors
///
/// Returns [`FppError::NotPrime`] if `q` is not prime.
pub fn fpp_system(q: usize) -> Result<QuorumSystem, FppError> {
    if !is_prime(q) {
        return Err(FppError::NotPrime(q));
    }
    let qq = q as u64;
    let pts = points(qq);
    let n = pts.len();
    // Lines are the same triples by duality; line `l` = set of points with
    // p·l = 0.
    let line_members: Vec<Vec<SiteId>> = pts
        .iter()
        .map(|l| {
            (0..n)
                .filter(|&p| dot(&pts[p], l, qq) == 0)
                .map(|p| SiteId(p as u32))
                .collect()
        })
        .collect();
    // Assign each point a distinct line through it (greedy SDR; each point
    // lies on q+1 lines and each line carries q+1 points, so a perfect
    // matching exists and greedy-with-retry finds one for the sizes we
    // support — fall back to any incident line if the greedy pass misses).
    let mut line_of_point: Vec<Option<usize>> = vec![None; n];
    let mut line_used: Vec<bool> = vec![false; n];
    for (p, slot) in line_of_point.iter_mut().enumerate() {
        for (li, members) in line_members.iter().enumerate() {
            if !line_used[li] && members.contains(&SiteId(p as u32)) {
                line_used[li] = true;
                *slot = Some(li);
                break;
            }
        }
    }
    let quorums: Vec<Vec<SiteId>> = (0..n)
        .map(|p| {
            let li = line_of_point[p].unwrap_or_else(|| {
                // Fallback: any line through p (self-inclusion preserved,
                // line may be shared with another site).
                line_members
                    .iter()
                    .position(|m| m.contains(&SiteId(p as u32)))
                    .expect("every point lies on q+1 lines")
            });
            line_members[li].clone()
        })
        .collect();
    Ok(QuorumSystem::new(n, quorums))
}

/// Number of sites an order-`q` plane supports.
pub fn fpp_sites(q: usize) -> usize {
    q * q + q + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_composite_order() {
        assert_eq!(fpp_system(4), Err(FppError::NotPrime(4)));
        assert_eq!(fpp_system(1), Err(FppError::NotPrime(1)));
        assert!(fpp_system(6).is_err());
    }

    #[test]
    fn fano_plane_q2() {
        // q = 2: the Fano plane, N = 7, K = 3.
        let sys = fpp_system(2).unwrap();
        assert_eq!(sys.n(), 7);
        assert_eq!(sys.mean_quorum_size(), 3.0);
        assert!(sys.verify_intersection().is_ok());
        assert!(sys.verify_minimality().is_ok());
        assert_eq!(sys.self_inclusion_rate(), 1.0);
    }

    #[test]
    fn planes_of_prime_orders_are_valid_coteries() {
        for q in [3usize, 5, 7] {
            let sys = fpp_system(q).unwrap();
            assert_eq!(sys.n(), fpp_sites(q), "q={q}");
            assert_eq!(sys.max_quorum_size(), q + 1, "q={q}");
            assert!(sys.verify_intersection().is_ok(), "q={q}");
            assert_eq!(sys.self_inclusion_rate(), 1.0, "q={q}");
        }
    }

    #[test]
    fn quorum_size_is_sqrt_n_asymptotically() {
        let sys = fpp_system(11).unwrap();
        let n = sys.n() as f64; // 133
        assert!((sys.mean_quorum_size() - n.sqrt()).abs() < 1.0);
    }

    #[test]
    fn error_displays() {
        assert_eq!(
            FppError::NotPrime(9).to_string(),
            "projective plane order 9 is not prime"
        );
    }
}
