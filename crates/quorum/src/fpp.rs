//! Finite-projective-plane quorums (Maekawa's optimal construction).
//!
//! For a prime `q`, the projective plane `PG(2, q)` has `N = q² + q + 1`
//! points and as many lines; every line contains `q + 1` points, every two
//! lines meet in exactly one point, and every two points lie on exactly one
//! line. Taking lines as quorums yields the size-optimal symmetric coterie
//! with `K = q + 1 ≈ √N`.
//!
//! Points and lines are both represented by normalized homogeneous triples
//! over `GF(q)`; point `p` lies on line `l` iff `p · l ≡ 0 (mod q)`. Site
//! `i` is the `i`-th point; its quorum is a line *through* `i` (chosen by a
//! greedy system of distinct representatives), so `i ∈ req_set(i)` as
//! Maekawa's algorithm expects.

use crate::coterie::QuorumSystem;
use qmx_core::{QuorumSource, SiteId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Error constructing a projective plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FppError {
    /// The order is not a prime (prime powers are not supported).
    NotPrime(usize),
}

impl std::fmt::Display for FppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FppError::NotPrime(q) => write!(f, "projective plane order {q} is not prime"),
        }
    }
}

impl std::error::Error for FppError {}

fn is_prime(q: usize) -> bool {
    if q < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= q {
        if q.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Normalized homogeneous triples of `PG(2, q)`: the first non-zero
/// coordinate is 1. There are exactly `q² + q + 1` of them.
fn points(q: u64) -> Vec<[u64; 3]> {
    let mut pts = Vec::new();
    // (1, y, z)
    for y in 0..q {
        for z in 0..q {
            pts.push([1, y, z]);
        }
    }
    // (0, 1, z)
    for z in 0..q {
        pts.push([0, 1, z]);
    }
    // (0, 0, 1)
    pts.push([0, 0, 1]);
    pts
}

fn dot(a: &[u64; 3], b: &[u64; 3], q: u64) -> u64 {
    (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]) % q
}

/// Builds the FPP quorum system of prime order `q` over `N = q² + q + 1`
/// sites: site `i`'s quorum is a line through point `i`.
///
/// ```
/// use qmx_quorum::fpp::fpp_system;
/// let fano = fpp_system(2).expect("2 is prime"); // the Fano plane
/// assert_eq!(fano.n(), 7);
/// assert_eq!(fano.max_quorum_size(), 3);
/// ```
///
/// # Errors
///
/// Returns [`FppError::NotPrime`] if `q` is not prime.
pub fn fpp_system(q: usize) -> Result<QuorumSystem, FppError> {
    if !is_prime(q) {
        return Err(FppError::NotPrime(q));
    }
    let qq = q as u64;
    let pts = points(qq);
    let n = pts.len();
    // Lines are the same triples by duality; line `l` = set of points with
    // p·l = 0.
    let line_members: Vec<Vec<SiteId>> = pts
        .iter()
        .map(|l| {
            (0..n)
                .filter(|&p| dot(&pts[p], l, qq) == 0)
                .map(|p| SiteId(p as u32))
                .collect()
        })
        .collect();
    // Assign each point a distinct line through it (greedy SDR; each point
    // lies on q+1 lines and each line carries q+1 points, so a perfect
    // matching exists and greedy-with-retry finds one for the sizes we
    // support — fall back to any incident line if the greedy pass misses).
    let mut line_of_point: Vec<Option<usize>> = vec![None; n];
    let mut line_used: Vec<bool> = vec![false; n];
    for (p, slot) in line_of_point.iter_mut().enumerate() {
        for (li, members) in line_members.iter().enumerate() {
            if !line_used[li] && members.contains(&SiteId(p as u32)) {
                line_used[li] = true;
                *slot = Some(li);
                break;
            }
        }
    }
    let quorums: Vec<Vec<SiteId>> = (0..n)
        .map(|p| {
            let li = line_of_point[p].unwrap_or_else(|| {
                // Fallback: any line through p (self-inclusion preserved,
                // line may be shared with another site).
                line_members
                    .iter()
                    .position(|m| m.contains(&SiteId(p as u32)))
                    .expect("every point lies on q+1 lines")
            });
            line_members[li].clone()
        })
        .collect();
    Ok(QuorumSystem::new(n, quorums))
}

/// Number of sites an order-`q` plane supports.
pub fn fpp_sites(q: usize) -> usize {
    q * q + q + 1
}

/// The normalized triple of point (or, by duality, line) `idx`, matching
/// the enumeration order of [`points`].
fn triple(idx: usize, q: u64) -> [u64; 3] {
    let (qq, i) = ((q * q) as usize, idx as u64);
    if idx < qq {
        [1, i / q, i % q]
    } else if idx < qq + q as usize {
        [0, 1, i - qq as u64]
    } else {
        [0, 0, 1]
    }
}

/// `x⁻¹ mod q` by Fermat's little theorem (`q` prime, `x ≠ 0`).
fn inv(x: u64, q: u64) -> u64 {
    let (mut base, mut exp, mut acc) = (x % q, q - 2, 1u64);
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % q;
        }
        base = base * base % q;
        exp >>= 1;
    }
    acc
}

/// The `q + 1` point indices of line `[a, b, c]`, in ascending order,
/// computed parametrically in `O(q)` — solving `a·x + b·y + c·z ≡ 0` per
/// point family rather than testing all `q² + q + 1` points.
fn line_points(line: [u64; 3], q: u64) -> Vec<u32> {
    let [a, b, c] = line;
    let mut pts: Vec<u32> = Vec::with_capacity(q as usize + 1);
    // Family (1, y, z), index y·q + z: a + b·y + c·z ≡ 0.
    if c != 0 {
        let cinv = inv(c, q);
        for y in 0..q {
            let z = (q - (a + b * y % q) % q) % q * cinv % q;
            pts.push((y * q + z) as u32);
        }
    } else if b != 0 {
        let y = (q - a % q) % q * inv(b, q) % q;
        for z in 0..q {
            pts.push((y * q + z) as u32);
        }
    }
    // Family (0, 1, z), index q² + z: b + c·z ≡ 0.
    if c != 0 {
        let z = (q - b % q) % q * inv(c, q) % q;
        pts.push((q * q + z) as u32);
    } else if b == 0 {
        for z in 0..q {
            pts.push((q * q + z) as u32);
        }
    }
    // Point (0, 0, 1), index q² + q: on the line iff c ≡ 0.
    if c == 0 {
        pts.push((q * q + q) as u32);
    }
    pts.sort_unstable();
    pts
}

/// Lazy FPP quorums: yields one site's `q + 1 ≈ √N` quorum on demand in
/// `O(q)` instead of materializing all `N = q² + q + 1` lines.
///
/// Construction precomputes only the greedy line assignment (`O(N·q)`
/// time, one `u32` per site) — the same system of distinct representatives
/// [`fpp_system`] builds, so with no failed sites the result is
/// element-for-element identical to its `quorum_of`. With failures it
/// tries the site's other `q` incident lines in ascending index order
/// (any line is a valid quorum: two lines of a projective plane always
/// meet), reporting the site inaccessible only when every line through it
/// contains a down site.
#[derive(Debug, Clone)]
pub struct FppQuorumSource {
    q: u64,
    /// Greedy SDR line assignment, shared: cloning the source (one clone
    /// per site at large `N`) must not duplicate the `O(N)` table.
    assigned: Arc<Vec<u32>>,
}

impl FppQuorumSource {
    /// Creates a lazy source for the plane of prime order `q`
    /// (`N = q² + q + 1` sites).
    ///
    /// # Errors
    ///
    /// Returns [`FppError::NotPrime`] if `q` is not prime.
    pub fn new(q: usize) -> Result<Self, FppError> {
        if !is_prime(q) {
            return Err(FppError::NotPrime(q));
        }
        let qq = q as u64;
        let n = fpp_sites(q);
        // Same greedy SDR as `fpp_system`: scanning a point's incident
        // lines in ascending index order is equivalent to scanning all
        // lines in index order and testing membership — the dual of
        // `line_points` enumerates exactly those incident lines.
        let mut assigned: Vec<u32> = Vec::with_capacity(n);
        let mut used = vec![false; n];
        for p in 0..n {
            let incident = line_points(triple(p, qq), qq);
            let li = incident
                .iter()
                .copied()
                .find(|&li| !used[li as usize])
                .unwrap_or(incident[0]);
            used[li as usize] = true;
            assigned.push(li);
        }
        Ok(FppQuorumSource {
            q: qq,
            assigned: Arc::new(assigned),
        })
    }

    /// Number of sites the source covers.
    pub fn n(&self) -> usize {
        self.assigned.len()
    }
}

impl QuorumSource for FppQuorumSource {
    fn quorum_avoiding(&mut self, site: SiteId, down: &BTreeSet<SiteId>) -> Option<Vec<SiteId>> {
        let q = self.q;
        let primary = self.assigned[site.index()];
        let incident = line_points(triple(site.index(), q), q);
        std::iter::once(primary)
            .chain(incident.into_iter().filter(move |&li| li != primary))
            .map(|li| line_points(triple(li as usize, q), q))
            .find(|members| !members.iter().any(|&p| down.contains(&SiteId(p))))
            .map(|members| members.into_iter().map(SiteId).collect())
    }

    fn box_clone(&self) -> Box<dyn QuorumSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_composite_order() {
        assert_eq!(fpp_system(4), Err(FppError::NotPrime(4)));
        assert_eq!(fpp_system(1), Err(FppError::NotPrime(1)));
        assert!(fpp_system(6).is_err());
    }

    #[test]
    fn fano_plane_q2() {
        // q = 2: the Fano plane, N = 7, K = 3.
        let sys = fpp_system(2).unwrap();
        assert_eq!(sys.n(), 7);
        assert_eq!(sys.mean_quorum_size(), 3.0);
        assert!(sys.verify_intersection().is_ok());
        assert!(sys.verify_minimality().is_ok());
        assert_eq!(sys.self_inclusion_rate(), 1.0);
    }

    #[test]
    fn planes_of_prime_orders_are_valid_coteries() {
        for q in [3usize, 5, 7] {
            let sys = fpp_system(q).unwrap();
            assert_eq!(sys.n(), fpp_sites(q), "q={q}");
            assert_eq!(sys.max_quorum_size(), q + 1, "q={q}");
            assert!(sys.verify_intersection().is_ok(), "q={q}");
            assert_eq!(sys.self_inclusion_rate(), 1.0, "q={q}");
        }
    }

    #[test]
    fn quorum_size_is_sqrt_n_asymptotically() {
        let sys = fpp_system(11).unwrap();
        let n = sys.n() as f64; // 133
        assert!((sys.mean_quorum_size() - n.sqrt()).abs() < 1.0);
    }

    #[test]
    fn error_displays() {
        assert_eq!(
            FppError::NotPrime(9).to_string(),
            "projective plane order 9 is not prime"
        );
    }

    #[test]
    fn lazy_source_matches_eager_system() {
        for q in [2usize, 3, 5, 7, 11] {
            let sys = fpp_system(q).unwrap();
            let mut lazy = FppQuorumSource::new(q).unwrap();
            assert_eq!(lazy.n(), sys.n());
            for s in 0..sys.n() {
                let site = SiteId(s as u32);
                let quorum = lazy
                    .quorum_avoiding(site, &BTreeSet::new())
                    .expect("no failures: quorum must exist");
                assert_eq!(quorum.as_slice(), sys.quorum_of(site), "q={q} site={s}");
            }
        }
    }

    #[test]
    fn lazy_source_rejects_composite_order() {
        assert!(matches!(
            FppQuorumSource::new(6),
            Err(FppError::NotPrime(6))
        ));
    }

    #[test]
    fn lazy_source_switches_to_another_incident_line() {
        let mut lazy = FppQuorumSource::new(3).unwrap(); // N = 13, lines of 4
        for s in 0..13u32 {
            let site = SiteId(s);
            let original = lazy.quorum_avoiding(site, &BTreeSet::new()).unwrap();
            // Fail one non-self member of the assigned line: the source
            // must fall back to a different line still through `site`.
            let dead = *original.iter().find(|&&m| m != site).unwrap();
            let down: BTreeSet<SiteId> = [dead].into_iter().collect();
            let alt = lazy.quorum_avoiding(site, &down).unwrap();
            assert!(alt.contains(&site), "incident lines pass through site");
            assert!(!alt.contains(&dead));
            assert_ne!(alt, original);
        }
    }

    #[test]
    fn lazy_source_reports_inaccessible_when_every_line_is_hit() {
        // Fano plane: site 0 lies on 3 lines; failing one distinct
        // non-self point per line makes all of them unusable.
        let mut lazy = FppQuorumSource::new(2).unwrap();
        let site = SiteId(0);
        let mut down = BTreeSet::new();
        // Greedily poison lines until the site becomes inaccessible; q+1
        // = 3 failures always suffice (one per incident line).
        for _ in 0..3 {
            match lazy.quorum_avoiding(site, &down) {
                Some(q) => {
                    down.insert(*q.iter().find(|&&m| m != site).unwrap());
                }
                None => break,
            }
        }
        assert_eq!(lazy.quorum_avoiding(site, &down), None);
    }
}
