//! Grid-set quorums (Cheung–Ammar–Ahamad; reference \[2\] of the paper).
//!
//! Two levels: the `N` sites are partitioned into `m = N/G` groups of `G`
//! sites. The **upper** level runs majority voting over groups (to maximise
//! resilience); the **lower** level uses a Maekawa-like grid inside each
//! selected group (to keep messages down). A quorum therefore consists of a
//! grid quorum from each of `⌊m/2⌋ + 1` groups — size
//! `≈ (m+1)/2 · (2√G − 1)`.
//!
//! Intersection: two quorums each select a majority of groups, hence share
//! a group; inside that shared group both contain grid quorums over the
//! same `G` members, which intersect.
//!
//! Because the upper level is a majority, a whole group can fail and
//! quorums still exist *without any reconfiguration* — the property §6
//! highlights for this family.

use crate::coterie::QuorumSystem;
use crate::grid::grid_system;
use qmx_core::SiteId;

/// Error constructing a two-level system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoLevelError {
    /// `N` is not divisible by the group size `G`.
    NotDivisible {
        /// Total number of sites.
        n: usize,
        /// Requested group size.
        g: usize,
    },
}

impl std::fmt::Display for TwoLevelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TwoLevelError::NotDivisible { n, g } => {
                write!(f, "{n} sites cannot be split into groups of {g}")
            }
        }
    }
}

impl std::error::Error for TwoLevelError {}

/// Builds the grid-set quorum system: groups of size `g`, majority over
/// groups, grid inside each selected group. Group `k` owns sites
/// `[k·g, (k+1)·g)`.
///
/// # Errors
///
/// [`TwoLevelError::NotDivisible`] if `g` does not divide `n` (or is zero).
pub fn gridset_system(n: usize, g: usize) -> Result<QuorumSystem, TwoLevelError> {
    if g == 0 || n == 0 || !n.is_multiple_of(g) {
        return Err(TwoLevelError::NotDivisible { n, g });
    }
    let m = n / g; // number of groups
    let maj = m / 2 + 1;
    let inner = grid_system(g); // grid template over 0..g, shifted per group
    let quorums = (0..n)
        .map(|s| {
            let my_group = s / g;
            let within = s % g;
            let mut q: Vec<SiteId> = Vec::new();
            // Majority of groups starting from the site's own group.
            for k in 0..maj {
                let grp = (my_group + k) % m;
                let base = grp * g;
                // Inside the group, take the grid quorum of the member with
                // the same offset as this site (spreads load).
                for member in inner.quorum_of(SiteId(within as u32)) {
                    q.push(SiteId((base + member.index()) as u32));
                }
            }
            q
        })
        .collect();
    Ok(QuorumSystem::new(n, quorums))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_group_sizes() {
        assert!(gridset_system(10, 3).is_err());
        assert!(gridset_system(10, 0).is_err());
        assert_eq!(
            TwoLevelError::NotDivisible { n: 10, g: 3 }.to_string(),
            "10 sites cannot be split into groups of 3"
        );
    }

    #[test]
    fn intersection_holds() {
        for (n, g) in [(8usize, 4usize), (12, 4), (18, 9), (16, 4), (27, 9)] {
            let sys = gridset_system(n, g).unwrap();
            assert!(sys.verify_intersection().is_ok(), "n={n} g={g}");
        }
    }

    #[test]
    fn quorum_size_matches_formula() {
        // n=16, g=4: m=4 groups, majority 3, grid over 4 = 3 members.
        let sys = gridset_system(16, 4).unwrap();
        assert_eq!(sys.max_quorum_size(), 9);
    }

    #[test]
    fn self_inclusion() {
        let sys = gridset_system(16, 4).unwrap();
        assert_eq!(sys.self_inclusion_rate(), 1.0);
    }

    #[test]
    fn degenerate_single_group_is_pure_grid() {
        let sys = gridset_system(9, 9).unwrap();
        let grid = grid_system(9);
        assert_eq!(sys.quorum_of(SiteId(4)), grid.quorum_of(SiteId(4)));
    }
}
