//! # qmx-quorum
//!
//! Coterie theory and quorum constructions for quorum-based mutual
//! exclusion.
//!
//! A **coterie** `C` under a universe `U` of `N` sites is a set of quorums
//! (subsets of `U`) satisfying (§2 of the paper):
//!
//! 1. every quorum is non-empty and a subset of `U`;
//! 2. **Minimality**: no quorum contains another;
//! 3. **Intersection**: every two quorums share at least one site.
//!
//! The delay-optimal algorithm of `qmx-core` is *quorum-agnostic*: plugging
//! in different constructions trades quorum size (≈ message complexity)
//! against failure resilience. This crate implements the constructions the
//! paper discusses:
//!
//! | Construction | Module | Quorum size | Paper reference |
//! |---|---|---|---|
//! | Maekawa grid | [`grid`] | `≈ 2√N − 1` | Maekawa \[8\] (grid variant) |
//! | Finite projective plane | [`fpp`] | `q+1 ≈ √N` | Maekawa \[8\] (optimal) |
//! | Tree quorum | [`tree`] | `log N` best, degrades under failures | Agrawal–El Abbadi \[1\] |
//! | Hierarchical (HQC) | [`hqc`] | `N^0.63` | Kumar \[4\] |
//! | Grid-set | [`gridset`] | majority of groups × grid inside | Cheung et al. \[2\] |
//! | Rangarajan–Setia–Tripathi | [`rst`] | `(G+1)/2 · O(√(N/G))` | \[11\] |
//! | Majority | [`majority`] | `⌊N/2⌋+1` | Thomas \[18\] |
//! | Wheel | [`wheel`] | `2` (hub-centred) | related-work family |
//! | Crumbling wall | [`crumbling`] | `O(√N)` triangular | Peleg–Wool |
//!
//! [`QuorumSystem`] wraps a per-site quorum assignment and offers property
//! verification ([`QuorumSystem::verify_intersection`],
//! [`QuorumSystem::verify_minimality`]); [`availability`] estimates the
//! probability a live quorum exists under independent site failures — the
//! resilience axis of the paper's §6 discussion.
//!
//! ```
//! use qmx_quorum::{grid::grid_system, QuorumSystem};
//! let sys: QuorumSystem = grid_system(25);
//! assert!(sys.verify_intersection().is_ok());
//! assert_eq!(sys.quorum_of(qmx_core::SiteId(0)).len(), 9); // 2·5 − 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod coterie;
pub mod crumbling;
pub mod domination;
pub mod fpp;
pub mod grid;
pub mod gridset;
pub mod hqc;
pub mod majority;
pub mod rst;
pub mod tree;
pub mod wheel;

pub use coterie::QuorumSystem;
pub use fpp::FppQuorumSource;
pub use grid::GridQuorumSource;
pub use tree::TreeQuorumSource;
