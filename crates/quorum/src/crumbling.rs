//! Crumbling-wall quorums (Peleg–Wool).
//!
//! Sites are laid out in a **wall** of rows with (possibly) different
//! widths. A quorum is **one full row plus one representative from every
//! row below it**. Intersection: take quorums anchored at rows `i ≤ j` —
//! the row-`i` quorum contains a representative of row `j`, and the
//! row-`j` quorum contains *all* of row `j`; if `i = j` they share the
//! full row. Narrow top rows give small quorums; the classic `CWlog` wall
//! (row widths growing geometrically) achieves `O(log N)` quorums with
//! good availability.

use crate::coterie::QuorumSystem;
use qmx_core::SiteId;

/// Error constructing a wall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WallError {
    /// Row widths must be positive and sum to `N`.
    BadLayout {
        /// The offending row widths.
        widths: Vec<usize>,
    },
}

impl std::fmt::Display for WallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WallError::BadLayout { widths } => {
                write!(f, "invalid wall layout {widths:?}")
            }
        }
    }
}

impl std::error::Error for WallError {}

/// Builds a crumbling-wall system from explicit row widths (row 0 on top).
/// Site ids fill rows top-to-bottom, left-to-right. Each site's quorum is
/// anchored at its own row; its representative in each lower row is chosen
/// by its own offset (mod the row width), spreading load.
///
/// # Errors
///
/// [`WallError::BadLayout`] if any width is zero or the widths are empty.
pub fn wall_system(widths: &[usize]) -> Result<QuorumSystem, WallError> {
    if widths.is_empty() || widths.contains(&0) {
        return Err(WallError::BadLayout {
            widths: widths.to_vec(),
        });
    }
    let n: usize = widths.iter().sum();
    let mut row_start = Vec::with_capacity(widths.len());
    let mut acc = 0;
    for &w in widths {
        row_start.push(acc);
        acc += w;
    }
    let row_of = |s: usize| -> usize {
        row_start
            .iter()
            .rposition(|&start| start <= s)
            .expect("site is in some row")
    };
    let quorums = (0..n)
        .map(|s| {
            let r = row_of(s);
            let offset = s - row_start[r];
            let mut q: Vec<SiteId> = Vec::new();
            // Full own row.
            for k in 0..widths[r] {
                q.push(SiteId((row_start[r] + k) as u32));
            }
            // One representative from each lower row.
            for (j, &w) in widths.iter().enumerate().skip(r + 1) {
                q.push(SiteId((row_start[j] + offset % w) as u32));
            }
            q
        })
        .collect();
    Ok(QuorumSystem::new(n, quorums))
}

/// The `CWlog`-style wall over (at least) `n` sites: row widths
/// `1, 2, 3, 4, …` until `n` sites are covered (the last row absorbs the
/// remainder). Quorum size is `O(√N)` rows… no — the number of rows `r`
/// satisfies `r(r+1)/2 ≈ N`, so a quorum (one row + one per lower row) has
/// `≤ width(r) + r ≈ 2√(2N)` members in the worst anchor and `O(√N)` on
/// average, with top-row quorums as small as `r ≈ √(2N)`.
/// ```
/// use qmx_quorum::crumbling::triangular_wall;
/// let sys = triangular_wall(10).expect("any n > 0"); // rows 1,2,3,4
/// assert!(sys.verify_intersection().is_ok());
/// assert!(sys.max_quorum_size() <= 7);
/// ```
pub fn triangular_wall(n: usize) -> Result<QuorumSystem, WallError> {
    if n == 0 {
        return Err(WallError::BadLayout { widths: vec![] });
    }
    let mut widths = Vec::new();
    let mut placed = 0usize;
    let mut w = 1usize;
    while placed < n {
        let take = w.min(n - placed);
        widths.push(take);
        placed += take;
        w += 1;
    }
    wall_system(&widths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_layouts() {
        assert!(wall_system(&[]).is_err());
        assert!(wall_system(&[2, 0, 1]).is_err());
        assert_eq!(
            WallError::BadLayout { widths: vec![0] }.to_string(),
            "invalid wall layout [0]"
        );
    }

    #[test]
    fn intersection_holds_for_assorted_walls() {
        for widths in [
            vec![1usize],
            vec![1, 2],
            vec![2, 3, 4],
            vec![1, 2, 3, 4, 5],
            vec![3, 3, 3],
            vec![1, 5, 2, 4],
        ] {
            let sys = wall_system(&widths).unwrap();
            assert!(
                sys.verify_intersection().is_ok(),
                "widths {widths:?} violate intersection"
            );
            assert_eq!(sys.self_inclusion_rate(), 1.0, "widths {widths:?}");
        }
    }

    #[test]
    fn top_row_quorum_is_one_per_row() {
        // widths [1,2,3]: site 0's quorum = itself + one from each row = 3.
        let sys = wall_system(&[1, 2, 3]).unwrap();
        assert_eq!(sys.quorum_of(SiteId(0)).len(), 3);
        // Bottom row anchors carry the whole row.
        assert_eq!(sys.quorum_of(SiteId(5)).len(), 3);
    }

    #[test]
    fn triangular_wall_covers_exactly_n() {
        for n in [1usize, 2, 6, 10, 11, 40] {
            let sys = triangular_wall(n).unwrap();
            assert_eq!(sys.n(), n);
            assert!(sys.verify_intersection().is_ok(), "n={n}");
        }
    }

    #[test]
    fn triangular_wall_quorums_are_sublinear() {
        let sys = triangular_wall(100).unwrap();
        // rows ~ 14, widest row 14: worst quorum well under N/2.
        assert!(sys.max_quorum_size() <= 30);
        assert!(sys.mean_quorum_size() < 20.0);
    }

    #[test]
    fn representatives_spread_by_offset() {
        let sys = wall_system(&[2, 2]).unwrap();
        // Sites 0 and 1 (top row) pick different bottom representatives.
        let q0 = sys.quorum_of(SiteId(0));
        let q1 = sys.quorum_of(SiteId(1));
        assert!(q0.contains(&SiteId(2)));
        assert!(q1.contains(&SiteId(3)));
    }
}
