//! Wheel coteries (Marcus–Agrawala style hub-and-spokes).
//!
//! One site is the **hub**; the rest are **spokes**. The coterie is
//!
//! * `{hub, sᵢ}` for every spoke `sᵢ` (size 2!), plus
//! * the **rim** `{s₁, …, s_{N−1}}` (all spokes, used when the hub is
//!   down).
//!
//! Intersection: two hub quorums share the hub; a hub quorum and the rim
//! share the spoke. The wheel has the *smallest possible* quorum size for
//! `N > 3` but concentrates every CS round on the hub — the extreme
//! opposite of the symmetric grid/FPP designs, worth having in the
//! comparison suite for exactly that reason.

use crate::coterie::QuorumSystem;
use qmx_core::SiteId;

/// Builds the wheel quorum system over `n` sites with site 0 as the hub.
/// Spoke `i` uses `{hub, i}`; the hub itself uses `{hub, 1}` (any single
/// spoke suffices). For `n == 1` the singleton coterie is returned.
///
/// ```
/// use qmx_quorum::wheel::wheel_system;
/// let sys = wheel_system(50);
/// assert_eq!(sys.max_quorum_size(), 2); // the minimum possible for N > 3
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn wheel_system(n: usize) -> QuorumSystem {
    assert!(n > 0, "need at least one site");
    if n == 1 {
        return QuorumSystem::new(1, vec![vec![SiteId(0)]]);
    }
    let hub = SiteId(0);
    let quorums = (0..n)
        .map(|s| {
            if s == 0 {
                vec![hub, SiteId(1)]
            } else {
                vec![hub, SiteId(s as u32)]
            }
        })
        .collect();
    QuorumSystem::new(n, quorums)
}

/// The rim quorum (all spokes): the fallback when the hub fails. Not part
/// of the per-site assignment (the assignment stays at size 2) but usable
/// through the §6 reconstruction hook.
pub fn rim(n: usize) -> Vec<SiteId> {
    (1..n).map(|s| SiteId(s as u32)).collect()
}

/// A [`qmx_core::QuorumSource`] that hands out hub quorums while the hub
/// is alive and the rim after the hub fails (minus any dead spokes it can
/// do nothing about: the rim requires *all* spokes).
#[derive(Debug, Clone)]
pub struct WheelQuorumSource {
    n: usize,
}

impl WheelQuorumSource {
    /// Creates a source over `n ≥ 2` sites (site 0 is the hub).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a wheel needs a hub and at least one spoke");
        WheelQuorumSource { n }
    }
}

impl qmx_core::QuorumSource for WheelQuorumSource {
    fn quorum_avoiding(
        &mut self,
        site: SiteId,
        down: &std::collections::BTreeSet<SiteId>,
    ) -> Option<Vec<SiteId>> {
        let hub = SiteId(0);
        if !down.contains(&hub) {
            // Prefer {hub, self}; the hub pairs with the first live spoke.
            let spoke = if site != hub && !down.contains(&site) {
                site
            } else {
                (1..self.n as u32).map(SiteId).find(|s| !down.contains(s))?
            };
            Some(if spoke == hub {
                vec![hub]
            } else {
                let mut q = vec![hub, spoke];
                q.sort_unstable();
                q
            })
        } else {
            // Hub down: the rim, which requires every spoke alive.
            let r = rim(self.n);
            r.iter().all(|s| !down.contains(s)).then_some(r)
        }
    }

    fn box_clone(&self) -> Box<dyn qmx_core::QuorumSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmx_core::QuorumSource;
    use std::collections::BTreeSet;

    #[test]
    fn wheel_is_a_valid_coterie() {
        for n in [1usize, 2, 5, 9, 33] {
            let sys = wheel_system(n);
            assert!(sys.verify_intersection().is_ok(), "n={n}");
        }
    }

    #[test]
    fn quorum_size_is_two() {
        let sys = wheel_system(10);
        assert_eq!(sys.max_quorum_size(), 2);
        assert_eq!(sys.mean_quorum_size(), 2.0);
    }

    #[test]
    fn rim_intersects_every_hub_quorum() {
        let n = 7;
        let sys = wheel_system(n);
        let r = rim(n);
        for s in 0..n {
            let q = sys.quorum_of(SiteId(s as u32));
            assert!(q.iter().any(|m| r.contains(m)), "site {s}");
        }
    }

    #[test]
    fn source_switches_to_rim_when_hub_dies() {
        let mut src = WheelQuorumSource::new(5);
        let none = BTreeSet::new();
        assert_eq!(
            src.quorum_avoiding(SiteId(3), &none),
            Some(vec![SiteId(0), SiteId(3)])
        );
        let mut down = BTreeSet::new();
        down.insert(SiteId(0));
        assert_eq!(
            src.quorum_avoiding(SiteId(3), &down),
            Some(vec![SiteId(1), SiteId(2), SiteId(3), SiteId(4)])
        );
        // Hub AND a spoke down: no rim either.
        down.insert(SiteId(2));
        assert_eq!(src.quorum_avoiding(SiteId(3), &down), None);
    }

    #[test]
    fn source_avoids_dead_spokes_while_hub_lives() {
        let mut src = WheelQuorumSource::new(4);
        let mut down = BTreeSet::new();
        down.insert(SiteId(2));
        // Site 2 itself is dead; a live requester still pairs with the hub.
        assert_eq!(
            src.quorum_avoiding(SiteId(1), &down),
            Some(vec![SiteId(0), SiteId(1)])
        );
        // The dead site's "own" quorum would substitute another spoke.
        assert_eq!(
            src.quorum_avoiding(SiteId(2), &down),
            Some(vec![SiteId(0), SiteId(1)])
        );
    }
}
