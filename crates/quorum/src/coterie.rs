//! Quorum systems and coterie-property verification.

use qmx_core::SiteId;
use std::collections::BTreeSet;
use std::fmt;

/// A per-site quorum assignment over sites `0..n`.
///
/// Site `i`'s quorum (`req_set(i)` in the paper) is `quorums[i]`. Distinct
/// sites may share a quorum (the set of *distinct* quorums is the coterie).
/// Every quorum is stored sorted and duplicate-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumSystem {
    n: usize,
    quorums: Vec<Vec<SiteId>>,
}

/// Violation found by [`QuorumSystem::verify_intersection`] /
/// [`QuorumSystem::verify_minimality`]: the two offending site indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertyViolation {
    /// First offending site.
    pub a: SiteId,
    /// Second offending site.
    pub b: SiteId,
}

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quorums of {} and {} violate the property",
            self.a, self.b
        )
    }
}

impl std::error::Error for PropertyViolation {}

impl QuorumSystem {
    /// Builds a system from one quorum per site.
    ///
    /// # Panics
    ///
    /// Panics if any quorum is empty or references a site `>= n`.
    pub fn new(n: usize, mut quorums: Vec<Vec<SiteId>>) -> Self {
        assert_eq!(quorums.len(), n, "one quorum per site");
        for q in &mut quorums {
            q.sort_unstable();
            q.dedup();
            assert!(!q.is_empty(), "quorum must be non-empty");
            assert!(
                q.iter().all(|s| s.index() < n),
                "quorum references site outside universe"
            );
        }
        QuorumSystem { n, quorums }
    }

    /// Number of sites in the universe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The quorum assigned to `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the universe.
    pub fn quorum_of(&self, site: SiteId) -> &[SiteId] {
        &self.quorums[site.index()]
    }

    /// All per-site quorums, indexed by site.
    pub fn quorums(&self) -> &[Vec<SiteId>] {
        &self.quorums
    }

    /// Owned per-site quorums (for handing to protocol constructors).
    pub fn to_vec(&self) -> Vec<Vec<SiteId>> {
        self.quorums.clone()
    }

    /// The distinct quorums (the coterie itself).
    pub fn distinct_quorums(&self) -> Vec<Vec<SiteId>> {
        let set: BTreeSet<Vec<SiteId>> = self.quorums.iter().cloned().collect();
        set.into_iter().collect()
    }

    /// Average quorum size `K` across sites.
    pub fn mean_quorum_size(&self) -> f64 {
        let total: usize = self.quorums.iter().map(Vec::len).sum();
        total as f64 / self.n as f64
    }

    /// Largest quorum size.
    pub fn max_quorum_size(&self) -> usize {
        self.quorums.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Fraction of sites whose quorum contains themselves.
    pub fn self_inclusion_rate(&self) -> f64 {
        let hits = self
            .quorums
            .iter()
            .enumerate()
            .filter(|(i, q)| q.contains(&SiteId(*i as u32)))
            .count();
        hits as f64 / self.n as f64
    }

    /// Checks the Intersection Property: every pair of quorums shares a
    /// site. Returns the first violating pair if any.
    ///
    /// Up to [`EXHAUSTIVE_MAX`] sites every `n·(n−1)/2` pair is tested.
    /// Beyond that an all-pairs scan is `O(n²·√n)` — minutes at `n = 10⁴`,
    /// which used to stall any CLI run that validated its quorum spec — so
    /// the check degrades to [`SAMPLED_PAIRS`] deterministically chosen
    /// pairs: `Ok` then means "no sampled pair violates", a spot-check, not
    /// a proof. Constructions carry proofs for all `n`; this guards against
    /// implementation bugs, which corrupt far more than one pair in
    /// practice and so are still caught with overwhelming probability.
    ///
    /// # Errors
    ///
    /// Returns a [`PropertyViolation`] naming two sites whose quorums are
    /// disjoint.
    pub fn verify_intersection(&self) -> Result<(), PropertyViolation> {
        let check = |i: usize, j: usize| -> Result<(), PropertyViolation> {
            if !intersects(&self.quorums[i], &self.quorums[j]) {
                return Err(PropertyViolation {
                    a: SiteId(i as u32),
                    b: SiteId(j as u32),
                });
            }
            Ok(())
        };
        if self.n <= EXHAUSTIVE_MAX {
            for i in 0..self.n {
                for j in (i + 1)..self.n {
                    check(i, j)?;
                }
            }
        } else {
            for (i, j) in sampled_pairs(self.n, SAMPLED_PAIRS) {
                check(i, j)?;
            }
        }
        Ok(())
    }

    /// Checks the Minimality Property over the *distinct* quorums: no quorum
    /// strictly contains another. (Not required for correctness — §2 — but
    /// reported for efficiency analysis.)
    ///
    /// Samples above [`EXHAUSTIVE_MAX`] sites exactly like
    /// [`verify_intersection`](QuorumSystem::verify_intersection); both
    /// orders of each sampled pair are tested.
    ///
    /// # Errors
    ///
    /// Returns a [`PropertyViolation`] naming sites whose quorums are in a
    /// strict superset relation.
    pub fn verify_minimality(&self) -> Result<(), PropertyViolation> {
        let check = |i: usize, j: usize| -> Result<(), PropertyViolation> {
            let (a, b) = (&self.quorums[i], &self.quorums[j]);
            if a.len() < b.len() && is_subset(a, b) {
                return Err(PropertyViolation {
                    a: SiteId(i as u32),
                    b: SiteId(j as u32),
                });
            }
            Ok(())
        };
        if self.n <= EXHAUSTIVE_MAX {
            for i in 0..self.n {
                for j in 0..self.n {
                    if i != j {
                        check(i, j)?;
                    }
                }
            }
        } else {
            for (i, j) in sampled_pairs(self.n, SAMPLED_PAIRS) {
                check(i, j)?;
                check(j, i)?;
            }
        }
        Ok(())
    }
}

/// Largest site count for which the `verify_*` checks test every pair.
pub const EXHAUSTIVE_MAX: usize = 2048;

/// Number of site pairs the `verify_*` checks sample beyond
/// [`EXHAUSTIVE_MAX`].
pub const SAMPLED_PAIRS: usize = 100_000;

/// `count` deterministic pseudo-random pairs `(i, j)` with `i < j < n`
/// (fixed-seed LCG: verification results are reproducible run to run).
fn sampled_pairs(n: usize, count: usize) -> impl Iterator<Item = (usize, usize)> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % bound as u64) as usize
    };
    (0..count).map(move |_| loop {
        let (i, j) = (next(n), next(n));
        if i != j {
            break (i.min(j), i.max(j));
        }
    })
}

/// Whether two sorted site lists share an element.
pub(crate) fn intersects(a: &[SiteId], b: &[SiteId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Whether sorted `a` ⊆ sorted `b`.
pub(crate) fn is_subset(a: &[SiteId], b: &[SiteId]) -> bool {
    let mut j = 0;
    'outer: for x in a {
        while j < b.len() {
            match b[j].cmp(x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u32]) -> Vec<SiteId> {
        ids.iter().map(|&i| SiteId(i)).collect()
    }

    #[test]
    fn valid_coterie_passes_both_checks() {
        // C = {{a,b},{b,c}} from §2 of the paper (a=0, b=1, c=2); site 2
        // reuses {b,c}.
        let sys = QuorumSystem::new(3, vec![s(&[0, 1]), s(&[1, 2]), s(&[1, 2])]);
        assert!(sys.verify_intersection().is_ok());
        assert!(sys.verify_minimality().is_ok());
        assert_eq!(sys.distinct_quorums().len(), 2);
    }

    #[test]
    fn disjoint_quorums_fail_intersection() {
        let sys = QuorumSystem::new(4, vec![s(&[0, 1]), s(&[2, 3]), s(&[0, 1]), s(&[2, 3])]);
        let v = sys.verify_intersection().unwrap_err();
        assert_eq!((v.a, v.b), (SiteId(0), SiteId(1)));
        assert!(v.to_string().contains("S0"));
    }

    #[test]
    fn superset_quorum_fails_minimality() {
        let sys = QuorumSystem::new(3, vec![s(&[0, 1, 2]), s(&[0, 1]), s(&[0, 1, 2])]);
        assert!(sys.verify_intersection().is_ok());
        assert!(sys.verify_minimality().is_err());
    }

    #[test]
    fn stats_are_computed() {
        let sys = QuorumSystem::new(2, vec![s(&[0, 1]), s(&[0])]);
        assert_eq!(sys.n(), 2);
        assert_eq!(sys.mean_quorum_size(), 1.5);
        assert_eq!(sys.max_quorum_size(), 2);
        // Site 0's quorum contains itself; site 1's ([0]) does not.
        assert_eq!(sys.self_inclusion_rate(), 0.5);
        assert_eq!(sys.quorum_of(SiteId(1)), &[SiteId(0)]);
    }

    #[test]
    fn quorums_are_sorted_and_deduped() {
        let sys = QuorumSystem::new(3, vec![s(&[2, 0, 2]), s(&[1]), s(&[0, 2])]);
        assert_eq!(sys.quorum_of(SiteId(0)), &[SiteId(0), SiteId(2)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_quorum_panics() {
        let _ = QuorumSystem::new(1, vec![vec![]]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_panics() {
        let _ = QuorumSystem::new(1, vec![s(&[1])]);
    }

    #[test]
    fn sampled_verification_is_fast_and_catches_planted_violations() {
        // Above EXHAUSTIVE_MAX the checks sample; a healthy large system
        // passes quickly (all-pairs would be ~10⁷ pair tests here).
        let n = EXHAUSTIVE_MAX + 1000;
        let majority: Vec<SiteId> = (0..n / 2 + 1).map(|i| SiteId(i as u32)).collect();
        let healthy = QuorumSystem::new(n, vec![majority; n]);
        assert!(healthy.verify_intersection().is_ok());
        assert!(healthy.verify_minimality().is_ok());

        // Gross violations (the realistic failure mode of a buggy
        // construction) land in the sample with overwhelming probability:
        // here the two halves of the universe get disjoint quorums.
        let broken = QuorumSystem::new(
            n,
            (0..n)
                .map(|i| vec![SiteId(if i < n / 2 { 0 } else { 1 })])
                .collect(),
        );
        assert!(broken.verify_intersection().is_err());

        // Minimality: half the sites use a strict subset of the others'.
        let nonminimal = QuorumSystem::new(
            n,
            (0..n)
                .map(|i| {
                    if i < n / 2 {
                        vec![SiteId(0)]
                    } else {
                        vec![SiteId(0), SiteId(1)]
                    }
                })
                .collect(),
        );
        assert!(nonminimal.verify_minimality().is_err());
    }

    #[test]
    fn sampled_pairs_are_deterministic_and_in_range() {
        let a: Vec<(usize, usize)> = sampled_pairs(5000, 100).collect();
        let b: Vec<(usize, usize)> = sampled_pairs(5000, 100).collect();
        assert_eq!(a, b, "same seed, same pairs");
        assert!(a.iter().all(|&(i, j)| i < j && j < 5000));
    }

    #[test]
    fn helpers() {
        assert!(intersects(&s(&[1, 3, 5]), &s(&[0, 2, 3])));
        assert!(!intersects(&s(&[1, 3]), &s(&[0, 2])));
        assert!(is_subset(&s(&[1, 3]), &s(&[0, 1, 2, 3])));
        assert!(!is_subset(&s(&[1, 4]), &s(&[0, 1, 2, 3])));
        assert!(is_subset(&s(&[]), &s(&[0])));
    }
}
