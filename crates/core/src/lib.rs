//! # qmx-core
//!
//! Core library for the **delay-optimal quorum-based mutual exclusion**
//! algorithm of Cao, Singhal, Deng, Rishe and Sun (ICDCS 1998), together with
//! the protocol abstractions shared by every algorithm in the `qmx` workspace.
//!
//! A distributed mutual-exclusion algorithm coordinates `N` sites so that at
//! most one executes its critical section (CS) at a time. Two costs matter:
//!
//! * **message complexity** — wire messages exchanged per CS execution, and
//! * **synchronization delay** — the time between one site leaving the CS and
//!   the next entering it, measured in units of the average message delay `T`.
//!
//! Maekawa-type quorum algorithms achieve `O(K)` messages (`K` = quorum size,
//! as low as `log N`) but pay a `2T` synchronization delay: the exiting site
//! must `release` its arbiters, which then `reply` to the next requester — two
//! serial hops. The algorithm implemented in [`DelayOptimal`] removes one hop:
//! arbiters send `transfer` messages to the current lock holder naming the
//! next requester, and the holder forwards the arbiter's `reply` *directly* to
//! that requester when it exits the CS. Synchronization delay drops to the
//! optimal `T` while message complexity stays `3(K-1)` at light load and
//! `5(K-1)`–`6(K-1)` at heavy load.
//!
//! ## Crate layout
//!
//! * [`SiteId`], [`Timestamp`], [`LamportClock`] — identifiers and logical
//!   time ([`clock`]).
//! * [`Protocol`], [`Effects`], [`MsgKind`] — the event-driven state-machine
//!   interface every algorithm implements; drivers (the discrete-event
//!   simulator in `qmx-sim`, the threaded runtime in `qmx-runtime`) are
//!   generic over it ([`protocol`]).
//! * [`DelayOptimal`], [`Msg`], [`Config`] — the paper's algorithm
//!   ([`delay_optimal`]).
//! * [`ReqQueue`] — the priority queue of pending requests used by arbiters
//!   ([`reqqueue`]).
//! * [`QuorumSource`] — the interface through which fault-tolerant quorum
//!   reconstruction is plugged in (implemented by `qmx-quorum`).
//! * [`Reliable`], [`LossModel`] — the ack/retransmit/dedup transport layer
//!   that restores the paper's error-free-channel assumption over lossy
//!   links, and the fault models used to inject loss ([`transport`]).
//! * [`Detector`], [`DetectorConfig`] — the heartbeat failure detector and
//!   crash-recovery/rejoin layer that replaces the paper's `failure(i)`
//!   oracle with timeout-driven (possibly false) suspicion ([`detector`]).
//!
//! ## Quickstart
//!
//! Drive two sites by hand (real deployments use `qmx-sim` or `qmx-runtime`):
//!
//! ```
//! use qmx_core::{DelayOptimal, Config, Protocol, Effects, SiteId};
//!
//! // Site 0 and site 1 share the (trivial) quorum {0, 1}.
//! let quorum = vec![SiteId(0), SiteId(1)];
//! let mut s0 = DelayOptimal::new(SiteId(0), quorum.clone(), Config::default());
//! let mut s1 = DelayOptimal::new(SiteId(1), quorum, Config::default());
//!
//! let mut fx = Effects::new();
//! s0.request_cs(&mut fx);
//! // s0 granted itself locally and sent a request to site 1.
//! let (to, msg) = fx.take_sends().pop().expect("one wire message");
//! assert_eq!(to, SiteId(1));
//!
//! let mut fx1 = Effects::new();
//! s1.handle(SiteId(0), msg, &mut fx1);
//! let (back_to, reply) = fx1.take_sends().pop().expect("reply");
//! assert_eq!(back_to, SiteId(0));
//!
//! let mut fx0 = Effects::new();
//! s0.handle(SiteId(1), reply, &mut fx0);
//! assert!(fx0.entered_cs());
//! assert!(s0.in_cs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod delay_optimal;
pub mod detector;
pub mod lockspace;
pub mod protocol;
pub mod reqqueue;
pub mod siteset;
pub mod transport;
pub mod wire;

pub use clock::{LamportClock, SeqNum, Timestamp};
pub use delay_optimal::{Config, DelayOptimal, Msg, RequesterPhase};
pub use detector::{Detector, DetectorConfig, DetectorCounters, HbMsg};
pub use lockspace::{LockSpace, ResMsg, ShardFactory};
pub use protocol::{
    AbortCounters, Effects, MsgKind, MsgMeta, Protocol, QuorumSource, ResourceId, SiteId,
};
pub use reqqueue::ReqQueue;
pub use siteset::SiteSet;
pub use transport::{
    FaultVerdict, LinkFaults, LossModel, Outage, Packet, Reliable, TransportConfig,
    TransportCounters,
};
pub use wire::{Wire, WireError};
