//! Logical time: sequence numbers, request timestamps, and Lamport clocks.
//!
//! Every CS request carries a [`Timestamp`] `(seq, site)` assigned per
//! Lamport's scheme: the sequence number is greater than that of any request
//! message sent, received, or observed at the issuing site. Priority between
//! two requests is total: smaller sequence number wins, ties broken by the
//! smaller site number. This is the priority order used by arbiter queues in
//! every quorum-based algorithm in the workspace, and it is what makes
//! starvation impossible (Theorem 3 of the paper): a waiting request
//! eventually has the globally smallest timestamp.

use crate::protocol::SiteId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Lamport sequence number.
///
/// Wrapped in a newtype so that sequence numbers cannot be confused with
/// site identifiers or simulation ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SeqNum(pub u64);

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for SeqNum {
    fn from(v: u64) -> Self {
        SeqNum(v)
    }
}

/// The timestamp `(seq, site)` of a CS request.
///
/// The derived lexicographic order **is** the request priority order of the
/// paper: `a < b` means `a` has *higher* priority than `b` (smaller sequence
/// number first, then smaller site number).
///
/// ```
/// use qmx_core::{SiteId, Timestamp};
/// let a = Timestamp::new(3, SiteId(7));
/// let b = Timestamp::new(4, SiteId(1));
/// let c = Timestamp::new(3, SiteId(9));
/// assert!(a < b); // smaller seq wins regardless of site number
/// assert!(a < c); // equal seq: smaller site number wins
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp {
    /// Lamport sequence number of the request.
    pub seq: SeqNum,
    /// Issuing site.
    pub site: SiteId,
}

impl Timestamp {
    /// Creates a timestamp from a raw sequence number and site.
    pub fn new(seq: u64, site: SiteId) -> Self {
        Timestamp {
            seq: SeqNum(seq),
            site,
        }
    }

    /// Returns `true` if `self` has strictly higher priority than `other`.
    ///
    /// Purely a readability alias for `self < other`.
    pub fn beats(&self, other: &Timestamp) -> bool {
        self < other
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.seq, self.site)
    }
}

/// A Lamport logical clock.
///
/// Maintains the largest sequence number seen so far; [`LamportClock::tick`]
/// issues the next request's sequence number, and [`LamportClock::observe`]
/// folds in sequence numbers carried by incoming messages.
///
/// ```
/// use qmx_core::{LamportClock, SeqNum};
/// let mut clock = LamportClock::new();
/// assert_eq!(clock.tick(), SeqNum(1));
/// clock.observe(SeqNum(10));
/// assert_eq!(clock.tick(), SeqNum(11));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportClock {
    last: u64,
}

impl LamportClock {
    /// Creates a clock that has observed nothing (next tick is `1`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current value (largest sequence number seen or issued).
    pub fn current(&self) -> SeqNum {
        SeqNum(self.last)
    }

    /// Advances the clock and returns a sequence number strictly greater
    /// than everything seen or issued so far.
    pub fn tick(&mut self) -> SeqNum {
        self.last += 1;
        SeqNum(self.last)
    }

    /// Observes a sequence number from an incoming message, advancing the
    /// clock if it is ahead.
    pub fn observe(&mut self, seen: SeqNum) {
        if seen.0 > self.last {
            self.last = seen.0;
        }
    }

    /// Observes the sequence number of a full timestamp.
    pub fn observe_ts(&mut self, ts: Timestamp) {
        self.observe(ts.seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_is_seq_then_site() {
        let lo = Timestamp::new(1, SiteId(5));
        let hi = Timestamp::new(2, SiteId(0));
        assert!(lo < hi);
        assert!(lo.beats(&hi));
        assert!(!hi.beats(&lo));
        // Tie on seq: site breaks it.
        let a = Timestamp::new(2, SiteId(0));
        let b = Timestamp::new(2, SiteId(1));
        assert!(a < b);
    }

    #[test]
    fn timestamps_are_totally_ordered() {
        let mut all = [
            Timestamp::new(3, SiteId(1)),
            Timestamp::new(1, SiteId(2)),
            Timestamp::new(3, SiteId(0)),
            Timestamp::new(2, SiteId(9)),
        ];
        all.sort();
        let seqs: Vec<u64> = all.iter().map(|t| t.seq.0).collect();
        assert_eq!(seqs, vec![1, 2, 3, 3]);
        assert_eq!(all[2].site, SiteId(0));
        assert_eq!(all[3].site, SiteId(1));
    }

    #[test]
    fn clock_ticks_monotonically() {
        let mut c = LamportClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(a < b);
        assert_eq!(c.current(), b);
    }

    #[test]
    fn clock_observe_jumps_forward_only() {
        let mut c = LamportClock::new();
        c.observe(SeqNum(42));
        assert_eq!(c.current(), SeqNum(42));
        c.observe(SeqNum(7)); // stale observation: no effect
        assert_eq!(c.current(), SeqNum(42));
        assert_eq!(c.tick(), SeqNum(43));
    }

    #[test]
    fn observe_ts_uses_seq_component() {
        let mut c = LamportClock::new();
        c.observe_ts(Timestamp::new(9, SiteId(3)));
        assert_eq!(c.tick(), SeqNum(10));
    }

    #[test]
    fn display_formats() {
        let t = Timestamp::new(4, SiteId(2));
        assert_eq!(t.to_string(), "(4,S2)");
        assert_eq!(SeqNum(4).to_string(), "4");
    }
}
