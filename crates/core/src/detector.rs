//! Heartbeat failure detection and crash-recovery for any [`Protocol`].
//!
//! The paper's §6 assumes an oracle: when site `i` fails, a `failure(i)`
//! notice simply *arrives* at every live site. [`Detector`] replaces that
//! oracle with an unreliable, timeout-driven failure detector in the style
//! of Chandra–Toueg: every site periodically sends a heartbeat to every
//! peer, and a peer not heard from within a timeout becomes *suspected*.
//! Unlike the oracle's notice, a suspicion can be **wrong** — a partition
//! or a burst of message loss silences a perfectly live peer — so the
//! detector splits the paper's single `failure(i)` event in two:
//!
//! * [`Protocol::on_site_suspected`] fires at `hb_timeout` and is
//!   *revocable*: the wrapped protocol may route around the suspect
//!   (withdraw requests, reconstruct quorums on the requester side) but
//!   must not reclaim anything the suspect may hold — the suspect could
//!   be alive inside the CS.
//! * [`Protocol::on_site_failure`] fires only after a further
//!   `fail_confirm` of silence and is *definitive*: it runs the full §6
//!   cleanup, including reclaiming and re-granting locks the dead site
//!   held.
//!
//! When a suspected peer is heard from again the detector *restores* it via
//! [`Protocol::on_site_restored`], and the wrapped protocol must reintegrate
//! it without ever violating mutual exclusion.
//!
//! Asymmetric (one-way) partitions get first-class treatment: every beat
//! carries a *suspicion echo* (does the sender suspect the recipient?) and
//! a *vouch list* (peers the sender hears directly). A persistent echo
//! from a peer we hear fine proves our outbound link is dead and yields a
//! **reciprocal suspicion** — the peer is routed around even though it is
//! audible — while third-party vouches defer the definitive `fail_confirm`
//! escalation for a suspect that is silent toward us but audibly alive
//! elsewhere (reclaiming a live site's locks would break mutual
//! exclusion).
//!
//! Crash *recovery* is the second half: a site restarted after a crash has
//! lost all protocol state. Its detector announces the restart with a
//! `Rejoin` message ([`Protocol::on_recover`] broadcasts it) and opens a
//! grace window during which the wrapped protocol can rebuild state from
//! peers' answers before resuming normal operation
//! ([`Protocol::on_rejoin_complete`] closes the window). Peers receiving
//! the `Rejoin` reset any per-peer connection state and answer with their
//! view ([`Protocol::on_peer_rejoined`]).
//!
//! Layering: the detector is the *outermost* wrapper —
//! `Detector<Reliable<DelayOptimal>>` — so heartbeats ride the raw channel
//! (they are periodic and idempotent; retransmitting them would defeat
//! their purpose), while every delivered message, heartbeat or not, counts
//! as evidence the sender is alive.

use crate::protocol::{Effects, MsgKind, MsgMeta, Protocol, ResourceId, SiteId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Failure-detector timing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Gap between heartbeat rounds (each round beats every peer).
    pub hb_interval: u64,
    /// Silence threshold: a peer not heard from for this long is suspected.
    /// Must exceed `hb_interval` plus worst-case delivery delay, or every
    /// peer is falsely suspected at steady state. Request deadlines
    /// ([`Protocol::set_deadline`]) interact with this knob: a deadline
    /// below `hb_timeout` makes the client abort before the detector can
    /// even suspect the unreachable arbiter and re-route the quorum, so a
    /// deadline meant as a *last resort* (rather than a latency SLO with a
    /// retry loop on top) should comfortably exceed `hb_timeout`.
    pub hb_timeout: u64,
    /// Length of the rejoin grace window a recovered site keeps open for
    /// peers' answers before resuming full operation. The window is
    /// re-armed for another `rejoin_wait` whenever it elapses while the
    /// wrapped protocol still reports [`Protocol::rejoin_pending`] — the
    /// grace period cannot close on a fixed timeout while a peer's resync
    /// answer is outstanding.
    pub rejoin_wait: u64,
    /// Additional silence, beyond the suspicion at `hb_timeout`, after
    /// which a suspected peer's failure is *confirmed*: the wrapped
    /// protocol then receives the definitive
    /// [`Protocol::on_site_failure`] (which may reclaim locks the dead
    /// site held) rather than the revocable
    /// [`Protocol::on_site_suspected`]. This is the detector's *lease*:
    /// confirmation is only sound if a live site can never be silenced —
    /// by partition, loss, or scheduling — for `hb_timeout +
    /// fail_confirm` while holding the CS. Size it well above the longest
    /// plausible partition; a confirmation that later proves wrong is
    /// still *handled* (the site is restored on its next message) but can
    /// no longer guarantee mutual exclusion in the interim, exactly like
    /// the paper's §6 oracle model under an imperfect oracle.
    pub fail_confirm: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // Defaults sized for the simulator's T = 1000 ticks: beat every 2T,
        // suspect after 3 missed rounds + slack, confirm the failure after
        // a further 32T of silence.
        DetectorConfig {
            hb_interval: 2_000,
            hb_timeout: 8_000,
            rejoin_wait: 4_000,
            fail_confirm: 32_000,
        }
    }
}

/// Failure-detector statistics, aggregated across sites by drivers
/// (mirrors [`TransportCounters`](crate::transport::TransportCounters)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorCounters {
    /// Heartbeat messages sent.
    pub heartbeats_sent: u64,
    /// Peers suspected after heartbeat silence.
    pub suspicions: u64,
    /// Suspicions proven wrong: the suspect was heard from again without a
    /// rejoin (it had never crashed).
    pub false_suspicions: u64,
    /// Rejoin announcements sent by this site after recovering.
    pub rejoins_sent: u64,
    /// Rejoin announcements received from recovered peers.
    pub rejoins_observed: u64,
    /// Suspicions escalated to confirmed failures after `fail_confirm`
    /// further silence (each fed the inner protocol's definitive
    /// `on_site_failure`).
    pub failures_confirmed: u64,
    /// Suspicion echoes received: a peer we can hear told us it cannot
    /// hear *us* — the signature of an asymmetric (one-way) partition.
    pub asymmetric_suspicions: u64,
    /// Failure confirmations deferred because a mutually-reachable peer
    /// recently vouched for the suspect (view reconciliation: one-way
    /// silence must not escalate to the definitive §6 reclamation while
    /// indirect liveness evidence exists).
    pub confirms_deferred: u64,
    /// Out-of-schedule beats sent in immediate reply to a suspicion echo
    /// (recovers loss-induced silence without waiting a full interval).
    pub echo_beats: u64,
    /// Peers suspected *reciprocally*: a peer we hear fine kept echoing
    /// that it cannot hear us for a full `hb_timeout` (despite our
    /// echo-reply beats), so the outbound link is treated as dead and the
    /// peer as unusable — without this, a requester on the live side of a
    /// one-way cut keeps the unreachable peer in its quorum forever. A
    /// reciprocal suspicion is withdrawn when the peer's echo clears, and
    /// never escalates to a confirmed failure while the peer stays
    /// audible (direct hearing is definitive liveness evidence).
    pub reciprocal_suspicions: u64,
}

impl DetectorCounters {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &DetectorCounters) {
        self.heartbeats_sent += other.heartbeats_sent;
        self.suspicions += other.suspicions;
        self.false_suspicions += other.false_suspicions;
        self.rejoins_sent += other.rejoins_sent;
        self.rejoins_observed += other.rejoins_observed;
        self.failures_confirmed += other.failures_confirmed;
        self.asymmetric_suspicions += other.asymmetric_suspicions;
        self.confirms_deferred += other.confirms_deferred;
        self.echo_beats += other.echo_beats;
        self.reciprocal_suspicions += other.reciprocal_suspicions;
    }
}

/// Wire envelope of a [`Detector`]: heartbeats, rejoin announcements, or
/// the wrapped protocol's own messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbMsg<M> {
    /// Periodic liveness beacon, carrying the sender's reconciled view of
    /// the network so one-way silence is detectable by both sides.
    Beat {
        /// Peers the sender has heard from **directly** within its own
        /// `hb_timeout` — gossip-style vouching. A receiver defers
        /// escalating a suspicion to a confirmed failure while anyone it
        /// can hear keeps vouching for the suspect: under an asymmetric
        /// cut the suspect is silent toward *us* but audibly alive to
        /// others, and reclaiming its locks would break mutual exclusion.
        /// Only direct evidence is forwarded (no transitive chains), so
        /// vouches for a genuinely crashed site dry up within one timeout.
        alive: Vec<SiteId>,
        /// Suspicion echo: whether the sender currently suspects the
        /// *recipient*. A site that receives `true` from a peer it hears
        /// fine has detected an asymmetric partition (the peer cannot
        /// hear it) and answers with an immediate out-of-schedule beat —
        /// if the silence was loss rather than a cut, that ends the false
        /// suspicion a full interval early.
        suspects_you: bool,
    },
    /// "I crashed and restarted with fresh state" announcement. The
    /// `incarnation` is the sender's boot counter (see
    /// [`Protocol::set_incarnation`]): receivers use it to deduplicate
    /// re-broadcast announcements of the *same* restart (processing a
    /// duplicate would wrongly re-purge per-peer state accumulated since)
    /// and to fence transport-level stragglers from earlier incarnations.
    Rejoin {
        /// Sender's boot counter; `0` when the driver tracks none, in
        /// which case receivers process every announcement (legacy
        /// behaviour, safe only without duplicating fault injection).
        incarnation: u64,
    },
    /// A wrapped-protocol message.
    App(M),
}

impl<M: MsgMeta> MsgMeta for HbMsg<M> {
    fn kind(&self) -> MsgKind {
        match self {
            HbMsg::Beat { .. } | HbMsg::Rejoin { .. } => MsgKind::Info,
            HbMsg::App(m) => m.kind(),
        }
    }
}

/// Heartbeat failure detector layered over an inner [`Protocol`].
///
/// See the [module documentation](self) for semantics. `peers` is the set
/// of sites monitored and beaten — normally every other site in the system,
/// independent of the inner protocol's quorum (quorums may be
/// reconstructed, but liveness monitoring is global).
#[derive(Clone)]
pub struct Detector<P: Protocol> {
    inner: P,
    cfg: DetectorConfig,
    peers: Vec<SiteId>,
    now: u64,
    /// Time of the next heartbeat round.
    next_beat: u64,
    /// Last time each peer was heard from (any delivered message counts).
    last_heard: BTreeMap<SiteId, u64>,
    /// Currently suspected peers.
    suspected: BTreeSet<SiteId>,
    /// Deadline after which a still-silent suspect's failure is confirmed
    /// (escalated to the inner protocol's definitive `on_site_failure`).
    /// Entries exist only for suspected-but-unconfirmed peers.
    confirm_at: BTreeMap<SiteId, u64>,
    /// Last time each peer was vouched for by a third party's beat
    /// (indirect liveness evidence; gates confirmation, never suspicion).
    indirect_heard: BTreeMap<SiteId, u64>,
    /// Last time an out-of-schedule echo-reply beat was sent per peer
    /// (rate limit: at most one per `hb_interval`).
    last_echo: BTreeMap<SiteId, u64>,
    /// Peers suspected reciprocally (persistent suspicion echo — see
    /// [`DetectorCounters::reciprocal_suspicions`]). A member is heard
    /// from constantly, so its suspicion is withdrawn by the peer's echo
    /// clearing or a rejoin, never by mere hearing.
    reciprocal: BTreeSet<SiteId>,
    /// Start of the current uninterrupted run of suspicion echoes per
    /// peer; cleared by any beat whose echo flag is off.
    echoed_since: BTreeMap<SiteId, u64>,
    /// End of the post-recovery grace window, when open.
    rejoin_until: Option<u64>,
    /// This site's boot counter, stamped into outgoing `Rejoin`s.
    incarnation: u64,
    /// Highest rejoin incarnation processed per peer, for deduplicating
    /// re-broadcast announcements of the same restart.
    last_rejoin_inc: BTreeMap<SiteId, u64>,
    counters: DetectorCounters,
}

impl<P: Protocol> Detector<P> {
    /// Wraps `inner`, monitoring every site in `peers` (self is filtered
    /// out if present).
    pub fn new(mut inner: P, peers: Vec<SiteId>, cfg: DetectorConfig) -> Self {
        let me = inner.site();
        let peers: Vec<SiteId> = peers.into_iter().filter(|&p| p != me).collect();
        // The inner protocol must know the full membership so a crash
        // recovery can wait for a resync answer from *every* peer (the
        // answer-gated rejoin window) rather than only its current quorum.
        inner.set_peer_universe(&peers);
        let last_heard = peers.iter().map(|&p| (p, 0)).collect();
        Detector {
            inner,
            cfg,
            peers,
            now: 0,
            next_beat: 0,
            last_heard,
            suspected: BTreeSet::new(),
            confirm_at: BTreeMap::new(),
            indirect_heard: BTreeMap::new(),
            last_echo: BTreeMap::new(),
            reciprocal: BTreeSet::new(),
            echoed_since: BTreeMap::new(),
            rejoin_until: None,
            incarnation: 0,
            last_rejoin_inc: BTreeMap::new(),
            counters: DetectorCounters::default(),
        }
    }

    /// The wrapped protocol (assertions in tests).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Currently suspected peers.
    pub fn suspected(&self) -> &BTreeSet<SiteId> {
        &self.suspected
    }

    /// Whether this site is inside its post-recovery rejoin window.
    pub fn rejoining(&self) -> bool {
        self.rejoin_until.is_some()
    }

    /// This detector's own counters (un-aggregated).
    pub fn counters(&self) -> DetectorCounters {
        self.counters
    }

    /// Runs `f` against the inner protocol with a fresh inner effects
    /// buffer, then re-wraps the produced sends as [`HbMsg::App`].
    fn with_inner(
        &mut self,
        fx: &mut Effects<HbMsg<P::Msg>>,
        f: impl FnOnce(&mut P, &mut Effects<P::Msg>),
    ) {
        let mut inner_fx = Effects::new();
        f(&mut self.inner, &mut inner_fx);
        let (sends, entered) = inner_fx.drain();
        for (to, msg) in sends {
            fx.send(to, HbMsg::App(msg));
        }
        for rid in entered {
            fx.enter_cs_r(rid);
        }
    }

    /// Peers heard from **directly** within the suspicion timeout — the
    /// vouch list piggybacked on every outgoing beat.
    fn alive_set(&self) -> Vec<SiteId> {
        self.peers
            .iter()
            .copied()
            .filter(|p| {
                self.last_heard
                    .get(p)
                    .is_some_and(|&h| h + self.cfg.hb_timeout > self.now)
            })
            .collect()
    }

    /// Sends one heartbeat round to every peer, each beat carrying the
    /// sender's direct-liveness view and a per-recipient suspicion echo.
    fn beat_all(&mut self, fx: &mut Effects<HbMsg<P::Msg>>) {
        let alive = self.alive_set();
        for &p in &self.peers {
            fx.send(
                p,
                HbMsg::Beat {
                    alive: alive.clone(),
                    suspects_you: self.suspected.contains(&p),
                },
            );
            self.counters.heartbeats_sent += 1;
        }
    }

    /// Processes the reconciliation payload of a received beat: indirect
    /// vouches refresh the confirmation gate, and a suspicion echo (the
    /// sender cannot hear us) is answered with an immediate beat.
    fn note_view(
        &mut self,
        from: SiteId,
        alive: &[SiteId],
        suspects_you: bool,
        fx: &mut Effects<HbMsg<P::Msg>>,
    ) {
        let me = self.inner.site();
        for &b in alive {
            if b != me && b != from {
                let e = self.indirect_heard.entry(b).or_insert(0);
                *e = (*e).max(self.now);
            }
        }
        if suspects_you {
            // We hear `from` fine, yet it cannot hear us: asymmetric
            // silence. Reply out of schedule (rate-limited to one per
            // interval) — under plain loss this ends the false suspicion
            // without waiting for the next beat round; under a true
            // directed cut the reply dies on the link, which is fine.
            self.counters.asymmetric_suspicions += 1;
            let due = self
                .last_echo
                .get(&from)
                .map_or(0, |&t| t + self.cfg.hb_interval);
            if self.now >= due {
                self.last_echo.insert(from, self.now);
                self.counters.echo_beats += 1;
                let beat = HbMsg::Beat {
                    alive: self.alive_set(),
                    suspects_you: self.suspected.contains(&from),
                };
                fx.send(from, beat);
            }
            // An echo that *persists* for a full timeout — surviving the
            // echo replies above — means our outbound link to `from` is
            // really dead, not lossy: suspect it reciprocally so the
            // wrapped protocol routes around the peer it can hear but not
            // reach. No confirmation lease is armed: we hear the peer
            // directly, so it is definitively alive and reclaiming its
            // locks would be unsound.
            let since = *self.echoed_since.entry(from).or_insert(self.now);
            if !self.suspected.contains(&from) && self.now >= since + self.cfg.hb_timeout {
                self.suspected.insert(from);
                self.reciprocal.insert(from);
                self.counters.reciprocal_suspicions += 1;
                self.with_inner(fx, |p, ifx| p.on_site_suspected(from, ifx));
            }
        } else {
            self.echoed_since.remove(&from);
            if self.reciprocal.remove(&from) {
                // The peer hears us again: the one-way cut healed, so the
                // reciprocal suspicion is withdrawn.
                self.suspected.remove(&from);
                self.with_inner(fx, |p, ifx| p.on_site_restored(from, ifx));
            }
        }
    }

    /// Records liveness evidence from `from`; if `from` was suspected, the
    /// suspicion ends: restoration (false suspicion) or rejoin handling.
    /// `rejoin` carries the announcement's incarnation when the message
    /// was a [`HbMsg::Rejoin`].
    fn heard_from(&mut self, from: SiteId, rejoin: Option<u64>, fx: &mut Effects<HbMsg<P::Msg>>) {
        self.last_heard.insert(from, self.now);
        self.confirm_at.remove(&from);
        // A reciprocal suspect is heard from constantly — hearing it is
        // not news. Its suspicion ends when the peer's echo clears (see
        // `note_view`) or when it rejoins after a genuine restart.
        let was_suspected = !self.reciprocal.contains(&from) && self.suspected.remove(&from);
        if rejoin.is_some() {
            self.reciprocal.remove(&from);
            self.echoed_since.remove(&from);
            self.suspected.remove(&from);
        }
        if let Some(inc) = rejoin {
            // A rejoin window re-broadcasts the same announcement until
            // its resync answers arrive, and fault injection can
            // duplicate the raw channel outright. Processing a duplicate
            // would re-purge per-peer state accumulated *since* the
            // restart — a safety hazard — so each incarnation is handled
            // at most once. Incarnation 0 means the driver tracks no boot
            // counter; preserve the legacy process-every-announcement
            // behaviour for it.
            let dup = inc > 0 && self.last_rejoin_inc.get(&from).is_some_and(|&l| l >= inc);
            if !dup {
                self.last_rejoin_inc.insert(from, inc);
                self.counters.rejoins_observed += 1;
                self.with_inner(fx, |p, ifx| p.on_peer_rejoined(from, inc, ifx));
            }
        } else if was_suspected {
            self.counters.false_suspicions += 1;
            self.with_inner(fx, |p, ifx| p.on_site_restored(from, ifx));
        }
    }

    /// Earliest suspicion deadline over unsuspected peers.
    fn next_deadline(&self) -> Option<u64> {
        self.peers
            .iter()
            .filter(|p| !self.suspected.contains(p))
            .filter_map(|p| self.last_heard.get(p))
            .map(|&heard| heard + self.cfg.hb_timeout)
            .min()
    }
}

impl<P: Protocol> fmt::Debug for Detector<P>
where
    P: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Model-checker fingerprints hash this output: every
        // behaviour-relevant field must appear. `now` is included because
        // suspicion/confirmation deadlines and beat firing compare
        // against it — two states equal elsewhere but at different local
        // clocks behave differently.
        f.debug_struct("Detector")
            .field("inner", &self.inner)
            .field("now", &self.now)
            .field("next_beat", &self.next_beat)
            .field("last_heard", &self.last_heard)
            .field("suspected", &self.suspected)
            .field("confirm_at", &self.confirm_at)
            .field("indirect_heard", &self.indirect_heard)
            .field("last_echo", &self.last_echo)
            .field("reciprocal", &self.reciprocal)
            .field("echoed_since", &self.echoed_since)
            .field("rejoin_until", &self.rejoin_until)
            .field("incarnation", &self.incarnation)
            .field("last_rejoin_inc", &self.last_rejoin_inc)
            .finish()
    }
}

impl<P: Protocol> Protocol for Detector<P> {
    type Msg = HbMsg<P::Msg>;

    fn site(&self) -> SiteId {
        self.inner.site()
    }

    fn on_start(&mut self, fx: &mut Effects<Self::Msg>) {
        // Treat every peer as live as of now and open the beat schedule.
        // No immediate beat round: the first beats go out one interval
        // from now. This matters on crash-recovery, where drivers call
        // `on_start` and then `on_recover` — an immediate beat would race
        // ahead of the `Rejoin` announcement and make peers take the
        // false-suspicion *restore* path for a site that in fact lost all
        // its state.
        for &p in &self.peers {
            self.last_heard.insert(p, self.now);
        }
        self.next_beat = self.now + self.cfg.hb_interval;
        self.with_inner(fx, |p, ifx| p.on_start(ifx));
    }

    fn request_cs(&mut self, fx: &mut Effects<Self::Msg>) {
        self.with_inner(fx, |p, ifx| p.request_cs(ifx));
    }

    fn release_cs(&mut self, fx: &mut Effects<Self::Msg>) {
        self.with_inner(fx, |p, ifx| p.release_cs(ifx));
    }

    fn handle(&mut self, from: SiteId, msg: Self::Msg, fx: &mut Effects<Self::Msg>) {
        match msg {
            HbMsg::Beat {
                alive,
                suspects_you,
            } => {
                self.heard_from(from, None, fx);
                self.note_view(from, &alive, suspects_you, fx);
            }
            HbMsg::Rejoin { incarnation } => self.heard_from(from, Some(incarnation), fx),
            HbMsg::App(m) => {
                self.heard_from(from, None, fx);
                self.with_inner(fx, |p, ifx| p.handle(from, m, ifx));
            }
        }
    }

    fn in_cs(&self) -> bool {
        self.inner.in_cs()
    }

    fn wants_cs(&self) -> bool {
        self.inner.wants_cs()
    }

    fn abort_cs(&mut self, fx: &mut Effects<Self::Msg>) -> bool {
        let mut aborted = false;
        self.with_inner(fx, |p, ifx| aborted = p.abort_cs(ifx));
        aborted
    }

    fn abortable(&self) -> bool {
        self.inner.abortable()
    }

    fn set_deadline(&mut self, deadline: Option<u64>) {
        self.inner.set_deadline(deadline);
    }

    fn abort_counters(&self) -> Option<crate::protocol::AbortCounters> {
        self.inner.abort_counters()
    }

    fn request_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) {
        self.with_inner(fx, |p, ifx| p.request_cs_r(rid, ifx));
    }

    fn release_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) {
        self.with_inner(fx, |p, ifx| p.release_cs_r(rid, ifx));
    }

    fn abort_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) -> bool {
        let mut aborted = false;
        self.with_inner(fx, |p, ifx| aborted = p.abort_cs_r(rid, ifx));
        aborted
    }

    fn in_cs_r(&self, rid: ResourceId) -> bool {
        self.inner.in_cs_r(rid)
    }

    fn wants_cs_r(&self, rid: ResourceId) -> bool {
        self.inner.wants_cs_r(rid)
    }

    fn set_deadline_r(&mut self, rid: ResourceId, deadline: Option<u64>) {
        self.inner.set_deadline_r(rid, deadline);
    }

    fn drain_aborted_resources(&mut self) -> Vec<ResourceId> {
        self.inner.drain_aborted_resources()
    }

    fn on_site_failure(&mut self, failed: SiteId, fx: &mut Effects<Self::Msg>) {
        // An oracle notice (still supported for legacy drivers) is
        // definitive by assumption: it enters the suspicion set (so a
        // later sighting restores the site exactly like any false
        // suspicion would) and passes straight through to the inner
        // protocol with no `fail_confirm` lease.
        self.suspected.insert(failed);
        self.confirm_at.remove(&failed);
        self.with_inner(fx, |p, ifx| p.on_site_failure(failed, ifx));
    }

    fn on_recover(&mut self, fx: &mut Effects<Self::Msg>) {
        // Fresh restart: everyone is presumed live, announce the rejoin
        // and open the grace window for peers' state answers.
        let incarnation = self.incarnation;
        for &p in &self.peers {
            self.last_heard.insert(p, self.now);
            fx.send(p, HbMsg::Rejoin { incarnation });
        }
        self.suspected.clear();
        self.confirm_at.clear();
        self.indirect_heard.clear();
        self.last_echo.clear();
        self.reciprocal.clear();
        self.echoed_since.clear();
        self.counters.rejoins_sent += 1;
        self.next_beat = self.now + self.cfg.hb_interval;
        self.rejoin_until = Some(self.now + self.cfg.rejoin_wait);
        self.with_inner(fx, |p, ifx| p.on_recover(ifx));
    }

    fn set_incarnation(&mut self, incarnation: u64) {
        self.incarnation = incarnation;
        self.inner.set_incarnation(incarnation);
    }

    fn set_now(&mut self, now: u64) {
        self.now = self.now.max(now);
        self.inner.set_now(now);
    }

    fn next_timer(&self) -> Option<u64> {
        let mut due = self.next_beat;
        if let Some(d) = self.next_deadline() {
            due = due.min(d);
        }
        if let Some(&c) = self.confirm_at.values().min() {
            due = due.min(c);
        }
        if let Some(r) = self.rejoin_until {
            due = due.min(r);
        }
        match self.inner.next_timer() {
            Some(t) => Some(due.min(t)),
            None => Some(due),
        }
    }

    fn on_timer(&mut self, now: u64, fx: &mut Effects<Self::Msg>) {
        self.now = self.now.max(now);
        if self.now >= self.next_beat {
            if self.rejoin_until.is_some() {
                // While the rejoin window is open, each beat round
                // re-broadcasts the announcement instead: a peer whose
                // original (raw-channel, hence lossy) `Rejoin` was
                // dropped would otherwise never answer, and the
                // answer-gated window would never close. Peers that did
                // get it deduplicate by incarnation.
                let incarnation = self.incarnation;
                for &p in &self.peers {
                    fx.send(p, HbMsg::Rejoin { incarnation });
                    self.counters.heartbeats_sent += 1;
                }
            } else {
                self.beat_all(fx);
            }
            self.next_beat = self.now + self.cfg.hb_interval;
        }
        // Fire suspicions for peers silent past the timeout.
        let newly: Vec<SiteId> = self
            .peers
            .iter()
            .copied()
            .filter(|p| !self.suspected.contains(p))
            .filter(|p| {
                self.last_heard
                    .get(p)
                    .is_some_and(|&h| h + self.cfg.hb_timeout <= self.now)
            })
            .collect();
        for p in newly {
            self.suspected.insert(p);
            self.confirm_at
                .insert(p, self.now.saturating_add(self.cfg.fail_confirm));
            self.counters.suspicions += 1;
            self.with_inner(fx, |proto, ifx| proto.on_site_suspected(p, ifx));
        }
        // A reciprocal suspect that also goes silent toward us is
        // re-classified as a plain silence suspicion: the confirmation
        // lease starts, so a crash of an already reciprocally-suspected
        // peer is still eventually confirmed (and normal hearing resumes
        // withdrawing it). The inner protocol already got its
        // `on_site_suspected`.
        let gone_silent: Vec<SiteId> = self
            .reciprocal
            .iter()
            .copied()
            .filter(|p| {
                self.last_heard
                    .get(p)
                    .is_some_and(|&h| h + self.cfg.hb_timeout <= self.now)
            })
            .collect();
        for p in gone_silent {
            self.reciprocal.remove(&p);
            self.echoed_since.remove(&p);
            self.confirm_at
                .insert(p, self.now.saturating_add(self.cfg.fail_confirm));
        }
        // Escalate suspicions that stayed silent through the whole
        // confirmation lease to definitive failures.
        let confirmed: Vec<SiteId> = self
            .confirm_at
            .iter()
            .filter(|&(_, &c)| c <= self.now)
            .map(|(&p, _)| p)
            .collect();
        for p in confirmed {
            // View reconciliation: a peer we can hear vouched for the
            // suspect within the timeout — it is silent toward us but
            // audibly alive elsewhere (asymmetric cut), so the definitive
            // reclamation must wait until the indirect evidence expires.
            // For a genuinely crashed site every voucher goes silent about
            // it within one timeout, so confirmation is deferred by at
            // most ~hb_timeout, never forever.
            if let Some(&ih) = self.indirect_heard.get(&p) {
                if ih + self.cfg.hb_timeout > self.now {
                    self.confirm_at.insert(p, ih + self.cfg.hb_timeout);
                    self.counters.confirms_deferred += 1;
                    continue;
                }
            }
            self.confirm_at.remove(&p);
            self.counters.failures_confirmed += 1;
            self.with_inner(fx, |proto, ifx| proto.on_site_failure(p, ifx));
        }
        if self.rejoin_until.is_some_and(|r| r <= self.now) {
            if self.inner.rejoin_pending() {
                // A resync answer is still outstanding — re-arm the
                // window rather than resume on a blind timeout (the
                // answer may simply be slower than `rejoin_wait`; see
                // `DetectorConfig::rejoin_wait`).
                self.rejoin_until = Some(self.now + self.cfg.rejoin_wait);
            } else {
                self.rejoin_until = None;
                self.with_inner(fx, |p, ifx| p.on_rejoin_complete(ifx));
            }
        }
        self.with_inner(fx, |p, ifx| p.on_timer(now, ifx));
    }

    fn transport_counters(&self) -> Option<crate::transport::TransportCounters> {
        self.inner.transport_counters()
    }

    fn detector_counters(&self) -> Option<DetectorCounters> {
        let mut c = self.counters;
        if let Some(inner) = self.inner.detector_counters() {
            c.merge(&inner);
        }
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal inner protocol recording the hook calls it receives.
    #[derive(Debug, Clone, Default)]
    struct Probe {
        site: SiteId,
        suspected: Vec<SiteId>,
        failed: Vec<SiteId>,
        restored: Vec<SiteId>,
        rejoined: Vec<(SiteId, u64)>,
        recovered: bool,
        rejoin_completed: bool,
        /// When set, reports an outstanding resync answer so the rejoin
        /// window must stay open.
        gate_rejoin: bool,
    }

    #[derive(Debug, Clone)]
    struct NoMsg;
    impl MsgMeta for NoMsg {
        fn kind(&self) -> MsgKind {
            MsgKind::Info
        }
    }

    impl Protocol for Probe {
        type Msg = NoMsg;
        fn site(&self) -> SiteId {
            self.site
        }
        fn request_cs(&mut self, _fx: &mut Effects<NoMsg>) {}
        fn release_cs(&mut self, _fx: &mut Effects<NoMsg>) {}
        fn handle(&mut self, _from: SiteId, _msg: NoMsg, _fx: &mut Effects<NoMsg>) {}
        fn in_cs(&self) -> bool {
            false
        }
        fn wants_cs(&self) -> bool {
            false
        }
        fn on_site_suspected(&mut self, s: SiteId, _fx: &mut Effects<NoMsg>) {
            self.suspected.push(s);
        }
        fn on_site_failure(&mut self, s: SiteId, _fx: &mut Effects<NoMsg>) {
            self.failed.push(s);
        }
        fn on_site_restored(&mut self, s: SiteId, _fx: &mut Effects<NoMsg>) {
            self.restored.push(s);
        }
        fn on_peer_rejoined(&mut self, s: SiteId, incarnation: u64, _fx: &mut Effects<NoMsg>) {
            self.rejoined.push((s, incarnation));
        }
        fn on_recover(&mut self, _fx: &mut Effects<NoMsg>) {
            self.recovered = true;
        }
        fn on_rejoin_complete(&mut self, _fx: &mut Effects<NoMsg>) {
            self.rejoin_completed = true;
        }
        fn rejoin_pending(&self) -> bool {
            self.gate_rejoin
        }
    }

    fn det(n: u32) -> Detector<Probe> {
        Detector::new(
            Probe::default(),
            (0..n).map(SiteId).collect(),
            DetectorConfig {
                hb_interval: 10,
                hb_timeout: 35,
                rejoin_wait: 20,
                fail_confirm: 100,
            },
        )
    }

    /// A plain beat with no vouches and no suspicion echo.
    fn beat() -> HbMsg<NoMsg> {
        HbMsg::Beat {
            alive: Vec::new(),
            suspects_you: false,
        }
    }

    /// A beat vouching for `alive` peers.
    fn vouch(alive: &[u32]) -> HbMsg<NoMsg> {
        HbMsg::Beat {
            alive: alive.iter().copied().map(SiteId).collect(),
            suspects_you: false,
        }
    }

    #[test]
    fn beats_every_interval() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        let beats = fx
            .take_sends()
            .iter()
            .filter(|(_, m)| matches!(m, HbMsg::Beat { .. }))
            .count();
        assert_eq!(beats, 0, "no beat round at start (see on_start)");
        assert_eq!(d.next_timer(), Some(10));
        d.set_now(10);
        d.on_timer(10, &mut fx);
        let beats = fx
            .take_sends()
            .iter()
            .filter(|(_, m)| matches!(m, HbMsg::Beat { .. }))
            .count();
        assert_eq!(beats, 2, "one beat per peer each interval");
        assert_eq!(d.counters().heartbeats_sent, 2);
    }

    #[test]
    fn silence_causes_suspicion_and_message_restores() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        // Peer 1 keeps beating, peer 2 goes silent.
        for t in [10u64, 20, 30, 40] {
            d.set_now(t);
            d.handle(SiteId(1), beat(), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert!(d.suspected().contains(&SiteId(2)));
        assert_eq!(d.counters().suspicions, 1);
        assert_eq!(d.inner().suspected, vec![SiteId(2)]);
        // Peer 2 speaks again: false suspicion, restore.
        d.set_now(45);
        d.handle(SiteId(2), beat(), &mut fx);
        assert!(d.suspected().is_empty());
        assert_eq!(d.counters().false_suspicions, 1);
        assert_eq!(d.inner().restored, vec![SiteId(2)]);
    }

    #[test]
    fn rejoin_is_not_a_false_suspicion() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        d.set_now(40);
        d.on_timer(40, &mut fx);
        assert_eq!(d.suspected().len(), 2);
        d.set_now(50);
        d.handle(SiteId(2), HbMsg::Rejoin { incarnation: 1 }, &mut fx);
        assert!(!d.suspected().contains(&SiteId(2)));
        assert_eq!(d.counters().false_suspicions, 0);
        assert_eq!(d.counters().rejoins_observed, 1);
        assert_eq!(d.inner().rejoined, vec![(SiteId(2), 1)]);
    }

    #[test]
    fn duplicate_rejoin_same_incarnation_is_processed_once() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        d.handle(SiteId(2), HbMsg::Rejoin { incarnation: 1 }, &mut fx);
        d.handle(SiteId(2), HbMsg::Rejoin { incarnation: 1 }, &mut fx);
        assert_eq!(d.inner().rejoined, vec![(SiteId(2), 1)]);
        assert_eq!(d.counters().rejoins_observed, 1);
        // A *new* incarnation (another crash) is processed again.
        d.handle(SiteId(2), HbMsg::Rejoin { incarnation: 2 }, &mut fx);
        assert_eq!(d.inner().rejoined, vec![(SiteId(2), 1), (SiteId(2), 2)]);
    }

    #[test]
    fn recover_announces_and_grace_window_closes() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.set_now(100);
        d.on_recover(&mut fx);
        assert!(d.rejoining());
        assert!(d.inner().recovered);
        let rejoins = fx
            .take_sends()
            .iter()
            .filter(|(_, m)| matches!(m, HbMsg::Rejoin { .. }))
            .count();
        assert_eq!(rejoins, 2);
        assert_eq!(d.counters().rejoins_sent, 1);
        // Window closes at 120.
        assert_eq!(d.next_timer(), Some(110)); // next beat first
        d.set_now(120);
        d.on_timer(120, &mut fx);
        assert!(!d.rejoining());
        assert!(d.inner().rejoin_completed);
    }

    #[test]
    fn oracle_notice_enters_suspicion_set_and_sighting_restores() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        d.on_site_failure(SiteId(1), &mut fx);
        assert!(d.suspected().contains(&SiteId(1)));
        d.set_now(5);
        d.handle(SiteId(1), beat(), &mut fx);
        // Heard again: restored, but counted as false suspicion since the
        // sighting (not a rejoin) contradicts the notice.
        assert!(!d.suspected().contains(&SiteId(1)));
        assert_eq!(d.counters().false_suspicions, 1);
    }

    #[test]
    fn any_app_message_counts_as_liveness() {
        let mut d = det(2);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        d.set_now(30);
        d.handle(SiteId(1), HbMsg::App(NoMsg), &mut fx);
        d.set_now(40);
        d.on_timer(40, &mut fx);
        // Heard at 30, timeout 35: not suspected until 65.
        assert!(d.suspected().is_empty());
        assert_eq!(d.next_deadline(), Some(65));
    }

    #[test]
    fn counters_merge() {
        let mut a = DetectorCounters {
            heartbeats_sent: 1,
            suspicions: 2,
            false_suspicions: 3,
            rejoins_sent: 4,
            rejoins_observed: 5,
            failures_confirmed: 6,
            asymmetric_suspicions: 7,
            confirms_deferred: 8,
            echo_beats: 9,
            reciprocal_suspicions: 10,
        };
        a.merge(&a.clone());
        assert_eq!(a.heartbeats_sent, 2);
        assert_eq!(a.rejoins_observed, 10);
        assert_eq!(a.failures_confirmed, 12);
        assert_eq!(a.asymmetric_suspicions, 14);
        assert_eq!(a.confirms_deferred, 16);
        assert_eq!(a.echo_beats, 18);
        assert_eq!(a.reciprocal_suspicions, 20);
    }

    #[test]
    fn suspicion_escalates_to_confirmed_failure_after_lease() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        // Peer 1 keeps beating; peer 2 is silent forever.
        for t in (10..=40).step_by(10) {
            d.set_now(t);
            d.handle(SiteId(1), beat(), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert_eq!(d.inner().suspected, vec![SiteId(2)]);
        assert!(d.inner().failed.is_empty(), "no confirmation yet");
        // Suspected at t=40, fail_confirm=100: confirmation due at 140.
        assert!(d.next_timer().is_some_and(|t| t <= 140));
        for t in (50..=140).step_by(10) {
            d.set_now(t);
            d.handle(SiteId(1), beat(), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert_eq!(d.inner().failed, vec![SiteId(2)]);
        assert_eq!(d.counters().failures_confirmed, 1);
        // Even a confirmed site is restored when heard from again.
        d.set_now(150);
        d.handle(SiteId(2), beat(), &mut fx);
        assert_eq!(d.inner().restored, vec![SiteId(2)]);
    }

    #[test]
    fn hearing_from_suspect_cancels_pending_confirmation() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        d.set_now(40);
        d.handle(SiteId(1), beat(), &mut fx);
        d.on_timer(40, &mut fx);
        assert!(d.suspected().contains(&SiteId(2)));
        d.set_now(50);
        d.handle(SiteId(2), beat(), &mut fx);
        // Silence again: the confirmation clock must restart from the new
        // suspicion, not run on from the first.
        d.set_now(120);
        d.handle(SiteId(1), beat(), &mut fx);
        d.on_timer(120, &mut fx);
        assert!(d.suspected().contains(&SiteId(2)));
        assert!(
            d.inner().failed.is_empty(),
            "re-suspected at 120, confirm not before 220"
        );
        d.set_now(220);
        d.handle(SiteId(1), beat(), &mut fx);
        d.on_timer(220, &mut fx);
        assert_eq!(d.inner().failed, vec![SiteId(2)]);
    }

    #[test]
    fn app_message_from_suspect_restores_like_a_beat() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        d.set_now(40);
        d.handle(SiteId(1), beat(), &mut fx);
        d.on_timer(40, &mut fx);
        fx.take_sends();
        assert!(d.suspected().contains(&SiteId(2)));
        // An application message is liveness evidence too: the suspicion
        // is withdrawn and the restore hook fires before the inner
        // protocol handles the payload.
        d.set_now(60);
        d.handle(SiteId(2), HbMsg::App(NoMsg), &mut fx);
        assert!(!d.suspected().contains(&SiteId(2)));
        assert_eq!(d.counters().false_suspicions, 1);
        assert_eq!(d.inner().restored, vec![SiteId(2)]);
        assert!(d.inner().failed.is_empty());
    }

    #[test]
    fn lease_edge_message_at_deadline_withdraws_suspicion() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        // Suspect peer 2 at t=40: the confirmation lease runs to exactly
        // t=140 (fail_confirm=100).
        d.set_now(40);
        d.handle(SiteId(1), beat(), &mut fx);
        d.on_timer(40, &mut fx);
        fx.take_sends();
        assert!(d.suspected().contains(&SiteId(2)));
        // The suspect's message lands at t == confirm deadline and is
        // processed before the timer: the suspicion is withdrawn exactly
        // at the lease edge and no failure is ever confirmed.
        d.set_now(140);
        d.handle(SiteId(2), beat(), &mut fx);
        d.on_timer(140, &mut fx);
        assert!(!d.suspected().contains(&SiteId(2)));
        assert_eq!(d.counters().false_suspicions, 1);
        assert_eq!(d.counters().failures_confirmed, 0);
        assert_eq!(d.inner().restored, vec![SiteId(2)]);
        assert!(d.inner().failed.is_empty());
    }

    #[test]
    fn lease_edge_timer_at_deadline_confirms_failure() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        d.set_now(40);
        d.handle(SiteId(1), beat(), &mut fx);
        d.on_timer(40, &mut fx);
        fx.take_sends();
        assert!(d.suspected().contains(&SiteId(2)));
        // One tick before the deadline the suspicion is still only a
        // suspicion.
        d.set_now(139);
        d.handle(SiteId(1), beat(), &mut fx);
        d.on_timer(139, &mut fx);
        assert!(d.inner().failed.is_empty());
        // The timer firing exactly at the deadline (c <= now with
        // c == now) escalates to a definitive failure.
        d.set_now(140);
        d.handle(SiteId(1), beat(), &mut fx);
        d.on_timer(140, &mut fx);
        assert_eq!(d.inner().failed, vec![SiteId(2)]);
        assert_eq!(d.counters().failures_confirmed, 1);
        // A message arriving one tick *after* confirmation restores the
        // site but cannot undo the confirmed failure count.
        d.set_now(141);
        d.handle(SiteId(2), beat(), &mut fx);
        assert_eq!(d.inner().restored, vec![SiteId(2)]);
        assert_eq!(d.counters().failures_confirmed, 1);
    }

    #[test]
    fn rejoin_window_extends_while_inner_reports_pending() {
        let mut d = det(3);
        d.inner.gate_rejoin = true;
        let mut fx = Effects::new();
        d.set_now(100);
        d.on_recover(&mut fx);
        fx.take_sends();
        // Window would close at 120, but an answer is outstanding.
        d.set_now(120);
        d.on_timer(120, &mut fx);
        assert!(d.rejoining(), "window re-armed while answers pending");
        assert!(!d.inner().rejoin_completed);
        // Beat rounds inside the window re-broadcast the announcement so
        // peers that lost the original raw-channel Rejoin still answer.
        let rejoins = fx
            .take_sends()
            .iter()
            .filter(|(_, m)| matches!(m, HbMsg::Rejoin { .. }))
            .count();
        assert!(rejoins >= 2, "re-broadcast to both peers, got {rejoins}");
        // The answers arrive; the next expiry closes the window.
        d.inner.gate_rejoin = false;
        d.set_now(140);
        d.on_timer(140, &mut fx);
        assert!(!d.rejoining());
        assert!(d.inner().rejoin_completed);
    }

    /// Asymmetric-partition regression: peer 2 is silent toward us (its
    /// link to us is cut) but peer 1 keeps vouching for it — hearing it
    /// fine on the side of the network we cannot see. The suspicion fires
    /// (we genuinely cannot reach 2's replies), but the definitive
    /// confirmation — which would reclaim locks 2 may hold — must be
    /// deferred for as long as the vouching continues, and proceed once
    /// the vouches dry up.
    #[test]
    fn third_party_vouch_defers_confirmation_until_evidence_expires() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        // Peer 1 beats every 10 ticks, always vouching for peer 2.
        for t in (10..=40).step_by(10) {
            d.set_now(t);
            d.handle(SiteId(1), vouch(&[2]), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        // Direct silence did its job: 2 is suspected (routing-around is
        // needed for liveness) ...
        assert!(d.suspected().contains(&SiteId(2)));
        assert_eq!(d.inner().suspected, vec![SiteId(2)]);
        // ... and the confirmation lease runs to 140. Keep vouching past
        // it: the escalation must keep being deferred.
        for t in (50..=200).step_by(10) {
            d.set_now(t);
            d.handle(SiteId(1), vouch(&[2]), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert!(
            d.inner().failed.is_empty(),
            "confirmation must wait while peer 1 vouches for the suspect"
        );
        assert!(d.counters().confirms_deferred > 0);
        // Peer 1 stops vouching (it too lost peer 2): the last vouch was
        // at t=200, so the indirect evidence expires at 235 and the
        // confirmation goes through at the next timer after that.
        for t in (210..=250).step_by(10) {
            d.set_now(t);
            d.handle(SiteId(1), vouch(&[]), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert_eq!(
            d.inner().failed,
            vec![SiteId(2)],
            "vouches dried up: the confirmation must proceed"
        );
        assert_eq!(d.counters().failures_confirmed, 1);
    }

    #[test]
    fn suspicion_echo_triggers_immediate_rate_limited_reply() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        // Peer 1 says it suspects us while we hear it fine: asymmetric
        // silence detected, answered with an immediate beat.
        d.set_now(5);
        d.handle(
            SiteId(1),
            HbMsg::Beat {
                alive: vec![],
                suspects_you: true,
            },
            &mut fx,
        );
        let replies: Vec<_> = fx
            .take_sends()
            .into_iter()
            .filter(|(to, m)| *to == SiteId(1) && matches!(m, HbMsg::Beat { .. }))
            .collect();
        assert_eq!(replies.len(), 1, "one out-of-schedule echo reply");
        assert_eq!(d.counters().asymmetric_suspicions, 1);
        assert_eq!(d.counters().echo_beats, 1);
        // A second echo inside the same interval is counted but not
        // answered again (rate limit: one reply per hb_interval).
        d.set_now(9);
        d.handle(
            SiteId(1),
            HbMsg::Beat {
                alive: vec![],
                suspects_you: true,
            },
            &mut fx,
        );
        assert!(fx.take_sends().is_empty());
        assert_eq!(d.counters().asymmetric_suspicions, 2);
        assert_eq!(d.counters().echo_beats, 1);
        // Past the interval the reply fires again.
        d.set_now(15);
        d.handle(
            SiteId(1),
            HbMsg::Beat {
                alive: vec![],
                suspects_you: true,
            },
            &mut fx,
        );
        assert_eq!(fx.take_sends().len(), 1);
        assert_eq!(d.counters().echo_beats, 2);
    }

    /// A beat from `from` that suspects the recipient.
    fn echo() -> HbMsg<NoMsg> {
        HbMsg::Beat {
            alive: Vec::new(),
            suspects_you: true,
        }
    }

    /// One-way-cut regression: peer 1 hears nothing from us (our outbound
    /// link is dead) and keeps echoing its suspicion, while we hear its
    /// every beat. Once the echo has persisted a full `hb_timeout` —
    /// proving the echo replies died too — the peer must be suspected
    /// *reciprocally*: routed around (inner `on_site_suspected`), not
    /// withdrawn by mere hearing, and never escalated to a confirmed
    /// failure while it stays audible. When the echo clears (the link
    /// healed) the suspicion is withdrawn via `on_site_restored`.
    #[test]
    fn persistent_suspicion_echo_reciprocally_suspects_until_heal() {
        let mut d = det(2); // single peer: no silence suspicion noise

        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        // Echoes at 10..40: the run started at 10, matures at 45.
        for t in [10u64, 20, 30, 40] {
            d.set_now(t);
            d.handle(SiteId(1), echo(), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert!(d.suspected().is_empty(), "echo not yet persistent");
        d.set_now(50);
        d.handle(SiteId(1), echo(), &mut fx);
        fx.take_sends();
        assert!(d.suspected().contains(&SiteId(1)));
        assert_eq!(d.counters().reciprocal_suspicions, 1);
        assert_eq!(d.inner().suspected, vec![SiteId(1)]);
        // Hearing the peer (it talks to us fine) does NOT withdraw the
        // reciprocal suspicion ...
        d.set_now(55);
        d.handle(SiteId(1), HbMsg::App(NoMsg), &mut fx);
        assert!(d.suspected().contains(&SiteId(1)));
        assert!(d.inner().restored.is_empty());
        // ... and no amount of further echoing confirms a failure: the
        // peer is audibly alive (fail_confirm = 100 is long past by 200).
        for t in (60..=200).step_by(10) {
            d.set_now(t);
            d.handle(SiteId(1), echo(), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert!(d.inner().failed.is_empty());
        assert_eq!(d.counters().failures_confirmed, 0);
        // The link heals: the peer hears us again and its echo clears.
        d.set_now(210);
        d.handle(SiteId(1), beat(), &mut fx);
        assert!(d.suspected().is_empty());
        assert_eq!(d.inner().restored, vec![SiteId(1)]);
    }

    #[test]
    fn brief_suspicion_echo_does_not_reciprocate() {
        let mut d = det(2);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        // An echo run broken by a clean beat restarts the maturation
        // clock: loss-induced false suspicions that the echo reply heals
        // must never cost a reciprocal suspicion.
        for (t, suspects) in [
            (10u64, true),
            (20, true),
            (30, false),
            (40, true),
            (50, true),
        ] {
            d.set_now(t);
            let m = if suspects { echo() } else { beat() };
            d.handle(SiteId(1), m, &mut fx);
            fx.take_sends();
        }
        // Run restarted at 40; 50 < 40 + 35.
        assert!(d.suspected().is_empty());
        assert_eq!(d.counters().reciprocal_suspicions, 0);
    }

    /// A reciprocal suspect that goes fully silent (the cut became
    /// two-way, or it crashed) is re-classified as a silence suspicion:
    /// the confirmation lease arms, so a genuine crash is still
    /// eventually confirmed.
    #[test]
    fn reciprocal_suspect_gone_silent_is_eventually_confirmed() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        for t in (10..=50).step_by(10) {
            d.set_now(t);
            d.handle(SiteId(1), echo(), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert!(d.suspected().contains(&SiteId(1)));
        assert_eq!(d.counters().reciprocal_suspicions, 1);
        // Peer 1 stops talking entirely after t=50; peer 2 keeps us
        // ticking. Silence re-classification at 85 arms the lease; the
        // confirmation lands once it expires (85 + 100).
        for t in (60..=190).step_by(10) {
            d.set_now(t);
            d.handle(SiteId(2), beat(), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert_eq!(d.inner().failed, vec![SiteId(1)]);
        assert_eq!(d.counters().failures_confirmed, 1);
    }

    #[test]
    fn beats_carry_alive_set_and_per_recipient_echo() {
        let mut d = det(3);
        let mut fx = Effects::new();
        d.on_start(&mut fx);
        fx.take_sends();
        // Hear peer 1 recently; let peer 2 go silent until suspected.
        for t in [10u64, 20, 30, 40] {
            d.set_now(t);
            d.handle(SiteId(1), beat(), &mut fx);
            d.on_timer(t, &mut fx);
            fx.take_sends();
        }
        assert!(d.suspected().contains(&SiteId(2)));
        d.set_now(50);
        d.handle(SiteId(1), beat(), &mut fx);
        fx.take_sends();
        d.on_timer(50, &mut fx);
        let sends = fx.take_sends();
        let to1 = sends
            .iter()
            .find_map(|(to, m)| match (to, m) {
                (
                    SiteId(1),
                    HbMsg::Beat {
                        alive,
                        suspects_you,
                    },
                ) => Some((alive.clone(), *suspects_you)),
                _ => None,
            })
            .expect("beat to peer 1");
        // Peer 1 was heard at 50 (alive); peer 2 is silent (not vouched
        // for) and suspected (echoed on its own beat).
        assert_eq!(to1.0, vec![SiteId(1)]);
        assert!(!to1.1, "peer 1 is not suspected");
        let to2 = sends
            .iter()
            .find_map(|(to, m)| match (to, m) {
                (
                    SiteId(2),
                    HbMsg::Beat {
                        alive,
                        suspects_you,
                    },
                ) => Some((alive.clone(), *suspects_you)),
                _ => None,
            })
            .expect("beat to peer 2");
        assert!(to2.1, "the suspect must be told it is suspected");
    }
}
