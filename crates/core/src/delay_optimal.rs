//! The delay-optimal quorum-based mutual exclusion algorithm (Cao–Singhal,
//! ICDCS 1998), §3 of the paper, with the §6 fault-tolerance extension.
//!
//! # Roles
//!
//! Every site simultaneously plays two roles:
//!
//! * **Requester** — wants the CS; must collect a `reply` from every member
//!   of its quorum (`req_set`). State: `replied` vector, `failed` flag,
//!   `inq_queue` of deferred inquires, and `tran_stack` of transfer
//!   obligations it must honor when it exits the CS.
//! * **Arbiter** — grants its single permission to one request at a time.
//!   State: `lock` (the request currently holding the permission) and
//!   `req_queue` (pending requests in priority order).
//!
//! # The delay-optimal idea
//!
//! In Maekawa's algorithm a site exiting the CS sends `release` to its
//! arbiters, and each arbiter then sends `reply` to the next requester: two
//! serial hops (`2T`). Here, whenever the *next-in-line* request at an
//! arbiter changes, the arbiter sends a `transfer` naming that request to
//! whoever currently holds its permission. On CS exit, the holder sends the
//! arbiter's `reply` **directly** to the named requester (one hop, `T`) and
//! tells the arbiter what it did via the `release`'s `forwarded_to` field.
//!
//! # Reconstruction notes (the paper's listing is OCR-damaged)
//!
//! The behaviour below is pinned down by the paper's prose, the Theorem 1–3
//! proofs, and the per-case message accounting of §5.2:
//!
//! * An arbiter receiving a request while busy enqueues it; if it became the
//!   queue head, the arbiter sends a `transfer` for it to the lock holder,
//!   a `fail` to the displaced previous head (this `fail` appears in the
//!   §5.2 Case 4/5 counts), and an `inquire` (piggybacked with the transfer,
//!   one wire message) iff the new head has priority over the lock holder and
//!   no inquire is already outstanding (none is sent in §5.2 Case 4, where
//!   the displaced head had already triggered one). A request that did not
//!   become head just gets a `fail` (Cases 1 and 3).
//! * `tran_stack` keeps the newest transfer per arbiter (C.1: pop the top,
//!   discard earlier entries from the same sender): each successive transfer
//!   from an arbiter names its newer queue head, superseding the previous.
//! * All permission-specific messages carry the request timestamp they refer
//!   to. The paper observes that once replies can arrive via proxies, FIFO
//!   channels alone cannot order an `inquire` after the `reply` it refers to;
//!   carrying timestamps (plus the `inq_queue` deferral of A.3/A.6) makes
//!   every stale message detectable regardless of arrival order.
//! * On a `release` that reports no forwarding while requests are queued, the
//!   arbiter grants its new head directly and piggybacks a `transfer` naming
//!   the following request (C.2). On a `release` that reports forwarding to a
//!   request that is *no longer* the head (a higher-priority request slipped
//!   in while the forwarded reply was in flight), the arbiter records the new
//!   lock holder and immediately sends it `inquire`+`transfer` so the
//!   higher-priority request can preempt — this is the race the mutual
//!   exclusion proof's Case 2.2 walks through.
//!
//! # Ablation
//!
//! [`Config::forwarding_enabled`]`= false` disables `transfer` messages and
//! direct forwarding entirely; every grant then flows arbiter-first exactly
//! as in Maekawa's algorithm, restoring the `2T` delay. The experiment
//! harness uses this to show the delay improvement is attributable to the
//! forwarding mechanism alone (same code base, one flag).

use crate::clock::{LamportClock, SeqNum, Timestamp};
use crate::protocol::{AbortCounters, Effects, MsgKind, MsgMeta, Protocol, QuorumSource, SiteId};
use crate::reqqueue::ReqQueue;
use crate::siteset::SiteSet;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Message body of the delay-optimal protocol (seven logical messages; the
/// `transfer` piggybacked on `inquire` and `reply` is folded into those
/// variants, matching the paper's one-wire-message accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// `request(sn, i)`: the sender asks for the receiver's permission.
    Request {
        /// Timestamp of the request.
        ts: Timestamp,
    },
    /// `reply(j)`: grant of arbiter `arbiter`'s permission to request `req`.
    ///
    /// May be sent by the arbiter itself or *forwarded* by the previous
    /// holder of the permission (the delay-optimal path). `transfer`
    /// optionally piggybacks a transfer obligation (A.4, C.2).
    Reply {
        /// Whose permission this grants.
        arbiter: SiteId,
        /// The request being granted.
        req: Timestamp,
        /// Piggybacked transfer: the next request in line at `arbiter`.
        transfer: Option<Timestamp>,
    },
    /// `release(i)`: the sender exited the CS. `forwarded_to` tells the
    /// arbiter whether the sender forwarded this arbiter's permission
    /// (and to which request) or returned it.
    Release {
        /// The exiting site's request (the arbiter's current lock).
        holder_req: Timestamp,
        /// `Some(b)` if the permission was forwarded to request `b`.
        forwarded_to: Option<Timestamp>,
    },
    /// `inquire(j)`: arbiter asks the holder of `holder_req` whether it can
    /// yield. Piggybacks the transfer for the new head (the paper: "whenever
    /// a site sends an inquire in response to a high priority request, the
    /// inquire is always piggybacked with a transfer").
    Inquire {
        /// The inquiring arbiter.
        arbiter: SiteId,
        /// The request currently holding the arbiter's permission.
        holder_req: Timestamp,
        /// Piggybacked transfer beneficiary (next in line), if forwarding on.
        transfer: Option<Timestamp>,
    },
    /// `fail(j)`: arbiter tells the requester of `req` it is not next in
    /// line.
    Fail {
        /// The refusing arbiter.
        arbiter: SiteId,
        /// The request being refused.
        req: Timestamp,
    },
    /// `yield(i)`: the holder of request `req` relinquishes the receiver's
    /// permission so a higher-priority request can take it.
    Yield {
        /// The yielding site's request.
        req: Timestamp,
    },
    /// `transfer(k, j)`: arbiter `arbiter` asks the holder of `holder_req`
    /// to forward its reply to request `beneficiary` upon CS exit.
    Transfer {
        /// The arbiter on whose behalf the reply will be forwarded.
        arbiter: SiteId,
        /// The next request in line at `arbiter`.
        beneficiary: Timestamp,
        /// The request currently holding the arbiter's permission.
        holder_req: Timestamp,
    },
    /// Withdrawal of request `req`: remove it from the queue and, if it
    /// holds the permission, release it (without re-queueing).
    ///
    /// Not one of the paper's seven messages: it is required by the §6
    /// quorum-reconstruction path the paper leaves implicit. When a site
    /// abandons a request (because a quorum member failed and it re-issues
    /// against a new quorum), its old request would otherwise linger in old
    /// arbiters' queues — or worse, be granted and never released. The
    /// requester also sends this in response to a grant for a request it has
    /// already abandoned. Counted as a `release` for accounting purposes.
    Relinquish {
        /// The withdrawn request.
        req: Timestamp,
    },
    /// Client-initiated abort of request `req` (an explicit
    /// [`Protocol::abort_cs`] call or a deadline expiry): remove it from
    /// the queue and, if it holds the permission, release it without
    /// re-queueing.
    ///
    /// Not one of the paper's seven messages. Arbiter-side it is handled
    /// exactly like [`Body::Relinquish`] (the §6 withdrawal) — the two are
    /// separate variants only so traces and message accounting distinguish
    /// a client abort from a quorum reconstruction. Counted as a `release`.
    Abandon {
        /// The aborted request.
        req: Timestamp,
    },
    /// Rejoin resync answer: the sender has seen the receiver's rejoin
    /// announcement and reports whether it currently holds the receiver's
    /// arbiter permission (`holds = Some(req)`) or not (`holds = None`).
    ///
    /// Not one of the paper's seven messages: the paper has no rejoin
    /// protocol at all. When a crashed arbiter restarts with fresh state,
    /// it no longer knows who holds its permission; without this assertion
    /// it would grant the permission again and violate mutual exclusion.
    /// *Every* peer answers *every* rejoin announcement exactly once, even
    /// with nothing to claim: the rejoined arbiter refuses to grant until
    /// it has heard from all peers it is waiting on, so rejoin safety does
    /// not hinge on a fixed grace window outracing the slowest link.
    /// Counted as `info`.
    Claim {
        /// The claimant's outstanding request holding the receiver's
        /// permission, or `None` if the sender holds nothing of the
        /// receiver's.
        holds: Option<Timestamp>,
    },
}

/// A wire message: protocol body plus a piggybacked Lamport clock sample.
///
/// The clock sample keeps every site's clock ahead of every request it has
/// transitively heard about, which is what makes a waiting request's
/// timestamp eventually the global minimum (starvation freedom, Theorem 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Sender's clock at send time.
    pub clk: SeqNum,
    /// Protocol content.
    pub body: Body,
}

impl MsgMeta for Msg {
    fn kind(&self) -> MsgKind {
        match &self.body {
            Body::Request { .. } => MsgKind::Request,
            Body::Reply { .. } => MsgKind::Reply,
            Body::Release { .. } => MsgKind::Release,
            Body::Inquire { .. } => MsgKind::Inquire,
            Body::Fail { .. } => MsgKind::Fail,
            Body::Yield { .. } => MsgKind::Yield,
            Body::Transfer { .. } => MsgKind::Transfer,
            Body::Relinquish { .. } => MsgKind::Release,
            Body::Abandon { .. } => MsgKind::Release,
            Body::Claim { .. } => MsgKind::Info,
        }
    }
}

/// Tuning knobs for [`DelayOptimal`].
#[derive(Debug, Clone)]
pub struct Config {
    /// When `false`, disables `transfer` messages and CS-exit forwarding —
    /// the algorithm degenerates to Maekawa-style arbiter-mediated handoff
    /// with `2T` synchronization delay. Used by the ablation experiment.
    pub forwarding_enabled: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            forwarding_enabled: true,
        }
    }
}

/// Requester-side phase of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequesterPhase {
    /// No outstanding CS request.
    Idle,
    /// Waiting for replies.
    Waiting,
    /// Executing the critical section.
    InCs,
}

/// A transfer obligation held by the current permission holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TranEntry {
    /// Arbiter on whose behalf the reply must be forwarded.
    arbiter: SiteId,
    /// Request to forward the reply to.
    beneficiary: Timestamp,
}

/// A deferred inquire (A.3 "else enqueue").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingInquire {
    arbiter: SiteId,
    holder_req: Timestamp,
    transfer: Option<Timestamp>,
}

/// Permission-returning requests withheld per suspected site, indexed by
/// site id (dense, like every other per-site structure here). Replaces a
/// `BTreeMap<SiteId, BTreeSet<Timestamp>>`: the overwhelmingly common
/// case — nothing withheld — costs one bounds-checked index instead of a
/// tree probe, and each per-site list stays sorted and deduplicated so
/// restoration flushes in the same deterministic order as before.
#[derive(Clone, Default, PartialEq, Eq)]
struct Withheld {
    by_site: Vec<Vec<Timestamp>>,
}

impl Withheld {
    fn add(&mut self, site: SiteId, req: Timestamp) {
        let idx = site.index();
        if idx >= self.by_site.len() {
            self.by_site.resize(idx + 1, Vec::new());
        }
        let list = &mut self.by_site[idx];
        if let Err(pos) = list.binary_search(&req) {
            list.insert(pos, req);
        }
    }

    /// Takes and returns the (sorted) withheld requests for `site`, if any.
    fn take(&mut self, site: SiteId) -> Option<Vec<Timestamp>> {
        let list = self.by_site.get_mut(site.index())?;
        if list.is_empty() {
            return None;
        }
        Some(std::mem::take(list))
    }

    fn discard(&mut self, site: SiteId) {
        if let Some(list) = self.by_site.get_mut(site.index()) {
            list.clear();
        }
    }
}

// Map-shaped Debug (only non-empty slots), so model-checker fingerprints
// stay semantic rather than capacity-dependent.
impl fmt::Debug for Withheld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(
                self.by_site
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.is_empty())
                    .map(|(i, l)| (SiteId(i as u32), l)),
            )
            .finish()
    }
}

/// A permission return that reached the arbiter *before* it learned (via
/// the previous holder's `release`) that the returning request had been
/// granted at all.
///
/// This race is inherent to the delay-optimal forwarding path: the grant
/// travels proxy → beneficiary and the notification travels proxy →
/// arbiter on *different* links, so the beneficiary's own subsequent
/// `release`/`yield`/withdrawal (beneficiary → arbiter, a third link) can
/// overtake the notification. Per-link FIFO — all the paper assumes —
/// cannot order them. The arbiter parks the early return here and replays
/// it the moment the in-flight `release(…, forwarded_to)` names that
/// request as the new lock holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EarlyReturn {
    /// The request exited the CS; it may itself have forwarded this
    /// arbiter's permission onward.
    Released { forwarded_to: Option<Timestamp> },
    /// The request yielded the permission but still wants the CS.
    Yielded,
    /// The request was withdrawn entirely (§6 quorum change).
    Relinquished,
}

/// One site of the delay-optimal quorum-based mutual exclusion algorithm.
///
/// See the [module documentation](self) for the protocol description. Use
/// [`DelayOptimal::new`] for the fixed-quorum protocol or
/// [`DelayOptimal::with_quorum_source`] for the §6 fault-tolerant variant.
///
/// # Layout: hot/cold split
///
/// The struct keeps only the per-step scalars inline — the fields every
/// `step`/`on_msg` dispatch reads — and banishes the collections behind one
/// `Cold` box. A `Vec<DelayOptimal>` (how the simulator and the checker
/// hold all `N` sites) is then a dense array of ~100-byte elements instead
/// of several-hundred-byte ones, which is what makes iterating 10⁵ sites
/// cache-friendly: the struct-of-arrays layout the large-N engine wants,
/// expressed at container granularity.
pub struct DelayOptimal {
    site: SiteId,
    clock: LamportClock,

    // --- hot requester scalars ---
    phase: RequesterPhase,
    my_req: Option<Timestamp>,
    failed: bool,
    /// Absolute deadline for the outstanding (or parked) request. While a
    /// request is unfulfilled (`Waiting` or a parked `want_cs`),
    /// `next_timer` exposes it and `on_timer` at/past it aborts the
    /// request. Cleared on CS entry and on abort; survives a §6 quorum
    /// switch (the deadline bounds the client's wait, not one quorum's).
    deadline: Option<u64>,
    /// Client-abort counters. Monitoring only — excluded from `Debug` so
    /// model-checker fingerprints count behavior, not history.
    abort_ctrs: AbortCounters,

    // --- hot arbiter / §6 scalars ---
    lock: Option<Timestamp>,
    inaccessible: bool,
    /// A `request_cs` arrived while no live quorum existed (every candidate
    /// contains a suspect). The want is parked here — not dropped — and the
    /// request is issued automatically as soon as accessibility returns
    /// (suspicion withdrawn or suspect rejoined). Without this, a request
    /// landing inside an asymmetric-partition window would be lost forever
    /// even though the partition later heals.
    want_cs: bool,
    /// True between a post-crash restart (`on_recover`) and the end of the
    /// rejoin grace window (`on_rejoin_complete`): the arbiter enqueues
    /// requests but grants nothing, waiting for `Claim`s to re-establish
    /// who held its permission before the crash.
    rejoining: bool,

    /// Everything with a heap allocation or a large footprint.
    cold: Box<Cold>,
}

/// The cold half of [`DelayOptimal`]: configuration and every collection.
/// Touched only when the protocol actually manipulates a queue or set —
/// idle sites swept by the simulator never follow this pointer.
#[derive(Clone)]
struct Cold {
    cfg: Config,

    // --- requester state ---
    req_set: Vec<SiteId>,
    /// Bitset mirror of `req_set`, kept in sync by quorum (re)construction:
    /// turns the per-reply "do I hold every permission?" scan into a few
    /// word operations. Derived state — excluded from `Debug` (the model
    /// checker already fingerprints `req_set`).
    req_set_bits: SiteSet,
    replied: SiteSet,
    inq_queue: Vec<PendingInquire>,
    tran_stack: Vec<TranEntry>,

    // --- arbiter state ---
    req_queue: ReqQueue,
    early_returns: std::collections::BTreeMap<Timestamp, EarlyReturn>,

    // --- fault tolerance (§6) ---
    /// Sites currently considered unreachable: every *suspected* site
    /// (revocable, detector hearsay) plus every *confirmed-failed* one.
    /// Gates message routing and quorum selection only — a merely
    /// suspected site never loses a lock it holds, because the suspicion
    /// may be false while it is inside the CS.
    known_failed: SiteSet,
    /// Sites whose failure is definitive (the oracle's `failure(i)` notice
    /// or the detector's post-lease confirmation). Only these trigger the
    /// §6 arbiter-side cleanup that reclaims and re-grants held locks.
    /// Always a subset of `known_failed`.
    confirmed_failed: SiteSet,
    quorum_source: Option<Box<dyn QuorumSource>>,

    // --- failure-detector integration (suspicion / recovery) ---
    /// Permission-returning messages (release/yield/relinquish) dropped at
    /// source because the target was suspected, by target site. If the
    /// suspicion turns out false, the target's arbiter still thinks these
    /// requests are queued or hold its lock; on restoration a `Relinquish`
    /// per recorded request unwedges it.
    withheld: Withheld,
    /// All peers this site shares the system with (set once by the
    /// detector layer via `set_peer_universe`; empty for bare stacks).
    peer_universe: Vec<SiteId>,
    /// While `rejoining`: peers whose rejoin answer (`Claim`) is still
    /// outstanding. The grace window must not close while this is
    /// non-empty — a pre-crash holder's claim could still be in flight.
    /// Drained by claims, peers' own rejoins, and confirmed failures
    /// (never by mere suspicion: a partitioned-but-live holder must keep
    /// gating the window).
    rejoin_awaiting: SiteSet,

    // Self-addressed messages processed synchronously (a site is a member of
    // its own quorum; granting itself must not cost wire messages).
    local_q: VecDeque<(SiteId, Msg)>,
}

impl Clone for DelayOptimal {
    fn clone(&self) -> Self {
        DelayOptimal {
            site: self.site,
            clock: self.clock.clone(),
            phase: self.phase,
            my_req: self.my_req,
            failed: self.failed,
            deadline: self.deadline,
            abort_ctrs: self.abort_ctrs,
            lock: self.lock,
            inaccessible: self.inaccessible,
            want_cs: self.want_cs,
            rejoining: self.rejoining,
            cold: self.cold.clone(),
        }
    }
}

impl fmt::Debug for DelayOptimal {
    // Complete except for `quorum_source` (opaque): the model checker in
    // `qmx-check` fingerprints protocol state through this impl, so every
    // behaviour-relevant field must appear.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DelayOptimal")
            .field("site", &self.site)
            .field("cfg", &self.cold.cfg)
            .field("clock", &self.clock)
            .field("req_set", &self.cold.req_set)
            .field("phase", &self.phase)
            .field("my_req", &self.my_req)
            .field("replied", &self.cold.replied)
            .field("failed", &self.failed)
            .field("lock", &self.lock)
            .field("req_queue", &self.cold.req_queue)
            .field("tran_stack", &self.cold.tran_stack)
            .field("inq_queue", &self.cold.inq_queue)
            .field("early_returns", &self.cold.early_returns)
            .field("known_failed", &self.cold.known_failed)
            .field("confirmed_failed", &self.cold.confirmed_failed)
            .field("inaccessible", &self.inaccessible)
            .field("want_cs", &self.want_cs)
            .field("deadline", &self.deadline)
            .field("withheld", &self.cold.withheld)
            .field("rejoining", &self.rejoining)
            .field("peer_universe", &self.cold.peer_universe)
            .field("rejoin_awaiting", &self.cold.rejoin_awaiting)
            .field("local_q", &self.cold.local_q)
            .finish_non_exhaustive()
    }
}

impl DelayOptimal {
    /// Creates a site with a fixed quorum (`req_set`).
    ///
    /// The quorum may or may not contain the site itself; when it does, the
    /// site arbitrates its own membership locally without wire messages
    /// (which is why the paper counts `K-1` messages per round).
    ///
    /// # Panics
    ///
    /// Panics if `req_set` is empty or contains duplicates.
    pub fn new(site: SiteId, req_set: Vec<SiteId>, cfg: Config) -> Self {
        assert!(!req_set.is_empty(), "quorum must be non-empty");
        let uniq: BTreeSet<SiteId> = req_set.iter().copied().collect();
        assert_eq!(uniq.len(), req_set.len(), "quorum contains duplicates");
        DelayOptimal {
            site,
            clock: LamportClock::new(),
            phase: RequesterPhase::Idle,
            my_req: None,
            failed: false,
            deadline: None,
            abort_ctrs: AbortCounters::default(),
            lock: None,
            inaccessible: false,
            want_cs: false,
            rejoining: false,
            cold: Box::new(Cold {
                cfg,
                req_set_bits: req_set.iter().copied().collect(),
                req_set,
                replied: SiteSet::new(),
                inq_queue: Vec::new(),
                tran_stack: Vec::new(),
                req_queue: ReqQueue::new(),
                early_returns: std::collections::BTreeMap::new(),
                known_failed: SiteSet::new(),
                confirmed_failed: SiteSet::new(),
                quorum_source: None,
                withheld: Withheld::default(),
                peer_universe: Vec::new(),
                rejoin_awaiting: SiteSet::new(),
                local_q: VecDeque::new(),
            }),
        }
    }

    /// Creates a fault-tolerant site whose quorum is (re)constructed by
    /// `source` (§6): when a quorum member fails, the site asks `source` for
    /// a replacement quorum avoiding all known-failed sites and restarts its
    /// pending request against it.
    pub fn with_quorum_source(
        site: SiteId,
        cfg: Config,
        mut source: Box<dyn QuorumSource>,
    ) -> Self {
        let req_set = source
            .quorum_avoiding(site, &BTreeSet::new())
            .expect("initial quorum must exist");
        let mut me = Self::new(site, req_set, cfg);
        me.cold.quorum_source = Some(source);
        me
    }

    /// Like [`DelayOptimal::with_quorum_source`], but defers quorum
    /// construction until the site's first `request_cs`.
    ///
    /// At large `N` most sites only ever arbitrate: they never need their
    /// own `O(√N)` quorum, and materializing one per site costs `O(N·√N)`
    /// memory up front (gigabytes at `N = 10⁵`). A lazily-initialized site
    /// starts with an empty `req_set` and pulls its quorum from `source`
    /// on the first request — wire behavior is identical, because a site
    /// that never requests never consults its quorum.
    pub fn with_lazy_quorum_source(
        site: SiteId,
        cfg: Config,
        source: Box<dyn QuorumSource>,
    ) -> Self {
        let mut me = Self::new(site, vec![site], cfg);
        me.cold.req_set.clear();
        me.cold.req_set_bits = SiteSet::new();
        me.cold.quorum_source = Some(source);
        me
    }

    /// This site's current quorum.
    pub fn req_set(&self) -> &[SiteId] {
        &self.cold.req_set
    }

    /// Requester phase (for tests and monitors).
    pub fn phase(&self) -> RequesterPhase {
        self.phase
    }

    /// The timestamp of the outstanding request, if any.
    pub fn current_request(&self) -> Option<Timestamp> {
        self.my_req
    }

    /// Whether the site has concluded no live quorum exists (§6 step 1).
    pub fn is_inaccessible(&self) -> bool {
        self.inaccessible
    }

    /// Arbiter lock (for tests and monitors).
    pub fn lock_holder(&self) -> Option<Timestamp> {
        self.lock
    }

    /// Number of requests queued at this arbiter.
    pub fn queued_requests(&self) -> usize {
        self.cold.req_queue.len()
    }

    /// Checks the structural invariants of this site's state, returning a
    /// description of the first violation found.
    ///
    /// Drivers call this between events in tests (the simulator-based
    /// suites use it through [`DelayOptimal::assert_invariants`]); none of
    /// these can fail unless the protocol logic itself is broken.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        // 1. The arbiter's lock holder is never simultaneously queued.
        if let Some(l) = self.lock {
            if self.cold.req_queue.contains(&l) {
                return Err(format!("{}: lock {l} also sits in req_queue", self.site));
            }
        }
        // 2. No lock and a non-empty queue only transiently inside a
        //    handler; between events it means a stalled grant. Exceptions:
        //    a rejoining arbiter deliberately queues without granting
        //    until its grace window closes, and requests from merely
        //    suspected sites stay parked (granting them is pointless —
        //    the reply could not be delivered — and they are re-examined
        //    on restoration or confirmation).
        if self.lock.is_none()
            && !self.rejoining
            && self
                .cold
                .req_queue
                .iter()
                .any(|r| !self.cold.known_failed.contains(r.site))
        {
            return Err(format!(
                "{}: free lock with {} queued requests",
                self.site,
                self.cold.req_queue.len()
            ));
        }
        // 3. Requester-phase consistency.
        match self.phase {
            RequesterPhase::Idle => {
                if self.my_req.is_some() {
                    return Err(format!("{}: idle but my_req set", self.site));
                }
                if !self.cold.replied.is_empty() {
                    return Err(format!("{}: idle but holds permissions", self.site));
                }
                if !self.cold.tran_stack.is_empty() {
                    return Err(format!("{}: idle but tran_stack non-empty", self.site));
                }
            }
            RequesterPhase::Waiting => {
                if self.my_req.is_none() {
                    return Err(format!("{}: waiting without a request", self.site));
                }
            }
            RequesterPhase::InCs => {
                if !self.has_all_replies() {
                    return Err(format!(
                        "{}: in CS without all permissions ({:?} of {:?})",
                        self.site, self.cold.replied, self.cold.req_set
                    ));
                }
            }
        }
        // 4. Transfer obligations only for permissions we actually hold.
        for e in &self.cold.tran_stack {
            if !self.cold.replied.contains(e.arbiter) {
                return Err(format!(
                    "{}: tran_stack entry for {} without its permission",
                    self.site, e.arbiter
                ));
            }
        }
        // 5. Permissions only from quorum members.
        for a in self.cold.replied.iter() {
            if !self.cold.req_set.contains(&a) {
                return Err(format!("{}: holds permission of non-member {a}", self.site));
            }
        }
        // 6. Internal work queue drained between events.
        if !self.cold.local_q.is_empty() {
            return Err(format!("{}: local queue not pumped", self.site));
        }
        Ok(())
    }

    /// Panics with the violation text if [`DelayOptimal::check_invariants`]
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn assert_invariants(&self) {
        if let Err(msg) = self.check_invariants() {
            panic!("protocol invariant violated: {msg}");
        }
    }

    // ------------------------------------------------------------------
    // Plumbing: route messages, short-circuiting self-addressed ones.
    // ------------------------------------------------------------------

    fn route(&mut self, fx: &mut Effects<Msg>, to: SiteId, body: Body) {
        let msg = Msg {
            clk: self.clock.current(),
            body,
        };
        if to == self.site {
            self.cold.local_q.push_back((self.site, msg));
        } else if !self.cold.known_failed.contains(to) {
            fx.send(to, msg);
        } else {
            // Messages to suspected sites are dropped at the source (§6: a
            // failed site's messages are pointless). But `known_failed` is
            // only a *suspicion*: if the target is in fact alive, dropping
            // a permission-returning message would leave its arbiter
            // convinced forever that our request is queued or holds its
            // lock. Record the returned request so restoration can send a
            // catch-all `Relinquish`.
            let returned = match &msg.body {
                Body::Release { holder_req, .. } => Some(*holder_req),
                Body::Yield { req } | Body::Relinquish { req } | Body::Abandon { req } => {
                    Some(*req)
                }
                _ => None,
            };
            if let Some(req) = returned {
                self.cold.withheld.add(to, req);
            }
        }
    }

    fn pump(&mut self, fx: &mut Effects<Msg>) {
        while let Some((from, msg)) = self.cold.local_q.pop_front() {
            self.dispatch(from, msg, fx);
        }
    }

    fn dispatch(&mut self, from: SiteId, msg: Msg, fx: &mut Effects<Msg>) {
        self.clock.observe(msg.clk);
        match msg.body {
            Body::Request { ts } => self.arb_request(ts, fx),
            Body::Reply {
                arbiter,
                req,
                transfer,
            } => self.req_reply(arbiter, req, transfer, fx),
            Body::Release {
                holder_req,
                forwarded_to,
            } => self.arb_release(holder_req, forwarded_to, fx),
            Body::Inquire {
                arbiter,
                holder_req,
                transfer,
            } => self.req_inquire(arbiter, holder_req, transfer, fx),
            Body::Fail { arbiter, req } => self.req_fail(arbiter, req, fx),
            Body::Yield { req } => self.arb_yield(from, req, fx),
            Body::Transfer {
                arbiter,
                beneficiary,
                holder_req,
            } => self.req_transfer(arbiter, beneficiary, holder_req, fx),
            Body::Relinquish { req } | Body::Abandon { req } => {
                self.arb_relinquish(from, req, fx);
            }
            Body::Claim { holds } => self.arb_claim(from, holds, fx),
        }
    }

    // ------------------------------------------------------------------
    // Arbiter role.
    // ------------------------------------------------------------------

    /// A.2: a request arrives at this arbiter.
    fn arb_request(&mut self, ts: Timestamp, fx: &mut Effects<Msg>) {
        self.clock.observe_ts(ts);
        if self.cold.confirmed_failed.contains(ts.site) {
            return; // in-flight request from a site that has since crashed
        }
        if self.cold.known_failed.contains(ts.site) {
            // Suspected but possibly alive: park the request instead of
            // granting or refusing (neither message could be delivered —
            // `route` drops traffic to suspects at source). Restoration
            // re-examines it; confirmation discards it.
            if self.lock != Some(ts) {
                self.cold.req_queue.insert(ts);
            }
            return;
        }
        match self.lock {
            None if self.rejoining => {
                // Rejoin grace window: a pre-crash holder may still claim
                // this permission; enqueue and grant at window close.
                self.cold.req_queue.insert(ts);
            }
            None => {
                // Permission free: grant immediately, do not enqueue.
                self.lock = Some(ts);
                self.route(
                    fx,
                    ts.site,
                    Body::Reply {
                        arbiter: self.site,
                        req: ts,
                        transfer: None,
                    },
                );
            }
            Some(lock) => {
                let old_head = self.cold.req_queue.head();
                self.cold.req_queue.insert(ts);
                if self.cold.req_queue.head() == Some(ts) {
                    // `ts` is the new next-in-line.
                    // An inquire is already outstanding iff the displaced
                    // head had priority over the lock holder.
                    let inquire_outstanding = old_head.is_some_and(|h| h.beats(&lock));
                    if ts.beats(&lock) {
                        // Preemption candidate: inquire (piggybacking the
                        // transfer), unless an inquire is already out.
                        self.notify_holder(lock, ts, !inquire_outstanding, fx);
                    } else {
                        // Next in line but behind the current lock: it gets
                        // the transfer promise AND a fail — §5.2 Case 1
                        // counts a fail here, and without it two
                        // self-granted requesters waiting on each other
                        // would never learn they must yield (deadlock).
                        self.notify_holder(lock, ts, false, fx);
                        self.route(
                            fx,
                            ts.site,
                            Body::Fail {
                                arbiter: self.site,
                                req: ts,
                            },
                        );
                    }
                    if let Some(h) = old_head {
                        // The displaced head is no longer next. If it had
                        // priority over the lock (so it never received a
                        // fail on arrival), fail it now (§5.2 Case 4).
                        if h.beats(&lock) {
                            self.route(
                                fx,
                                h.site,
                                Body::Fail {
                                    arbiter: self.site,
                                    req: h,
                                },
                            );
                        }
                    }
                } else {
                    // Not next in line: refuse so the requester knows it may
                    // have to yield permissions it holds elsewhere.
                    self.route(
                        fx,
                        ts.site,
                        Body::Fail {
                            arbiter: self.site,
                            req: ts,
                        },
                    );
                }
            }
        }
    }

    /// Sends the holder of `lock` a transfer for `next` (piggybacked with an
    /// inquire when preemption is wanted). With forwarding disabled
    /// (ablation), only the inquire — if any — is sent.
    fn notify_holder(
        &mut self,
        lock: Timestamp,
        next: Timestamp,
        want_inquire: bool,
        fx: &mut Effects<Msg>,
    ) {
        if want_inquire {
            self.route(
                fx,
                lock.site,
                Body::Inquire {
                    arbiter: self.site,
                    holder_req: lock,
                    transfer: self.cold.cfg.forwarding_enabled.then_some(next),
                },
            );
        } else if self.cold.cfg.forwarding_enabled {
            self.route(
                fx,
                lock.site,
                Body::Transfer {
                    arbiter: self.site,
                    beneficiary: next,
                    holder_req: lock,
                },
            );
        }
    }

    /// C.2: the lock holder exited the CS.
    fn arb_release(
        &mut self,
        holder_req: Timestamp,
        forwarded_to: Option<Timestamp>,
        fx: &mut Effects<Msg>,
    ) {
        if self.lock != Some(holder_req) {
            // The sender can only have held our permission via a forwarded
            // reply whose notification is still in flight: park the return
            // and replay it when that notification arrives.
            self.cold
                .early_returns
                .insert(holder_req, EarlyReturn::Released { forwarded_to });
            return;
        }
        self.advance_lock(forwarded_to, fx);
    }

    /// Moves the lock to the request the previous holder forwarded to (if
    /// any), replaying any returns that raced ahead of the forward
    /// notification; otherwise grants the next queued request.
    fn advance_lock(&mut self, forwarded_to: Option<Timestamp>, fx: &mut Effects<Msg>) {
        let mut fwd = forwarded_to;
        loop {
            match fwd {
                // Only a *confirmed* failure voids a forward: a merely
                // suspected beneficiary may be alive and about to enter the
                // CS on the forwarded reply, so its grant must stand.
                Some(b) if !self.cold.confirmed_failed.contains(b.site) => {
                    self.cold.req_queue.remove(&b);
                    match self.cold.early_returns.remove(&b) {
                        None => {
                            // `b` now holds our permission.
                            self.lock = Some(b);
                            if let Some(h) = self.cold.req_queue.head() {
                                // Tell the new holder who is next. If a
                                // higher-priority request slipped in while
                                // the forwarded reply was in flight, it
                                // must be able to preempt `b`: inquire.
                                let want_inquire = h.beats(&b);
                                self.notify_holder(b, h, want_inquire, fx);
                            }
                            return;
                        }
                        // `b` already returned the permission before we even
                        // learned it had it: chase the chain.
                        Some(EarlyReturn::Released { forwarded_to: f2 }) => {
                            fwd = f2;
                        }
                        Some(EarlyReturn::Yielded) => {
                            self.cold.req_queue.insert(b);
                            fwd = None;
                        }
                        Some(EarlyReturn::Relinquished) => {
                            fwd = None;
                        }
                    }
                }
                _ => {
                    // Permission returned (or forwarded to a site that has
                    // since failed): grant the next request ourselves.
                    self.grant_next(fx);
                    return;
                }
            }
        }
    }

    /// Grants the permission to the queue head (if any), piggybacking a
    /// transfer naming the subsequent request. Used on plain release, yield,
    /// and failure cleanup.
    fn grant_next(&mut self, fx: &mut Effects<Msg>) {
        if self.rejoining {
            // Grace window: leave the permission free and everything
            // queued; `on_rejoin_complete` grants once claims are in.
            self.lock = None;
            return;
        }
        // Requests from confirmed-failed sites are discarded outright;
        // requests from merely *suspected* sites stay parked in the queue
        // (their senders may be alive — restoration grants them normally)
        // but are passed over for granting. The collect only runs when a
        // failure has actually been confirmed — never on the hot path.
        if !self.cold.confirmed_failed.is_empty() {
            let discard: Vec<Timestamp> = self
                .cold
                .req_queue
                .iter()
                .filter(|r| self.cold.confirmed_failed.contains(r.site))
                .copied()
                .collect();
            for r in discard {
                self.cold.req_queue.remove(&r);
            }
        }
        let Some(p) = self
            .cold
            .req_queue
            .iter()
            .find(|r| !self.cold.known_failed.contains(r.site))
            .copied()
        else {
            self.lock = None;
            return;
        };
        self.cold.req_queue.remove(&p);
        self.lock = Some(p);
        // `p` is the highest-priority grantable request; a suspected entry
        // ahead of it cannot enter (its reply would be withheld), so no
        // inquire is needed here — matching the pop-the-minimum reasoning
        // of the fully-live case.
        let next = if self.cold.cfg.forwarding_enabled {
            self.cold.req_queue.head()
        } else {
            None
        };
        self.route(
            fx,
            p.site,
            Body::Reply {
                arbiter: self.site,
                req: p,
                transfer: next,
            },
        );
    }

    /// A.4: the current grantee yields the permission back.
    fn arb_yield(&mut self, from: SiteId, req: Timestamp, fx: &mut Effects<Msg>) {
        if req.site != from {
            return; // forged/garbled yield
        }
        if self.lock != Some(req) {
            // Early return: `req` got our permission via a forward we have
            // not heard about yet (see [`EarlyReturn`]).
            self.cold.early_returns.insert(req, EarlyReturn::Yielded);
            return;
        }
        // Re-queue the yielder, then grant the highest-priority request
        // (which may be the yielder itself if it is in fact the minimum).
        self.cold.req_queue.insert(req);
        self.grant_next(fx);
    }

    /// Rejoin resync answer: `from` has seen our rejoin announcement and
    /// reports whether it holds our arbiter permission. The grace window
    /// cannot close until every awaited peer has answered (see
    /// [`Protocol::rejoin_pending`]), so — unlike a fixed timeout — a
    /// slow link cannot deliver a positive claim to a permission that has
    /// already been granted to someone else.
    fn arb_claim(&mut self, from: SiteId, holds: Option<Timestamp>, fx: &mut Effects<Msg>) {
        self.cold.rejoin_awaiting.remove(from);
        let Some(req) = holds else {
            return; // answer recorded; nothing claimed
        };
        if req.site != from || self.cold.confirmed_failed.contains(from) {
            return;
        }
        if self.lock == Some(req) {
            return; // already consistent
        }
        if self.lock.is_none() {
            // Re-establish the pre-crash grant. During the rejoin window
            // this is the expected path; outside it, it can only mean the
            // permission is genuinely free (nothing was granted since).
            self.cold.req_queue.remove(&req);
            self.lock = Some(req);
        } else {
            // Conflict: the permission is already held — possible only
            // through a stale or duplicated claim (the answer gate keeps
            // genuine claims inside the window). Ask the claimant to
            // yield; its §3.1 machinery hands the permission back once it
            // learns it cannot be next.
            self.route(
                fx,
                from,
                Body::Inquire {
                    arbiter: self.site,
                    holder_req: req,
                    transfer: None,
                },
            );
        }
    }

    /// A request is withdrawn entirely (quorum reconstruction, §6).
    fn arb_relinquish(&mut self, from: SiteId, req: Timestamp, fx: &mut Effects<Msg>) {
        if req.site != from {
            return;
        }
        self.cold.req_queue.remove(&req);
        if self.lock == Some(req) {
            self.grant_next(fx);
        } else {
            // Park the return unconditionally: still being queued does NOT
            // prove the permission never reached `req`. With forwarding, a
            // queued request can already hold it through an in-flight
            // transfer (the grant travels holder → beneficiary on a
            // different link than the holder's `release`), so this
            // relinquish can overtake the `release(…, forwarded_to: req)`
            // that would move the lock onto the withdrawn request —
            // `advance_lock` must find the parked entry or it wedges the
            // lock on a request that no longer exists. When no forward was
            // in flight the entry is simply never consumed: `req`'s
            // timestamp left the queue for good, so no future chain can
            // name it.
            self.cold
                .early_returns
                .insert(req, EarlyReturn::Relinquished);
        }
    }

    // ------------------------------------------------------------------
    // Requester role.
    // ------------------------------------------------------------------

    fn is_current(&self, req: Timestamp) -> bool {
        self.my_req == Some(req)
    }

    fn has_all_replies(&self) -> bool {
        self.cold.req_set_bits.is_subset(&self.cold.replied)
    }

    /// A.6: a reply (direct or forwarded) arrives.
    fn req_reply(
        &mut self,
        arbiter: SiteId,
        req: Timestamp,
        transfer: Option<Timestamp>,
        fx: &mut Effects<Msg>,
    ) {
        if !self.is_current(req) {
            // A grant for a request we have abandoned (a client abort, or a
            // quorum switch after a failure). Hand the permission straight
            // back so the arbiter is not wedged on us forever.
            if req.site == self.site {
                self.abort_ctrs.orphan_grants += 1;
                self.route(fx, arbiter, Body::Relinquish { req });
            }
            return;
        }
        if self.phase != RequesterPhase::Waiting {
            return; // duplicate grant while already in the CS: harmless
        }
        self.cold.replied.insert(arbiter);
        if let Some(b) = transfer {
            self.push_transfer(arbiter, b);
        }
        // A.6: re-examine inquires that arrived before this reply. The
        // queue is empty on the uncontended path — skip the collect then.
        if !self.cold.inq_queue.is_empty() {
            let deferred: Vec<PendingInquire> = self
                .cold
                .inq_queue
                .iter()
                .filter(|p| p.arbiter == arbiter)
                .copied()
                .collect();
            self.cold.inq_queue.retain(|p| p.arbiter != arbiter);
            for p in deferred {
                self.req_inquire(p.arbiter, p.holder_req, p.transfer, fx);
            }
        }
        self.maybe_enter(fx);
    }

    fn maybe_enter(&mut self, fx: &mut Effects<Msg>) {
        if self.phase == RequesterPhase::Waiting && self.has_all_replies() {
            self.phase = RequesterPhase::InCs;
            // The race against an in-flight abort is resolved here: entry
            // happened, so the deadline is void (clean entry, not abort).
            self.deadline = None;
            // Pending inquires are answered by the release we will send on
            // exit; the paper drops them here.
            self.cold.inq_queue.clear();
            fx.enter_cs();
        }
    }

    fn push_transfer(&mut self, arbiter: SiteId, beneficiary: Timestamp) {
        self.cold.tran_stack.push(TranEntry {
            arbiter,
            beneficiary,
        });
    }

    /// A.5: a transfer obligation arrives from an arbiter.
    fn req_transfer(
        &mut self,
        arbiter: SiteId,
        beneficiary: Timestamp,
        holder_req: Timestamp,
        fx: &mut Effects<Msg>,
    ) {
        let _ = fx;
        // Valid only if it refers to our live request *and* we actually hold
        // that arbiter's permission (the paper's `replied[j] = 1` check; the
        // timestamp guard additionally rejects cross-request races).
        if !self.is_current(holder_req)
            || self.phase == RequesterPhase::Idle
            || !self.cold.replied.contains(arbiter)
        {
            return; // outdated transfer: discard (A.5)
        }
        self.push_transfer(arbiter, beneficiary);
    }

    /// A.3: an arbiter inquires whether we can yield its permission.
    fn req_inquire(
        &mut self,
        arbiter: SiteId,
        holder_req: Timestamp,
        transfer: Option<Timestamp>,
        fx: &mut Effects<Msg>,
    ) {
        if !self.is_current(holder_req) || self.phase == RequesterPhase::Idle {
            return; // stale: refers to a request we have already released
        }
        if self.phase == RequesterPhase::InCs {
            // We are in the CS (or already fully granted): the release we
            // send on exit answers the inquire. The piggybacked transfer is
            // still live — record it so exit forwards our reply.
            if let Some(b) = transfer {
                if self.cold.replied.contains(arbiter) {
                    self.push_transfer(arbiter, b);
                }
            }
            return;
        }
        if !self.cold.replied.contains(arbiter) {
            // Inquire outran the reply (possible: the reply may be forwarded
            // through a proxy on a different channel). Defer, keeping the
            // piggybacked transfer (re-dispatched by A.6/A.7).
            self.cold.inq_queue.push(PendingInquire {
                arbiter,
                holder_req,
                transfer,
            });
            return;
        }
        if let Some(b) = transfer {
            self.push_transfer(arbiter, b);
        }
        if self.failed {
            // We cannot be the next to enter: yield this permission.
            self.do_yield(arbiter, fx);
        } else {
            // Still hopeful (no fail received, no yield sent): hold on. If a
            // fail arrives later, A.7 revisits this entry and yields then.
            self.cold.inq_queue.push(PendingInquire {
                arbiter,
                holder_req,
                transfer: None, // transfer already recorded above
            });
        }
    }

    fn do_yield(&mut self, arbiter: SiteId, fx: &mut Effects<Msg>) {
        let req = self.my_req.expect("yield requires an outstanding request");
        self.cold.replied.remove(arbiter);
        self.failed = true; // sending a yield sets `failed` (§3.1)
                            // Transfers received on behalf of this arbiter are void: we no
                            // longer hold its permission (A.3).
        self.cold.tran_stack.retain(|e| e.arbiter != arbiter);
        self.route(fx, arbiter, Body::Yield { req });
    }

    /// A.7: an arbiter refuses us.
    fn req_fail(&mut self, arbiter: SiteId, req: Timestamp, fx: &mut Effects<Msg>) {
        if !self.is_current(req) || self.phase != RequesterPhase::Waiting {
            return; // stale fail
        }
        let _ = arbiter;
        self.failed = true;
        // Revisit deferred inquires: with `failed` now set they yield.
        let deferred = std::mem::take(&mut self.cold.inq_queue);
        for p in deferred {
            self.req_inquire(p.arbiter, p.holder_req, p.transfer, fx);
        }
    }

    // ------------------------------------------------------------------
    // Fault tolerance (§6).
    // ------------------------------------------------------------------

    /// Aborts the current wait (if any) and reissues the request against a
    /// freshly constructed quorum. Called when a quorum member fails.
    /// Withdraws the outstanding request from every old-quorum arbiter
    /// (queued or granted alike) and resets requester state to idle.
    fn withdraw_current(&mut self, fx: &mut Effects<Msg>) {
        if let Some(req) = self.my_req {
            // Index loop: `route` never touches `req_set`, and indexing
            // avoids cloning the quorum on every withdrawal.
            for i in 0..self.cold.req_set.len() {
                let a = self.cold.req_set[i];
                self.route(fx, a, Body::Relinquish { req });
            }
        }
        self.cold.replied.clear();
        self.cold.tran_stack.clear();
        self.cold.inq_queue.clear();
        self.failed = false;
        self.my_req = None;
        self.phase = RequesterPhase::Idle;
    }

    /// Client-side abort: withdraws the outstanding request (or cancels the
    /// parked want) for good. Returns `true` iff something was withdrawn.
    ///
    /// Unlike [`DelayOptimal::withdraw_current`] (§6, which re-issues
    /// against a fresh quorum), an abort is final: the `Abandon` sent to
    /// every quorum member removes the request wherever it sits — queued,
    /// granted, or mid-forward. The arbiter-side races (abort overtaking a
    /// `Transfer`/`Inquire`, a forwarded grant overtaking the abort) resolve
    /// through the same [`EarlyReturn`] machinery as §6 withdrawal; a grant
    /// that arrives after the abort is returned by `req_reply`'s
    /// not-current path and counted as an orphan.
    fn do_abort(&mut self, fx: &mut Effects<Msg>) -> bool {
        self.deadline = None;
        if self.want_cs {
            // Parked want: nothing ever reached the wire. Cancel it locally
            // so a later heal's `unpark_want` cannot resurrect the request.
            self.want_cs = false;
            self.abort_ctrs.aborts += 1;
            return true;
        }
        if self.phase != RequesterPhase::Waiting {
            // Idle: nothing to abort. In the CS: the grant stands — the
            // only way out of an acquired lock is `release_cs`.
            return false;
        }
        if let Some(req) = self.my_req {
            for i in 0..self.cold.req_set.len() {
                let a = self.cold.req_set[i];
                self.route(fx, a, Body::Abandon { req });
            }
        }
        self.cold.replied.clear();
        self.cold.tran_stack.clear();
        self.cold.inq_queue.clear();
        self.failed = false;
        self.my_req = None;
        self.phase = RequesterPhase::Idle;
        self.abort_ctrs.aborts += 1;
        self.pump(fx);
        true
    }

    fn refresh_quorum(&mut self) -> bool {
        let Some(source) = self.cold.quorum_source.as_mut() else {
            // Fixed quorum containing a failed member: inaccessible.
            self.inaccessible = true;
            return false;
        };
        // `QuorumSource` is an API boundary with observable ordered-set
        // semantics; the conversion only runs on the cold failure path.
        match source.quorum_avoiding(self.site, &self.cold.known_failed.to_btree()) {
            Some(q) => {
                self.cold.req_set_bits = q.iter().copied().collect();
                self.cold.req_set = q;
                self.inaccessible = false;
                true
            }
            None => {
                self.inaccessible = true;
                false
            }
        }
    }

    /// Re-evaluates `inaccessible` after the suspicion set shrank: a site
    /// that had no live quorum may have one again.
    fn recompute_accessibility(&mut self) {
        if !self.inaccessible {
            return;
        }
        if self.cold.quorum_source.is_some() {
            self.refresh_quorum();
        } else {
            self.inaccessible = self
                .cold
                .req_set
                .iter()
                .any(|m| self.cold.known_failed.contains(*m));
        }
    }

    /// Re-issues a want parked by [`Protocol::request_cs`] (or a suspicion
    /// that left no live quorum) once accessibility has returned.
    fn unpark_want(&mut self, fx: &mut Effects<Msg>) {
        if !self.want_cs || self.inaccessible || self.phase != RequesterPhase::Idle {
            return;
        }
        if (self.cold.req_set.is_empty()
            || self
                .cold
                .req_set
                .iter()
                .any(|m| self.cold.known_failed.contains(*m)))
            && !self.refresh_quorum()
        {
            return; // still no live quorum; stay parked
        }
        self.want_cs = false;
        self.begin_request(fx);
    }

    fn begin_request(&mut self, fx: &mut Effects<Msg>) {
        debug_assert_eq!(self.phase, RequesterPhase::Idle);
        let ts = Timestamp {
            seq: self.clock.tick(),
            site: self.site,
        };
        self.my_req = Some(ts);
        self.phase = RequesterPhase::Waiting;
        self.cold.replied.clear();
        self.failed = false;
        self.cold.inq_queue.clear();
        self.cold.tran_stack.clear();
        for i in 0..self.cold.req_set.len() {
            let j = self.cold.req_set[i];
            self.route(fx, j, Body::Request { ts });
        }
        self.maybe_enter(fx); // degenerate singleton quorum {self}
    }
}

impl Protocol for DelayOptimal {
    type Msg = Msg;

    fn site(&self) -> SiteId {
        self.site
    }

    fn request_cs(&mut self, fx: &mut Effects<Msg>) {
        assert_eq!(
            self.phase,
            RequesterPhase::Idle,
            "one outstanding CS request per site"
        );
        if self.inaccessible {
            self.want_cs = true;
            return;
        }
        // A suspected member cannot be requested from: `route` drops the
        // Request at source and nothing would ever re-send it, so a later
        // restoration would leave this site waiting forever on a reply it
        // never asked for. Reconstruct the quorum around the suspects
        // first (§6 step 1); with no live quorum the request parks until
        // accessibility returns. An empty `req_set` is a lazily
        // initialized site's first request: construct the quorum now.
        if (self.cold.req_set.is_empty()
            || self
                .cold
                .req_set
                .iter()
                .any(|m| self.cold.known_failed.contains(*m)))
            && !self.refresh_quorum()
        {
            self.want_cs = true;
            return;
        }
        self.begin_request(fx);
        self.pump(fx);
    }

    fn release_cs(&mut self, fx: &mut Effects<Msg>) {
        assert_eq!(self.phase, RequesterPhase::InCs, "not in CS");
        let my_req = self.my_req.expect("in CS implies a request");

        // C.1: honor the newest transfer per arbiter — forward that
        // arbiter's reply directly to the named beneficiary (the
        // delay-optimal hop), discarding older transfers from the same
        // arbiter.
        let mut forwarded: Vec<(SiteId, Timestamp)> = Vec::new();
        let mut seen = SiteSet::new();
        while let Some(e) = self.cold.tran_stack.pop() {
            if !self.cold.cfg.forwarding_enabled {
                continue;
            }
            if self.cold.known_failed.contains(e.beneficiary.site) {
                continue; // §6 case 2: dead beneficiaries are purged
            }
            if seen.insert(e.arbiter) {
                self.route(
                    fx,
                    e.beneficiary.site,
                    Body::Reply {
                        arbiter: e.arbiter,
                        req: e.beneficiary,
                        transfer: None,
                    },
                );
                forwarded.push((e.arbiter, e.beneficiary));
            }
        }

        // C.2: tell every arbiter whether its permission was forwarded.
        for i in 0..self.cold.req_set.len() {
            let j = self.cold.req_set[i];
            let fwd = forwarded.iter().find(|(a, _)| *a == j).map(|(_, b)| *b);
            self.route(
                fx,
                j,
                Body::Release {
                    holder_req: my_req,
                    forwarded_to: fwd,
                },
            );
        }

        self.phase = RequesterPhase::Idle;
        self.my_req = None;
        self.cold.replied.clear();
        self.failed = false;
        self.cold.inq_queue.clear();
        self.cold.tran_stack.clear();
        self.pump(fx);
    }

    fn handle(&mut self, from: SiteId, msg: Msg, fx: &mut Effects<Msg>) {
        self.dispatch(from, msg, fx);
        self.pump(fx);
    }

    fn in_cs(&self) -> bool {
        self.phase == RequesterPhase::InCs
    }

    fn wants_cs(&self) -> bool {
        self.phase == RequesterPhase::Waiting
    }

    fn abort_cs(&mut self, fx: &mut Effects<Msg>) -> bool {
        self.do_abort(fx)
    }

    fn abortable(&self) -> bool {
        self.phase == RequesterPhase::Waiting || self.want_cs
    }

    fn set_deadline(&mut self, deadline: Option<u64>) {
        self.deadline = deadline;
    }

    fn abort_counters(&self) -> Option<AbortCounters> {
        Some(self.abort_ctrs)
    }

    fn next_timer(&self) -> Option<u64> {
        // Only an unfulfilled request keeps the deadline armed; entry and
        // abort both clear it.
        match self.deadline {
            Some(d) if self.phase == RequesterPhase::Waiting || self.want_cs => Some(d),
            _ => None,
        }
    }

    fn on_timer(&mut self, now: u64, fx: &mut Effects<Msg>) {
        if let Some(d) = self.deadline {
            if now >= d && self.do_abort(fx) {
                self.abort_ctrs.deadline_aborts += 1;
            }
        }
    }

    /// §6: handle the `failure(i)` notice — a *definitive* failure (the
    /// paper's oracle, or the detector's post-lease confirmation). Only
    /// here may a lock held by the failed site be reclaimed and re-granted;
    /// mere suspicion ([`Protocol::on_site_suspected`]) never does that.
    fn on_site_failure(&mut self, failed: SiteId, fx: &mut Effects<Msg>) {
        if failed == self.site || !self.cold.confirmed_failed.insert(failed) {
            return;
        }
        self.cold.known_failed.insert(failed);
        // A confirmed-dead peer can no longer answer a rejoin.
        self.cold.rejoin_awaiting.remove(failed);

        // --- Arbiter-side cleanup -------------------------------------
        // Case 1: the failed site's request sits in our req_queue.
        let was_head = self.cold.req_queue.head().is_some_and(|h| h.site == failed);
        let removed = self.cold.req_queue.remove_site(failed);
        if was_head && !removed.is_empty() {
            if let (Some(lock), Some(new_head)) = (self.lock, self.cold.req_queue.head()) {
                if lock.site != failed {
                    // The dead request was next in line: point the holder at
                    // the new head instead (§6 case 1).
                    let old_head = removed[0];
                    let inquire_outstanding = old_head.beats(&lock);
                    let want_inquire = new_head.beats(&lock) && !inquire_outstanding;
                    self.notify_holder(lock, new_head, want_inquire, fx);
                }
            }
        }
        // Case 3: the failed site holds our permission: reclaim and re-grant.
        if self.lock.is_some_and(|l| l.site == failed) {
            self.grant_next(fx);
        }

        // --- Holder-side cleanup (§6 case 2) ---------------------------
        // Drop transfer obligations benefiting the dead site, and forget
        // permissions supposedly granted by it.
        self.cold
            .tran_stack
            .retain(|e| e.beneficiary.site != failed);
        self.cold.inq_queue.retain(|p| p.arbiter != failed);

        // --- Requester-side: quorum reconstruction (§6 step 1) ---------
        if self.cold.req_set.contains(&failed) && self.phase != RequesterPhase::InCs {
            let wanted = self.phase == RequesterPhase::Waiting;
            // Withdraw from the OLD quorum first, then reconstruct.
            self.withdraw_current(fx);
            if self.refresh_quorum() && wanted {
                self.begin_request(fx);
            }
        }
        self.pump(fx);
    }

    /// A failure detector *suspects* `site` (missed heartbeats). The
    /// suspicion may be false — `site` may be partitioned away while
    /// actively inside the CS — so only *revocable* reactions run here:
    /// route around the suspect (drop traffic to it at source) and, as a
    /// requester, withdraw and re-issue against a quorum avoiding it. The
    /// arbiter-side cleanup that reclaims a lock the suspect holds is
    /// deliberately NOT run: re-granting a falsely suspected holder's lock
    /// would let a second site into the CS. That cleanup waits for the
    /// detector's confirmed [`Protocol::on_site_failure`] (or the
    /// suspect's own rejoin, which proves its old grant is abandoned).
    fn on_site_suspected(&mut self, site: SiteId, fx: &mut Effects<Msg>) {
        if site == self.site || !self.cold.known_failed.insert(site) {
            return;
        }
        // Requester-side quorum reconstruction (§6 step 1). Relinquishes
        // to the suspect itself are withheld by `route` and flushed on
        // restoration.
        if self.cold.req_set.contains(&site) && self.phase != RequesterPhase::InCs {
            let wanted = self.phase == RequesterPhase::Waiting;
            self.withdraw_current(fx);
            if wanted {
                if self.refresh_quorum() {
                    self.begin_request(fx);
                } else {
                    // No live quorum right now: park the want rather than
                    // dropping it, so the heal re-issues the request.
                    self.want_cs = true;
                }
            } else {
                let _ = self.refresh_quorum();
            }
        }
        self.pump(fx);
    }

    /// A suspicion proved false: reintegrate `site`.
    ///
    /// Mutual exclusion is unaffected — suspicion only ever gates message
    /// dropping, quorum selection, and *deferral* of grants (a suspect's
    /// queued requests are parked, never re-granted elsewhere) — so
    /// reintegration is (1) stop dropping its messages at source, (2)
    /// re-admit it to quorum selection, (3) flush the permission-returning
    /// messages we dropped while it was suspected, so its arbiter stops
    /// waiting on requests we no longer have, and (4) grant our own
    /// permission if it stalled parked behind the suspicion.
    fn on_site_restored(&mut self, site: SiteId, fx: &mut Effects<Msg>) {
        if !self.cold.known_failed.remove(site) {
            return;
        }
        self.cold.confirmed_failed.remove(site);
        if let Some(reqs) = self.cold.withheld.take(site) {
            for req in reqs {
                self.route(fx, site, Body::Relinquish { req });
            }
        }
        self.recompute_accessibility();
        self.unpark_want(fx);
        // Un-stall the arbiter: requests parked while their senders were
        // suspected become grantable again.
        if !self.rejoining && self.lock.is_none() && !self.cold.req_queue.is_empty() {
            self.grant_next(fx);
        }
        self.pump(fx);
    }

    /// A crashed peer restarted with fresh state: purge every trace of its
    /// old incarnation, reintegrate it, and answer its rejoin resync.
    fn on_peer_rejoined(&mut self, site: SiteId, incarnation: u64, fx: &mut Effects<Msg>) {
        let _ = incarnation; // used by the transport layer, not here
                             // The rejoiner lost its requester state: its old requests will
                             // never be released or withdrawn. Purge them from our arbiter.
        let _ = self.cold.req_queue.remove_site(site);
        if self.lock.is_some_and(|l| l.site == site) {
            self.grant_next(fx);
        }
        self.cold.early_returns.retain(|k, _| k.site != site);
        self.cold.tran_stack.retain(|e| e.beneficiary.site != site);
        self.cold.inq_queue.retain(|p| p.arbiter != site);

        // Reintegrate (the withheld returns are moot: the fresh arbiter
        // has no queue to unwedge).
        self.cold.known_failed.remove(site);
        self.cold.confirmed_failed.remove(site);
        self.cold.withheld.discard(site);
        self.recompute_accessibility();
        self.unpark_want(fx);
        // A restarted peer has nothing to claim against our own rejoin.
        self.cold.rejoin_awaiting.remove(site);
        // Purging its queued requests may also un-stall our arbiter.
        if !self.rejoining && self.lock.is_none() && !self.cold.req_queue.is_empty() {
            self.grant_next(fx);
        }

        // Answer the resync: EVERY peer reports, even with nothing to
        // claim, because the rejoined arbiter refuses to grant until all
        // its peers have answered (see `Body::Claim`).
        let holds = if self.phase != RequesterPhase::Idle && self.cold.replied.contains(site) {
            self.my_req
        } else {
            None
        };
        self.route(fx, site, Body::Claim { holds });
        // Our request sat in its (lost) queue: re-issue it. FIFO transport
        // delivers the answer first, so the re-issued request lands in the
        // rejoiner's queue after the claim is accounted.
        if holds.is_none()
            && self.cold.req_set.contains(&site)
            && self.phase == RequesterPhase::Waiting
        {
            if let Some(my_req) = self.my_req {
                self.route(fx, site, Body::Request { ts: my_req });
            }
        }
        self.pump(fx);
    }

    /// This site restarted after a crash with fresh state: hold off
    /// arbitration until peers' `Claim`s re-establish who held our
    /// permission (the detector layer announces the rejoin and times the
    /// grace window; the window cannot close while
    /// [`Protocol::rejoin_pending`] still reports unanswered peers).
    fn on_recover(&mut self, fx: &mut Effects<Msg>) {
        self.rejoining = true;
        self.cold.rejoin_awaiting = self
            .cold
            .peer_universe
            .iter()
            .copied()
            .filter(|&p| p != self.site)
            .collect();
        let _ = fx;
    }

    /// The rejoin grace window closed (every awaited peer has answered and
    /// the detector's grace timer expired): resume arbitration.
    fn on_rejoin_complete(&mut self, fx: &mut Effects<Msg>) {
        self.rejoining = false;
        self.cold.rejoin_awaiting.clear();
        if self.lock.is_none() {
            // Resolve pre-crash forward chains that were parked during the
            // window: a holder that exited while we were down may have
            // forwarded our permission onward, and its `Release` straggled
            // in over the reset link (necessarily before its rejoin
            // answer, which rides the same FIFO channel). The live holder
            // — if any — is a forward target that never itself returned
            // the permission.
            let returned: BTreeSet<Timestamp> = self.cold.early_returns.keys().copied().collect();
            let tail = self
                .cold
                .early_returns
                .values()
                .filter_map(|e| match e {
                    EarlyReturn::Released { forwarded_to } => *forwarded_to,
                    _ => None,
                })
                .find(|t| !returned.contains(t) && !self.cold.confirmed_failed.contains(t.site));
            if let Some(t) = tail {
                self.cold.req_queue.remove(&t);
                self.lock = Some(t);
            }
            // A free lock at window close means every forward chain has
            // fully drained, so whatever remains parked is pre-crash-era
            // garbage (yields and relinquishes of requests re-issued over
            // the resync, or chain links consumed above): keyed by
            // timestamps that can never become the lock again. A *held*
            // lock, by contrast, may still have an in-flight forward
            // notification racing a parked return — leave the map alone
            // then, exactly as in normal operation.
            self.cold.early_returns.clear();
        }
        // Replay the parked requests as if they arrived now. The grace
        // window's `arb_request` arm enqueues without answering, but the
        // §5.2 accounting — fail the losers, promise the transfer, inquire
        // on preemption — is what tells a tied requester it must yield
        // permissions it holds elsewhere. A bare `grant_next` here would
        // grant the head silently: two self-granted requesters whose rival
        // requests both sat out a rejoin window would then wait on each
        // other forever. Replaying in priority order reproduces the
        // arrival-time messages exactly (the winner first, so every later
        // request sees the lock it loses to).
        let parked: Vec<Timestamp> = self.cold.req_queue.iter().copied().collect();
        for r in &parked {
            self.cold.req_queue.remove(r);
        }
        for r in parked {
            self.arb_request(r, fx);
        }
        self.pump(fx);
    }

    fn rejoin_pending(&self) -> bool {
        self.rejoining && !self.cold.rejoin_awaiting.is_empty()
    }

    fn set_peer_universe(&mut self, peers: &[SiteId]) {
        self.cold.peer_universe = peers.iter().copied().filter(|&p| p != self.site).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: u32, quorum: &[u32]) -> Vec<DelayOptimal> {
        let q: Vec<SiteId> = quorum.iter().map(|&s| SiteId(s)).collect();
        (0..n)
            .map(|i| DelayOptimal::new(SiteId(i), q.clone(), Config::default()))
            .collect()
    }

    /// Synchronously delivers all in-flight messages until quiescence,
    /// in FIFO order per link. Returns the total number of wire messages.
    fn settle(sites: &mut [DelayOptimal], inflight: &mut VecDeque<(SiteId, SiteId, Msg)>) -> usize {
        let mut count = 0;
        while let Some((from, to, msg)) = inflight.pop_front() {
            count += 1;
            let mut fx = Effects::new();
            sites[to.index()].handle(from, msg, &mut fx);
            for (t, m) in fx.take_sends() {
                inflight.push_back((to, t, m));
            }
        }
        count
    }

    fn request(sites: &mut [DelayOptimal], s: u32, inflight: &mut VecDeque<(SiteId, SiteId, Msg)>) {
        let mut fx = Effects::new();
        sites[s as usize].request_cs(&mut fx);
        for (t, m) in fx.take_sends() {
            inflight.push_back((SiteId(s), t, m));
        }
    }

    fn release(sites: &mut [DelayOptimal], s: u32, inflight: &mut VecDeque<(SiteId, SiteId, Msg)>) {
        let mut fx = Effects::new();
        sites[s as usize].release_cs(&mut fx);
        for (t, m) in fx.take_sends() {
            inflight.push_back((SiteId(s), t, m));
        }
    }

    fn in_cs_count(sites: &[DelayOptimal]) -> usize {
        sites.iter().filter(|s| s.in_cs()).count()
    }

    #[test]
    fn uncontended_entry_costs_3_k_minus_1_messages() {
        // Quorum {0,1,2}, K = 3: request + reply + release = 3(K-1) = 6.
        let mut sites = net(3, &[0, 1, 2]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        let msgs_req_reply = settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs());
        assert_eq!(msgs_req_reply, 4); // 2 requests + 2 replies
        release(&mut sites, 0, &mut inflight);
        let msgs_release = settle(&mut sites, &mut inflight);
        assert_eq!(msgs_release, 2); // 2 releases
        assert_eq!(msgs_req_reply + msgs_release, 6);
    }

    #[test]
    fn singleton_quorum_grants_immediately_with_zero_messages() {
        let mut s = DelayOptimal::new(SiteId(0), vec![SiteId(0)], Config::default());
        let mut fx = Effects::new();
        s.request_cs(&mut fx);
        let (sends, entered) = fx.drain();
        assert!(!entered.is_empty());
        assert!(sends.is_empty());
        assert!(s.in_cs());
        s.release_cs(&mut fx);
        let (sends, _) = fx.drain();
        assert!(sends.is_empty());
        assert!(!s.in_cs());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let mut sites = net(3, &[0, 1, 2]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        request(&mut sites, 1, &mut inflight);
        request(&mut sites, 2, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert_eq!(in_cs_count(&sites), 1);
        // Drain the CS in turn; each exit admits exactly one new site.
        for _ in 0..3 {
            let cur = sites.iter().position(|s| s.in_cs()).expect("someone in CS") as u32;
            release(&mut sites, cur, &mut inflight);
            settle(&mut sites, &mut inflight);
            assert!(in_cs_count(&sites) <= 1);
        }
        assert_eq!(in_cs_count(&sites), 0);
        assert!(sites.iter().all(|s| !s.wants_cs()));
    }

    #[test]
    fn priority_order_is_respected_under_fifo_delivery() {
        // Site 1 and 2 request while 0 is in the CS; 1's request has the
        // smaller timestamp, so 1 enters before 2.
        let mut sites = net(3, &[0, 1, 2]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs());
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        request(&mut sites, 2, &mut inflight);
        settle(&mut sites, &mut inflight);
        release(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[1].in_cs());
        assert!(!sites[2].in_cs());
        release(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[2].in_cs());
    }

    #[test]
    fn exit_forwards_reply_directly_to_next_requester() {
        // With 0 in CS and 1 queued everywhere, 0's release must carry a
        // forwarded reply straight to 1 (the delay-optimal hop): after
        // delivering only messages 0 -> 1 (not the arbiter round trips),
        // 1 must already be in the CS.
        let mut sites = net(2, &[0, 1]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs());
        assert!(sites[1].wants_cs());

        let mut fx = Effects::new();
        sites[0].release_cs(&mut fx);
        let sends = fx.take_sends();
        // Deliver only what went directly to site 1.
        let mut fx1 = Effects::new();
        for (to, m) in sends {
            if to == SiteId(1) {
                sites[1].handle(SiteId(0), m, &mut fx1);
            }
        }
        assert!(
            sites[1].in_cs(),
            "site 1 must enter after one message hop from the exiting site"
        );
    }

    #[test]
    fn ablation_disables_forwarding() {
        // Same scenario as above but with forwarding off: after delivering
        // only the exiting site's direct messages to site 1, site 1 is NOT
        // in the CS (the grant must go through the arbiter: two hops).
        let q = vec![SiteId(0), SiteId(1)];
        let cfg = Config {
            forwarding_enabled: false,
        };
        let mut sites: Vec<DelayOptimal> = (0..2)
            .map(|i| DelayOptimal::new(SiteId(i), q.clone(), cfg.clone()))
            .collect();
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs());

        let mut fx = Effects::new();
        sites[0].release_cs(&mut fx);
        let sends = fx.take_sends();
        let mut fx1 = Effects::new();
        let mut to_arbiter = Vec::new();
        for (to, m) in sends {
            if to == SiteId(1) {
                // Only releases flow 0->1 here; 1 is an arbiter for 0.
                sites[1].handle(SiteId(0), m.clone(), &mut fx1);
            } else {
                to_arbiter.push((to, m));
            }
        }
        // 1 got the release (as arbiter) and granted itself... no: 1's own
        // arbiter-side then replies to 1 locally. The direct-hop claim for
        // the ablation is about quorums with third-party arbiters; with a
        // 2-site quorum the arbiter IS site 1, so entry via release is the
        // 2T path collapsed. Just assert the protocol still works end to
        // end and no Transfer message was ever produced.
        let mut inflight: VecDeque<(SiteId, SiteId, Msg)> = VecDeque::new();
        for (t, m) in fx1.take_sends() {
            inflight.push_back((SiteId(1), t, m));
        }
        for (t, m) in to_arbiter {
            inflight.push_back((SiteId(0), t, m));
        }
        while let Some((from, to, m)) = inflight.pop_front() {
            assert!(
                !matches!(m.body, Body::Transfer { .. }),
                "no transfers in ablation"
            );
            let mut fx = Effects::new();
            sites[to.index()].handle(from, m, &mut fx);
            for (t, m2) in fx.take_sends() {
                inflight.push_back((to, t, m2));
            }
        }
        assert!(sites[1].in_cs());
    }

    #[test]
    fn stale_messages_are_ignored() {
        let mut s = DelayOptimal::new(SiteId(0), vec![SiteId(0), SiteId(1)], Config::default());
        let mut fx = Effects::new();
        // Fail/inquire/transfer/reply for a request we never made.
        let ghost = Timestamp::new(99, SiteId(0));
        for body in [
            Body::Fail {
                arbiter: SiteId(1),
                req: ghost,
            },
            Body::Inquire {
                arbiter: SiteId(1),
                holder_req: ghost,
                transfer: None,
            },
            Body::Transfer {
                arbiter: SiteId(1),
                beneficiary: Timestamp::new(100, SiteId(2)),
                holder_req: ghost,
            },
        ] {
            s.handle(
                SiteId(1),
                Msg {
                    clk: SeqNum(100),
                    body,
                },
                &mut fx,
            );
        }
        let (sends, entered) = fx.drain();
        assert!(sends.is_empty());
        assert!(entered.is_empty());
        // A stale *grant*, however, is answered with a relinquish so the
        // arbiter is not wedged waiting on a request we no longer hold.
        s.handle(
            SiteId(1),
            Msg {
                clk: SeqNum(100),
                body: Body::Reply {
                    arbiter: SiteId(1),
                    req: ghost,
                    transfer: None,
                },
            },
            &mut fx,
        );
        let (sends, entered) = fx.drain();
        assert_eq!(sends.len(), 1);
        assert!(entered.is_empty());
        assert_eq!(sends[0].0, SiteId(1));
        assert!(matches!(sends[0].1.body, Body::Relinquish { req } if req == ghost));
        assert_eq!(s.phase(), RequesterPhase::Idle);
        // Clock still observed the piggybacked value (Lamport).
        let mut fx = Effects::new();
        s.request_cs(&mut fx);
        assert!(s.current_request().unwrap().seq > SeqNum(100));
    }

    #[test]
    fn stale_release_is_ignored_by_arbiter() {
        let mut s = DelayOptimal::new(SiteId(0), vec![SiteId(0)], Config::default());
        let mut fx = Effects::new();
        s.handle(
            SiteId(1),
            Msg {
                clk: SeqNum(1),
                body: Body::Release {
                    holder_req: Timestamp::new(1, SiteId(1)),
                    forwarded_to: None,
                },
            },
            &mut fx,
        );
        assert!(fx.sends().is_empty());
        assert_eq!(s.lock_holder(), None);
    }

    #[test]
    fn yield_regrants_to_highest_priority() {
        // Arbiter 2 (not requesting itself) with quorum members 0 and 1.
        // 1 gets the lock, then 0 (higher priority) requests; 2 inquires 1;
        // 1 (failed elsewhere) yields; 2 must grant 0.
        let q = vec![SiteId(2)];
        let mut arb = DelayOptimal::new(SiteId(2), q.clone(), Config::default());
        let mut fx = Effects::new();

        let r1 = Timestamp::new(5, SiteId(1));
        arb.handle(
            SiteId(1),
            Msg {
                clk: SeqNum(5),
                body: Body::Request { ts: r1 },
            },
            &mut fx,
        );
        let sends = fx.take_sends();
        assert!(matches!(sends[0].1.body, Body::Reply { .. }));
        assert_eq!(arb.lock_holder(), Some(r1));

        let r0 = Timestamp::new(3, SiteId(0)); // higher priority
        arb.handle(
            SiteId(0),
            Msg {
                clk: SeqNum(5),
                body: Body::Request { ts: r0 },
            },
            &mut fx,
        );
        let sends = fx.take_sends();
        // Inquire (with piggybacked transfer) to the holder S1.
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, SiteId(1));
        assert!(matches!(
            sends[0].1.body,
            Body::Inquire {
                transfer: Some(b), ..
            } if b == r0
        ));

        // S1 yields.
        arb.handle(
            SiteId(1),
            Msg {
                clk: SeqNum(6),
                body: Body::Yield { req: r1 },
            },
            &mut fx,
        );
        let sends = fx.take_sends();
        assert_eq!(arb.lock_holder(), Some(r0));
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, SiteId(0));
        // Reply to S0 piggybacking a transfer for the re-queued r1.
        assert!(matches!(
            sends[0].1.body,
            Body::Reply {
                req,
                transfer: Some(t),
                ..
            } if req == r0 && t == r1
        ));
    }

    #[test]
    fn next_in_line_behind_lock_gets_transfer_and_fail() {
        // Arbiter busy with r_lock; r_a arrives and becomes head but has
        // lower priority than the lock: it gets BOTH a transfer promise
        // (to the holder) and a fail (§5.2 Case 1). A later r_b that
        // displaces it gets the same treatment; r_a needs no second fail.
        let mut arb = DelayOptimal::new(SiteId(9), vec![SiteId(9)], Config::default());
        let mut fx = Effects::new();
        let r_lock = Timestamp::new(1, SiteId(1));
        let r_a = Timestamp::new(5, SiteId(2));
        let r_b = Timestamp::new(4, SiteId(3));
        arb.handle(
            SiteId(1),
            Msg {
                clk: r_lock.seq,
                body: Body::Request { ts: r_lock },
            },
            &mut fx,
        );
        fx.take_sends();
        arb.handle(
            SiteId(2),
            Msg {
                clk: r_a.seq,
                body: Body::Request { ts: r_a },
            },
            &mut fx,
        );
        let sends = fx.take_sends();
        assert!(sends.iter().any(|(to, m)| *to == SiteId(1)
            && matches!(m.body, Body::Transfer { beneficiary, .. } if beneficiary == r_a)));
        assert!(sends
            .iter()
            .any(|(to, m)| *to == SiteId(2)
                && matches!(m.body, Body::Fail { req, .. } if req == r_a)));

        arb.handle(
            SiteId(3),
            Msg {
                clk: r_b.seq,
                body: Body::Request { ts: r_b },
            },
            &mut fx,
        );
        let sends = fx.take_sends();
        let fails: Vec<_> = sends
            .iter()
            .filter(|(_, m)| matches!(m.body, Body::Fail { .. }))
            .collect();
        assert_eq!(fails.len(), 1, "r_a already failed; only r_b gets one");
        assert_eq!(fails[0].0, SiteId(3));
        assert!(sends.iter().any(|(to, m)| *to == SiteId(1)
            && matches!(m.body, Body::Transfer { beneficiary, .. } if beneficiary == r_b)));
    }

    #[test]
    fn failure_of_lock_holder_regrants() {
        let mut arb = DelayOptimal::new(SiteId(9), vec![SiteId(9)], Config::default());
        let mut fx = Effects::new();
        let r1 = Timestamp::new(1, SiteId(1));
        let r2 = Timestamp::new(2, SiteId(2));
        for ts in [r1, r2] {
            arb.handle(
                ts.site,
                Msg {
                    clk: ts.seq,
                    body: Body::Request { ts },
                },
                &mut fx,
            );
        }
        fx.take_sends();
        assert_eq!(arb.lock_holder(), Some(r1));
        arb.on_site_failure(SiteId(1), &mut fx);
        let sends = fx.take_sends();
        assert_eq!(arb.lock_holder(), Some(r2));
        assert!(sends
            .iter()
            .any(|(to, m)| *to == SiteId(2) && matches!(m.body, Body::Reply { .. })));
    }

    #[test]
    fn failure_of_quorum_member_makes_fixed_quorum_site_inaccessible() {
        let mut s = DelayOptimal::new(SiteId(0), vec![SiteId(0), SiteId(1)], Config::default());
        let mut fx = Effects::new();
        s.request_cs(&mut fx);
        fx.take_sends();
        assert!(s.wants_cs());
        s.on_site_failure(SiteId(1), &mut fx);
        assert!(s.is_inaccessible());
        assert!(!s.wants_cs());
        assert_eq!(s.phase(), RequesterPhase::Idle);
    }

    #[test]
    fn request_while_member_suspected_reconstructs_before_sending() {
        // Model-checker counterexample regression: a suspicion recorded
        // while this site was in its CS leaves `known_failed` populated
        // with no quorum reconstruction. A later request over the stale
        // quorum would have its Request to the suspect dropped at source
        // by `route` — and restoration never re-sends requests — wedging
        // the site forever. The request must reconstruct (here: block as
        // inaccessible) instead of silently half-requesting.
        let mut s = DelayOptimal::new(SiteId(0), vec![SiteId(0), SiteId(1)], Config::default());
        let mut fx = Effects::new();
        s.on_site_suspected(SiteId(1), &mut fx);
        fx.take_sends();
        s.request_cs(&mut fx);
        assert!(fx.take_sends().is_empty(), "no half-quorum request");
        assert!(s.is_inaccessible());
        assert!(!s.wants_cs());
        assert_eq!(s.phase(), RequesterPhase::Idle);
        // Restoration makes the site accessible again AND re-issues the
        // want that parked while no live quorum existed.
        s.on_site_restored(SiteId(1), &mut fx);
        assert!(!s.is_inaccessible());
        assert!(s.wants_cs(), "parked want re-issued on restoration");
        assert!(!fx.take_sends().is_empty(), "request reaches the peer");
    }

    #[test]
    fn relinquish_overtaking_forward_notification_frees_the_lock() {
        // Model-checker counterexample regression: with forwarding, a
        // grant travels holder → beneficiary on a different link than the
        // holder's `release` → arbiter, so a beneficiary can receive the
        // forwarded reply AND withdraw (§6 quorum reconstruction) before
        // its own arbiter hears the `release(…, forwarded_to)` naming it.
        // The relinquish finds the request still queued; treating that as
        // "never granted" lets the in-flight release move the lock onto
        // the withdrawn request forever.
        let mut sites = net(2, &[0, 1]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[1].in_cs());
        // S0 queues behind S1's lock at its own arbiter; a transfer
        // obligation travels to holder S1.
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[0].wants_cs());
        // S1 exits: the forwarded replies and the release all enter the
        // 1→0 link. Deliver only the first forwarded reply …
        release(&mut sites, 1, &mut inflight);
        let (from, to, m) = inflight.pop_front().expect("forwarded reply in flight");
        assert!(matches!(m.body, Body::Reply { .. }));
        let mut fx = Effects::new();
        sites[to.index()].handle(from, m, &mut fx);
        for (t, m) in fx.take_sends() {
            inflight.push_back((to, t, m));
        }
        // … then suspect S1: §6 withdraws the request, and the local
        // relinquish overtakes the still-in-flight release.
        sites[0].on_site_suspected(SiteId(1), &mut fx);
        fx.take_sends();
        assert!(!sites[0].wants_cs());
        settle(&mut sites, &mut inflight);
        // The suspicion proves false; no arbiter may stay wedged on the
        // withdrawn request: the restoration re-issues the parked want,
        // and that fresh request must reach the CS.
        sites[0].on_site_restored(SiteId(1), &mut fx);
        for (t, m) in fx.take_sends() {
            inflight.push_back((SiteId(0), t, m));
        }
        assert!(sites[0].wants_cs(), "parked want re-issued on restoration");
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs(), "arbiter wedged on a withdrawn request");
    }

    #[test]
    fn rejoin_window_requests_get_arrival_accounting_at_close() {
        // Model-checker counterexample regression: requests parked during
        // the rejoin grace window got no §5.2 answer when the window
        // closed — the head was granted silently and the losers never
        // received their `fail`. Two requesters that each granted
        // themselves and parked the rival's request during the window
        // would then wait on each other forever.
        let mut sites = net(2, &[0, 1]);
        let universe = [SiteId(0), SiteId(1)];
        let mut fx = Effects::new();
        // S0 restarts: the crash wiped it, recovery opens the window.
        sites[0] = DelayOptimal::new(SiteId(0), vec![SiteId(0), SiteId(1)], Config::default());
        sites[0].set_peer_universe(&universe);
        sites[0].set_incarnation(1);
        sites[0].on_start(&mut fx);
        sites[0].on_recover(&mut fx);
        assert!(fx.take_sends().is_empty());
        // S1 answers the rejoin resync with nothing to claim.
        let mut inflight = VecDeque::new();
        sites[1].on_peer_rejoined(SiteId(0), 1, &mut fx);
        for (t, m) in fx.take_sends() {
            inflight.push_back((SiteId(1), t, m));
        }
        settle(&mut sites, &mut inflight);
        assert!(!sites[0].rejoin_pending());
        // Tie: both request concurrently with equal Lamport seq (S0 wins
        // the site-id tiebreak); each grants itself, each parks or queues
        // the rival — neither can enter yet.
        request(&mut sites, 0, &mut inflight);
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(!sites[0].in_cs() && !sites[1].in_cs());
        // Window close must replay the parked requests with arrival-time
        // accounting: S1's parked request gets its fail, S1 honors the
        // pending inquire and yields, and the tie resolves.
        sites[0].on_rejoin_complete(&mut fx);
        for (t, m) in fx.take_sends() {
            inflight.push_back((SiteId(0), t, m));
        }
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs(), "rejoin-window tie never resolves");
        release(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[1].in_cs(), "loser never learns it must yield");
    }

    #[test]
    fn failure_with_quorum_source_restarts_request() {
        use crate::protocol::StaticQuorums;
        // Source that can fall back from {0,1} to {0,2}.
        #[derive(Clone)]
        struct TwoChoices;
        impl QuorumSource for TwoChoices {
            fn quorum_avoiding(
                &mut self,
                _site: SiteId,
                down: &BTreeSet<SiteId>,
            ) -> Option<Vec<SiteId>> {
                if !down.contains(&SiteId(1)) {
                    Some(vec![SiteId(0), SiteId(1)])
                } else if !down.contains(&SiteId(2)) {
                    Some(vec![SiteId(0), SiteId(2)])
                } else {
                    None
                }
            }

            fn box_clone(&self) -> Box<dyn QuorumSource> {
                Box::new(self.clone())
            }
        }
        let _ = StaticQuorums::new(vec![]); // silence unused import lint path
        let mut s =
            DelayOptimal::with_quorum_source(SiteId(0), Config::default(), Box::new(TwoChoices));
        assert_eq!(s.req_set(), &[SiteId(0), SiteId(1)]);
        let mut fx = Effects::new();
        s.request_cs(&mut fx);
        fx.take_sends();
        s.on_site_failure(SiteId(1), &mut fx);
        let sends = fx.take_sends();
        assert_eq!(s.req_set(), &[SiteId(0), SiteId(2)]);
        assert!(s.wants_cs());
        // A fresh request went out to the replacement member S2.
        assert!(sends
            .iter()
            .any(|(to, m)| *to == SiteId(2) && matches!(m.body, Body::Request { .. })));
        // And nothing was sent to the dead site.
        assert!(sends.iter().all(|(to, _)| *to != SiteId(1)));
    }

    #[test]
    fn release_to_forwarded_dead_beneficiary_regrants() {
        // Arbiter granted to r1; r2 queued; holder forwards to r2 but r2's
        // site dies before the release arrives: arbiter must re-grant.
        let mut arb = DelayOptimal::new(SiteId(9), vec![SiteId(9)], Config::default());
        let mut fx = Effects::new();
        let r1 = Timestamp::new(1, SiteId(1));
        let r2 = Timestamp::new(2, SiteId(2));
        let r3 = Timestamp::new(3, SiteId(3));
        for ts in [r1, r2, r3] {
            arb.handle(
                ts.site,
                Msg {
                    clk: ts.seq,
                    body: Body::Request { ts },
                },
                &mut fx,
            );
        }
        fx.take_sends();
        arb.on_site_failure(SiteId(2), &mut fx);
        fx.take_sends();
        arb.handle(
            SiteId(1),
            Msg {
                clk: SeqNum(9),
                body: Body::Release {
                    holder_req: r1,
                    forwarded_to: Some(r2),
                },
            },
            &mut fx,
        );
        let sends = fx.take_sends();
        assert_eq!(arb.lock_holder(), Some(r3));
        assert!(sends
            .iter()
            .any(|(to, m)| *to == SiteId(3) && matches!(m.body, Body::Reply { .. })));
    }

    /// Delivers in-flight messages like [`settle`] but silently drops
    /// anything addressed to `dead` (crash semantics: the site is gone,
    /// not slow).
    fn settle_without(
        sites: &mut [DelayOptimal],
        inflight: &mut VecDeque<(SiteId, SiteId, Msg)>,
        dead: SiteId,
    ) {
        while let Some((from, to, msg)) = inflight.pop_front() {
            if to == dead {
                continue;
            }
            let mut fx = Effects::new();
            sites[to.index()].handle(from, msg, &mut fx);
            for (t, m) in fx.take_sends() {
                inflight.push_back((to, t, m));
            }
        }
    }

    /// Announces `dead`'s failure to every survivor, queueing whatever
    /// recovery traffic that produces.
    fn fail_site(
        sites: &mut [DelayOptimal],
        inflight: &mut VecDeque<(SiteId, SiteId, Msg)>,
        dead: SiteId,
    ) {
        for (i, site) in sites.iter_mut().enumerate() {
            let from = SiteId(i as u32);
            if from == dead {
                continue;
            }
            let mut fx = Effects::new();
            site.on_site_failure(dead, &mut fx);
            for (t, m) in fx.take_sends() {
                inflight.push_back((from, t, m));
            }
        }
    }

    #[test]
    fn failed_cs_holder_end_to_end_admits_the_waiters() {
        // §6 end to end: site 0 crashes *inside* the CS while 1 and 2 wait.
        // Every arbiter must purge the dead holder's lock and grant the
        // queue head, and the survivors then drain the queue in timestamp
        // order. (The shared quorum {1,2} excludes the victim so the fixed
        // quorums stay accessible after the crash.)
        let mut sites = net(3, &[1, 2]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs());
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        request(&mut sites, 2, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert_eq!(in_cs_count(&sites), 1, "waiters blocked behind the holder");

        let dead = SiteId(0);
        fail_site(&mut sites, &mut inflight, dead);
        settle_without(&mut sites, &mut inflight, dead);
        // The dead holder never sent a Release, yet the earlier waiter got
        // in — and only it.
        assert!(sites[1].in_cs(), "queue head admitted after holder death");
        assert!(!sites[2].in_cs());

        release(&mut sites, 1, &mut inflight);
        settle_without(&mut sites, &mut inflight, dead);
        assert!(sites[2].in_cs(), "handoff continues past the failure");
        release(&mut sites, 2, &mut inflight);
        settle_without(&mut sites, &mut inflight, dead);
        // Only the dead site's frozen snapshot still claims the CS.
        assert!(sites[1..].iter().all(|s| !s.in_cs()));
    }

    #[test]
    fn failed_queue_head_end_to_end_is_skipped_on_release() {
        // §6 end to end: the *next in line* (not the holder) crashes. The
        // holder's release — possibly already forwarded toward the dead
        // beneficiary — must not strand the grant: the arbiter re-grants
        // past the purged queue head to the surviving waiter.
        let mut sites = net(4, &[3]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs());
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        request(&mut sites, 2, &mut inflight);
        settle(&mut sites, &mut inflight);

        let dead = SiteId(1);
        fail_site(&mut sites, &mut inflight, dead);
        settle_without(&mut sites, &mut inflight, dead);
        // The holder is unaffected by a waiter's death.
        assert!(sites[0].in_cs());

        release(&mut sites, 0, &mut inflight);
        settle_without(&mut sites, &mut inflight, dead);
        assert!(!sites[1].in_cs());
        assert!(sites[2].in_cs(), "grant skipped the dead queue head");
        release(&mut sites, 2, &mut inflight);
        settle_without(&mut sites, &mut inflight, dead);
        // Every survivor is done; only the dead site's frozen snapshot
        // still wants the CS it will never get.
        assert_eq!(in_cs_count(&sites), 0);
        for (i, s) in sites.iter().enumerate() {
            if SiteId(i as u32) != dead {
                assert!(!s.wants_cs(), "S{i} still waiting");
            }
        }
    }

    #[test]
    fn msg_kinds_map_to_paper_names() {
        let ts = Timestamp::new(1, SiteId(0));
        let cases: Vec<(Body, MsgKind)> = vec![
            (Body::Request { ts }, MsgKind::Request),
            (
                Body::Reply {
                    arbiter: SiteId(0),
                    req: ts,
                    transfer: None,
                },
                MsgKind::Reply,
            ),
            (
                Body::Release {
                    holder_req: ts,
                    forwarded_to: None,
                },
                MsgKind::Release,
            ),
            (
                Body::Inquire {
                    arbiter: SiteId(0),
                    holder_req: ts,
                    transfer: None,
                },
                MsgKind::Inquire,
            ),
            (
                Body::Fail {
                    arbiter: SiteId(0),
                    req: ts,
                },
                MsgKind::Fail,
            ),
            (Body::Yield { req: ts }, MsgKind::Yield),
            (
                Body::Transfer {
                    arbiter: SiteId(0),
                    beneficiary: ts,
                    holder_req: ts,
                },
                MsgKind::Transfer,
            ),
        ];
        for (body, kind) in cases {
            assert_eq!(
                Msg {
                    clk: SeqNum(0),
                    body
                }
                .kind(),
                kind
            );
        }
    }

    #[test]
    #[should_panic(expected = "one outstanding CS request per site")]
    fn double_request_panics() {
        let mut s = DelayOptimal::new(SiteId(0), vec![SiteId(0)], Config::default());
        let mut fx = Effects::new();
        s.request_cs(&mut fx);
        s.release_cs(&mut fx);
        s.request_cs(&mut fx);
        s.request_cs(&mut fx); // still in CS -> panic... actually Idle check
    }

    #[test]
    #[should_panic(expected = "not in CS")]
    fn release_without_cs_panics() {
        let mut s = DelayOptimal::new(SiteId(0), vec![SiteId(0), SiteId(1)], Config::default());
        let mut fx = Effects::new();
        s.release_cs(&mut fx);
    }

    // ------------------------------------------------------------------
    // Client abort / deadline path.
    // ------------------------------------------------------------------

    fn abort(sites: &mut [DelayOptimal], s: u32, inflight: &mut VecDeque<(SiteId, SiteId, Msg)>) {
        let mut fx = Effects::new();
        assert!(sites[s as usize].abort_cs(&mut fx), "abort refused");
        for (t, m) in fx.take_sends() {
            inflight.push_back((SiteId(s), t, m));
        }
    }

    #[test]
    fn abort_while_waiting_withdraws_from_every_arbiter() {
        // 0 holds the CS, 1 queues behind it, then gives up. The abandon
        // must leave every arbiter's queue free of 1's request, so 0's
        // release grants nobody and the system quiesces idle.
        let mut sites = net(3, &[0, 1, 2]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs());
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[1].wants_cs());

        abort(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(!sites[1].wants_cs());
        assert_eq!(sites[1].phase(), RequesterPhase::Idle);

        release(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert_eq!(in_cs_count(&sites), 0, "aborted request must not enter");
        for s in &sites {
            s.assert_invariants();
            assert_eq!(s.lock_holder(), None);
        }
        let c = sites[1].abort_counters().expect("counters");
        // Every arbiter had already promised its permission to 1 via a
        // `Transfer` to the holder — those forwards cannot be retracted, so
        // 0's exit delivers three grants to the aborted site, all returned.
        assert_eq!((c.aborts, c.deadline_aborts, c.orphan_grants), (1, 0, 3));

        // The lock is not wedged: a fresh request still gets in.
        request(&mut sites, 2, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[2].in_cs());
    }

    #[test]
    fn abort_racing_forwarded_reply_returns_the_orphan_grant() {
        // The delay-optimal race: 0 exits and forwards its arbiters'
        // replies directly to 1 while 1's abandon is crossing them on the
        // wire. The grant must come back (Relinquish) rather than be
        // consumed or lost, and every arbiter must end with a free lock.
        let mut sites = net(3, &[0, 1, 2]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);

        // 0 releases (forwarded replies to 1 now in flight) ...
        release(&mut sites, 0, &mut inflight);
        // ... and 1 aborts before any of them land.
        abort(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);

        assert_eq!(
            in_cs_count(&sites),
            0,
            "grant for an aborted request consumed"
        );
        for s in &sites {
            s.assert_invariants();
            assert_eq!(s.lock_holder(), None, "{}: lock wedged", s.site());
        }
        let c = sites[1].abort_counters().expect("counters");
        assert_eq!(c.aborts, 1);
        assert!(c.orphan_grants >= 1, "forwarded grant not returned");

        // Liveness after the race: the next requester enters cleanly.
        request(&mut sites, 2, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[2].in_cs());
    }

    #[test]
    fn abort_while_inquired_hands_the_permission_to_the_higher_priority_request() {
        // 1 holds arbiter 2's permission (waiting on arbiter 3) when a
        // higher-priority request preempts it: arbiter 2 inquires. Instead
        // of yielding, 1 aborts — the abandon must free the permission for
        // the preemptor exactly like a yield would have.
        let q = vec![SiteId(2), SiteId(3)];
        let mut s1 = DelayOptimal::new(SiteId(1), q.clone(), Config::default());
        let mut s2 = DelayOptimal::new(SiteId(2), q, Config::default());

        let mut fx = Effects::new();
        s1.request_cs(&mut fx);
        let r1 = s1.current_request().expect("outstanding");
        let sends = fx.take_sends();
        let to_2 = sends
            .iter()
            .find(|(to, _)| *to == SiteId(2))
            .expect("request to arbiter 2")
            .1
            .clone();
        s2.handle(SiteId(1), to_2, &mut fx);
        let reply = fx.take_sends().pop().expect("grant").1;
        s1.handle(SiteId(2), reply, &mut fx);
        assert!(s1.wants_cs(), "still missing arbiter 3");
        assert_eq!(s2.lock_holder(), Some(r1));

        // A higher-priority request (site 0, smaller timestamp) arrives at
        // arbiter 2, which inquires the current permission holder.
        let r0 = Timestamp::new(1, SiteId(0));
        assert!(r0.beats(&r1));
        s2.handle(
            SiteId(0),
            Msg {
                clk: SeqNum(1),
                body: Body::Request { ts: r0 },
            },
            &mut fx,
        );
        let (to, inquire) = fx.take_sends().pop().expect("inquire the holder");
        assert_eq!(to, SiteId(1));
        assert!(matches!(inquire.body, Body::Inquire { .. }));
        s1.handle(SiteId(2), inquire, &mut fx);
        fx.take_sends(); // holder defers (not failed): no answer yet

        // The holder aborts instead of ever answering the inquire.
        assert!(s1.abort_cs(&mut fx));
        let abandons = fx.take_sends();
        let to_2 = abandons
            .iter()
            .find(|(to, _)| *to == SiteId(2))
            .expect("abandon to arbiter 2")
            .1
            .clone();
        s2.handle(SiteId(1), to_2, &mut fx);

        // Arbiter 2 re-granted to the preemptor, not wedged on the inquire.
        assert_eq!(s2.lock_holder(), Some(r0));
        assert!(fx
            .take_sends()
            .iter()
            .any(|(to, m)| *to == SiteId(0) && matches!(m.body, Body::Reply { .. })));
        s1.assert_invariants();
        s2.assert_invariants();
    }

    #[test]
    fn deadline_rides_the_timer_hooks() {
        // A deadline on an unfulfilled request surfaces through
        // `next_timer` and aborts from inside `on_timer`.
        let mut sites = net(2, &[0, 1]);
        let mut inflight = VecDeque::new();
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs());

        sites[1].set_deadline(Some(100));
        assert_eq!(sites[1].next_timer(), None, "no request yet: nothing armed");
        request(&mut sites, 1, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert_eq!(sites[1].next_timer(), Some(100));
        assert!(sites[1].abortable());

        let mut fx = Effects::new();
        sites[1].on_timer(99, &mut fx);
        assert!(sites[1].wants_cs(), "fired early: deadline not due");
        sites[1].on_timer(100, &mut fx);
        assert!(!sites[1].wants_cs());
        assert_eq!(sites[1].next_timer(), None, "deadline disarmed after abort");
        for (t, m) in fx.take_sends() {
            inflight.push_back((SiteId(1), t, m));
        }
        settle(&mut sites, &mut inflight);

        release(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert_eq!(in_cs_count(&sites), 0);
        let c = sites[1].abort_counters().expect("counters");
        assert_eq!((c.aborts, c.deadline_aborts), (1, 1));
    }

    #[test]
    fn deadline_is_cleared_on_entry_not_after() {
        // Entry beats the deadline: the timer must disarm (clean entry,
        // never a lost lock), and a later wake-up must not abort the CS.
        let mut sites = net(2, &[0, 1]);
        let mut inflight = VecDeque::new();
        sites[0].set_deadline(Some(50));
        request(&mut sites, 0, &mut inflight);
        settle(&mut sites, &mut inflight);
        assert!(sites[0].in_cs());
        assert_eq!(sites[0].next_timer(), None);

        let mut fx = Effects::new();
        sites[0].on_timer(1_000, &mut fx);
        assert!(
            sites[0].in_cs(),
            "an acquired lock is only left via release"
        );
        assert!(!sites[0].abortable());
        assert!(!sites[0].abort_cs(&mut fx), "in-CS abort must refuse");
        assert_eq!(sites[0].abort_counters().expect("counters").aborts, 0);
    }

    #[test]
    fn parked_want_deadline_abort_is_not_resurrected_by_restore() {
        // Satellite regression: a `want_cs` parked for lack of a live
        // quorum whose deadline fires while the quorum is unreachable
        // aborts cleanly and is NOT re-issued by `unpark_want` when the
        // link heals.
        let mut s0 = DelayOptimal::new(SiteId(0), vec![SiteId(0), SiteId(1)], Config::default());
        let mut fx = Effects::new();

        // Fixed quorum with a suspected member and no quorum source:
        // inaccessible, so the request parks.
        s0.on_site_suspected(SiteId(1), &mut fx);
        assert!(s0.is_inaccessible());
        s0.set_deadline(Some(500));
        s0.request_cs(&mut fx);
        assert!(fx.take_sends().is_empty(), "parked want sends nothing");
        assert_eq!(s0.phase(), RequesterPhase::Idle);
        assert_eq!(s0.next_timer(), Some(500), "deadline armed while parked");
        assert!(s0.abortable());

        // Deadline fires while the quorum is still unreachable.
        s0.on_timer(500, &mut fx);
        assert!(fx.take_sends().is_empty(), "nothing reached the wire");
        let c = s0.abort_counters().expect("counters");
        assert_eq!((c.aborts, c.deadline_aborts), (1, 1));

        // The link heals: restoration must NOT resurrect the want.
        s0.on_site_restored(SiteId(1), &mut fx);
        let sends = fx.take_sends();
        assert!(
            !sends
                .iter()
                .any(|(_, m)| matches!(m.body, Body::Request { .. })),
            "aborted want re-issued on restore: {sends:?}"
        );
        assert_eq!(s0.phase(), RequesterPhase::Idle);
        assert!(!s0.wants_cs());
        s0.assert_invariants();
    }

    #[test]
    fn abort_is_refused_when_idle() {
        let mut s = DelayOptimal::new(SiteId(0), vec![SiteId(0), SiteId(1)], Config::default());
        let mut fx = Effects::new();
        assert!(!s.abortable());
        assert!(!s.abort_cs(&mut fx));
        assert_eq!(s.abort_counters().expect("counters").aborts, 0);
    }

    #[test]
    fn abandon_is_counted_as_a_release() {
        let ts = Timestamp::new(1, SiteId(0));
        assert_eq!(
            Msg {
                clk: SeqNum(0),
                body: Body::Abandon { req: ts },
            }
            .kind(),
            MsgKind::Release
        );
    }

    #[test]
    #[should_panic(expected = "quorum must be non-empty")]
    fn empty_quorum_panics() {
        let _ = DelayOptimal::new(SiteId(0), vec![], Config::default());
    }

    #[test]
    #[should_panic(expected = "quorum contains duplicates")]
    fn duplicate_quorum_panics() {
        let _ = DelayOptimal::new(SiteId(0), vec![SiteId(1), SiteId(1)], Config::default());
    }
}
