//! Binary wire codec for the protocol stack.
//!
//! The networked runtime (`qmx-runtime`) ships protocol messages between
//! processes over byte streams (TCP, Unix-domain sockets, or the in-process
//! loopback used by the deterministic tests). This module is the codec: a
//! small hand-rolled binary format — fixed-width little-endian integers,
//! one-byte enum tags, length-prefixed sequences — with **no** panics on
//! malformed input. Everything that can go wrong while decoding a frame a
//! peer (or an attacker, or a fuzzer) sent is a [`WireError`], and the
//! connection that produced it gets dropped by the runtime; nothing here may
//! take the site task down.
//!
//! The build environment vendors `serde` as a derive-only stand-in with no
//! data formats, so the codec is written out by hand for exactly the message
//! types the live stack sends:
//! [`HbMsg`]`<`[`Packet`]`<`[`ResMsg`]`<`[`Msg`]`>>>` and its layers, plus
//! the primitives they are built from. Each impl is a direct transcription
//! of the struct/enum definition; round-trip tests pin every variant.
//!
//! Decoding is strict: [`Wire::from_bytes`] rejects trailing bytes, length
//! prefixes are validated against the bytes actually present *before* any
//! allocation (a claimed length can never force a large allocation), and
//! unknown tags are errors.

use crate::clock::{SeqNum, Timestamp};
use crate::delay_optimal::{Body, Msg};
use crate::detector::HbMsg;
use crate::lockspace::ResMsg;
use crate::protocol::{ResourceId, SiteId};
use crate::transport::Packet;
use std::fmt;
use std::sync::Arc;

/// Decode failure. Always an error value, never a panic: wire input is
/// untrusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix claims more elements than the remaining bytes could
    /// possibly hold.
    Oversized {
        /// The type being decoded.
        what: &'static str,
        /// The claimed element count.
        len: u64,
    },
    /// [`Wire::from_bytes`] decoded a complete value but bytes were left
    /// over — the frame does not contain exactly one message.
    Trailing {
        /// Leftover byte count.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire value"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            WireError::Oversized { what, len } => {
                write!(f, "{what} length {len} exceeds the frame")
            }
            WireError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after the message")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked cursor over the bytes of one frame.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a strict boolean (`0` or `1`; anything else is a bad tag).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }

    /// Validates a sequence length prefix against the bytes left: with
    /// every element at least `min_elem_bytes` wide, a claimed `len` beyond
    /// `remaining / min_elem_bytes` cannot be satisfied, so it is rejected
    /// *before* any element is read or any buffer is sized from it.
    pub fn seq_len(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, WireError> {
        let len = self.u32()? as u64;
        let fit = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if len > fit {
            return Err(WireError::Oversized { what, len });
        }
        Ok(len as usize)
    }
}

/// A value with a binary wire representation.
///
/// Implementations must uphold: `decode(encode(v)) == v` for every value,
/// and `decode` returns an error (never panics) on any byte sequence that
/// is not a valid encoding.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader, advancing it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a buffer that must contain exactly one value.
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Trailing {
                remaining: r.remaining(),
            });
        }
        Ok(v)
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.bool()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // Every element encodes to at least one byte, so the length gate in
        // `seq_len` bounds the allocation by the frame size.
        let len = r.seq_len("Vec", 1)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl Wire for SiteId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SiteId(r.u32()?))
    }
}

impl Wire for ResourceId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ResourceId(r.u32()?))
    }
}

impl Wire for SeqNum {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SeqNum(r.u64()?))
    }
}

impl Wire for Timestamp {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.site.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Timestamp {
            seq: SeqNum::decode(r)?,
            site: SiteId::decode(r)?,
        })
    }
}

impl Wire for Body {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Body::Request { ts } => {
                out.push(0);
                ts.encode(out);
            }
            Body::Reply {
                arbiter,
                req,
                transfer,
            } => {
                out.push(1);
                arbiter.encode(out);
                req.encode(out);
                transfer.encode(out);
            }
            Body::Release {
                holder_req,
                forwarded_to,
            } => {
                out.push(2);
                holder_req.encode(out);
                forwarded_to.encode(out);
            }
            Body::Inquire {
                arbiter,
                holder_req,
                transfer,
            } => {
                out.push(3);
                arbiter.encode(out);
                holder_req.encode(out);
                transfer.encode(out);
            }
            Body::Fail { arbiter, req } => {
                out.push(4);
                arbiter.encode(out);
                req.encode(out);
            }
            Body::Yield { req } => {
                out.push(5);
                req.encode(out);
            }
            Body::Transfer {
                arbiter,
                beneficiary,
                holder_req,
            } => {
                out.push(6);
                arbiter.encode(out);
                beneficiary.encode(out);
                holder_req.encode(out);
            }
            Body::Relinquish { req } => {
                out.push(7);
                req.encode(out);
            }
            Body::Abandon { req } => {
                out.push(8);
                req.encode(out);
            }
            Body::Claim { holds } => {
                out.push(9);
                holds.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Body::Request {
                ts: Timestamp::decode(r)?,
            },
            1 => Body::Reply {
                arbiter: SiteId::decode(r)?,
                req: Timestamp::decode(r)?,
                transfer: Option::decode(r)?,
            },
            2 => Body::Release {
                holder_req: Timestamp::decode(r)?,
                forwarded_to: Option::decode(r)?,
            },
            3 => Body::Inquire {
                arbiter: SiteId::decode(r)?,
                holder_req: Timestamp::decode(r)?,
                transfer: Option::decode(r)?,
            },
            4 => Body::Fail {
                arbiter: SiteId::decode(r)?,
                req: Timestamp::decode(r)?,
            },
            5 => Body::Yield {
                req: Timestamp::decode(r)?,
            },
            6 => Body::Transfer {
                arbiter: SiteId::decode(r)?,
                beneficiary: Timestamp::decode(r)?,
                holder_req: Timestamp::decode(r)?,
            },
            7 => Body::Relinquish {
                req: Timestamp::decode(r)?,
            },
            8 => Body::Abandon {
                req: Timestamp::decode(r)?,
            },
            9 => Body::Claim {
                holds: Option::decode(r)?,
            },
            tag => return Err(WireError::BadTag { what: "Body", tag }),
        })
    }
}

impl Wire for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.clk.encode(out);
        self.body.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Msg {
            clk: SeqNum::decode(r)?,
            body: Body::decode(r)?,
        })
    }
}

impl<M: Wire> Wire for ResMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rid.encode(out);
        self.body.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ResMsg {
            rid: ResourceId::decode(r)?,
            body: M::decode(r)?,
        })
    }
}

impl<M: Wire> Wire for Packet<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Packet::Data {
                epoch,
                seq,
                ack_epoch,
                ack,
                payload,
            } => {
                out.push(0);
                epoch.encode(out);
                seq.encode(out);
                ack_epoch.encode(out);
                ack.encode(out);
                payload.encode(out);
            }
            Packet::Ack { epoch, ack } => {
                out.push(1);
                epoch.encode(out);
                ack.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Packet::Data {
                epoch: r.u64()?,
                seq: r.u64()?,
                ack_epoch: r.u64()?,
                ack: r.u64()?,
                payload: Arc::new(M::decode(r)?),
            },
            1 => Packet::Ack {
                epoch: r.u64()?,
                ack: r.u64()?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "Packet",
                    tag,
                })
            }
        })
    }
}

impl<M: Wire> Wire for HbMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            HbMsg::Beat {
                alive,
                suspects_you,
            } => {
                out.push(0);
                alive.encode(out);
                suspects_you.encode(out);
            }
            HbMsg::Rejoin { incarnation } => {
                out.push(1);
                incarnation.encode(out);
            }
            HbMsg::App(m) => {
                out.push(2);
                m.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => HbMsg::Beat {
                alive: Vec::decode(r)?,
                suspects_you: bool::decode(r)?,
            },
            1 => HbMsg::Rejoin {
                incarnation: r.u64()?,
            },
            2 => HbMsg::App(M::decode(r)?),
            tag => return Err(WireError::BadTag { what: "HbMsg", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact message type the live `ServeStack` puts on the wire.
    type StackMsg = HbMsg<Packet<ResMsg<Msg>>>;

    fn ts(seq: u64, site: u32) -> Timestamp {
        Timestamp::new(seq, SiteId(site))
    }

    fn all_bodies() -> Vec<Body> {
        vec![
            Body::Request { ts: ts(3, 1) },
            Body::Reply {
                arbiter: SiteId(2),
                req: ts(4, 0),
                transfer: None,
            },
            Body::Reply {
                arbiter: SiteId(2),
                req: ts(4, 0),
                transfer: Some(ts(9, 5)),
            },
            Body::Release {
                holder_req: ts(7, 2),
                forwarded_to: Some(ts(8, 3)),
            },
            Body::Release {
                holder_req: ts(7, 2),
                forwarded_to: None,
            },
            Body::Inquire {
                arbiter: SiteId(0),
                holder_req: ts(1, 1),
                transfer: Some(ts(2, 2)),
            },
            Body::Fail {
                arbiter: SiteId(3),
                req: ts(11, 4),
            },
            Body::Yield { req: ts(12, 0) },
            Body::Transfer {
                arbiter: SiteId(1),
                beneficiary: ts(13, 6),
                holder_req: ts(10, 7),
            },
            Body::Relinquish { req: ts(14, 8) },
            Body::Abandon { req: ts(15, 0) },
            Body::Claim { holds: None },
            Body::Claim {
                holds: Some(ts(16, 2)),
            },
        ]
    }

    #[test]
    fn every_body_variant_round_trips() {
        for body in all_bodies() {
            let msg = Msg {
                clk: SeqNum(77),
                body: body.clone(),
            };
            let bytes = msg.to_bytes();
            let back = Msg::from_bytes(&bytes).expect("round trip");
            assert_eq!(back, msg, "variant {body:?}");
        }
    }

    #[test]
    fn full_stack_message_round_trips() {
        for (i, body) in all_bodies().into_iter().enumerate() {
            let wire: StackMsg = HbMsg::App(Packet::Data {
                epoch: (7 << 32) + 1,
                seq: 42 + i as u64,
                ack_epoch: 3,
                ack: 41,
                payload: Arc::new(ResMsg {
                    rid: ResourceId(9),
                    body: Msg {
                        clk: SeqNum(100),
                        body,
                    },
                }),
            });
            let back = StackMsg::from_bytes(&wire.to_bytes()).expect("round trip");
            // HbMsg/Packet do not implement PartialEq (Arc payload); compare
            // the debug rendering, which covers every field.
            assert_eq!(format!("{back:?}"), format!("{wire:?}"));
        }
    }

    #[test]
    fn beat_rejoin_and_ack_round_trip() {
        let beat: StackMsg = HbMsg::Beat {
            alive: vec![SiteId(0), SiteId(2), SiteId(5)],
            suspects_you: true,
        };
        let rejoin: StackMsg = HbMsg::Rejoin { incarnation: 3 };
        let ack: StackMsg = HbMsg::App(Packet::Ack { epoch: 2, ack: 17 });
        for m in [beat, rejoin, ack] {
            let back = StackMsg::from_bytes(&m.to_bytes()).expect("round trip");
            assert_eq!(format!("{back:?}"), format!("{m:?}"));
        }
    }

    #[test]
    fn truncated_input_errors_at_every_length() {
        let wire: StackMsg = HbMsg::App(Packet::Data {
            epoch: 1,
            seq: 2,
            ack_epoch: 1,
            ack: 1,
            payload: Arc::new(ResMsg {
                rid: ResourceId(3),
                body: Msg {
                    clk: SeqNum(5),
                    body: Body::Inquire {
                        arbiter: SiteId(0),
                        holder_req: ts(1, 1),
                        transfer: Some(ts(2, 2)),
                    },
                },
            }),
        });
        let bytes = wire.to_bytes();
        for cut in 0..bytes.len() {
            let err = StackMsg::from_bytes(&bytes[..cut]).expect_err("truncation detected");
            assert!(
                matches!(err, WireError::Truncated | WireError::BadTag { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let msg = Msg {
            clk: SeqNum(1),
            body: Body::Yield { req: ts(2, 0) },
        };
        let mut bytes = msg.to_bytes();
        bytes.push(0xFF);
        assert_eq!(
            Msg::from_bytes(&bytes),
            Err(WireError::Trailing { remaining: 1 })
        );
    }

    #[test]
    fn bad_tags_are_rejected_not_panicked() {
        // First byte of a Body is its tag; 0xAB is not a variant.
        assert!(matches!(
            Body::from_bytes(&[0xAB]),
            Err(WireError::BadTag { what: "Body", .. })
        ));
        // A bool outside 0/1 is a bad tag, not a coercion.
        let mut r = Reader::new(&[7]);
        assert!(matches!(r.bool(), Err(WireError::BadTag { .. })));
    }

    #[test]
    fn hostile_length_prefix_cannot_force_allocation() {
        // A Beat whose `alive` vector claims 2^32-1 sites but provides no
        // bytes: rejected by the length gate before any allocation.
        let mut bytes = vec![0u8]; // HbMsg::Beat tag
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = <HbMsg<Packet<ResMsg<Msg>>>>::from_bytes(&bytes).expect_err("oversized");
        assert!(matches!(err, WireError::Oversized { .. }), "{err:?}");
    }

    #[test]
    fn garbage_never_panics() {
        // Deterministic byte noise (splitmix64) across a range of lengths:
        // every buffer must decode to Ok or Err, never panic, at every type
        // in the stack.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as u8
        };
        for len in 0..200usize {
            let buf: Vec<u8> = (0..len).map(|_| next()).collect();
            let _ = StackMsg::from_bytes(&buf);
            let _ = Msg::from_bytes(&buf);
            let _ = <Packet<Msg>>::from_bytes(&buf);
            let _ = <ResMsg<Msg>>::from_bytes(&buf);
        }
    }
}
