//! The event-driven protocol interface shared by every algorithm.
//!
//! A mutual-exclusion algorithm is modeled as a deterministic state machine
//! per site. Drivers (the discrete-event simulator in `qmx-sim`, the threaded
//! runtime in `qmx-runtime`, or a handwritten test harness) own the network
//! and the application: they call [`Protocol::request_cs`] when the local
//! application wants the critical section, deliver messages through
//! [`Protocol::handle`], and call [`Protocol::release_cs`] when the
//! application is done. The state machine communicates back through
//! [`Effects`]: messages to send and a flag that the site has just entered
//! its CS.
//!
//! Keeping algorithms free of I/O and time makes them unit-testable
//! step-by-step and lets the same implementation run deterministically under
//! simulation and live over threads.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a site (a process and the computer it executes on).
///
/// Sites are numbered `0..N`. The numeric order participates in request
/// priority (ties on sequence numbers are broken by the smaller site id).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The site id as a `usize` index (for vectors indexed by site).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(v: u32) -> Self {
        SiteId(v)
    }
}

/// Coarse classification of wire messages, used by drivers for accounting.
///
/// Every algorithm maps its own message enum onto these kinds via
/// [`MsgMeta::kind`], so experiment harnesses can report per-kind message
/// counts uniformly (e.g. the `request`/`reply`/`release` split of the
/// paper's §5 analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgKind {
    /// A CS request / permission ask.
    Request,
    /// A permission grant (possibly forwarded by a proxy).
    Reply,
    /// Notification that a site has exited the CS.
    Release,
    /// An arbiter probing its current grantee (deadlock resolution).
    Inquire,
    /// An arbiter refusing a request that is not next in line.
    Fail,
    /// A requester relinquishing a grant to a higher-priority request.
    Yield,
    /// An arbiter asking the current lock holder to forward its reply.
    Transfer,
    /// A privilege token (token-based algorithms).
    Token,
    /// Auxiliary state dissemination (e.g. failure notices, info messages).
    Info,
}

impl MsgKind {
    /// All kinds, in display order.
    pub const ALL: [MsgKind; 9] = [
        MsgKind::Request,
        MsgKind::Reply,
        MsgKind::Release,
        MsgKind::Inquire,
        MsgKind::Fail,
        MsgKind::Yield,
        MsgKind::Transfer,
        MsgKind::Token,
        MsgKind::Info,
    ];

    /// Short lowercase label (matches the paper's message names).
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::Request => "request",
            MsgKind::Reply => "reply",
            MsgKind::Release => "release",
            MsgKind::Inquire => "inquire",
            MsgKind::Fail => "fail",
            MsgKind::Yield => "yield",
            MsgKind::Transfer => "transfer",
            MsgKind::Token => "token",
            MsgKind::Info => "info",
        }
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Metadata every protocol message type must expose.
pub trait MsgMeta {
    /// The dominant kind of this wire message, for accounting.
    ///
    /// A message piggybacking several logical control messages (e.g.
    /// `inquire`+`transfer`) is **one** wire message and reports the kind of
    /// its primary component, mirroring the paper's §5 counting rule.
    fn kind(&self) -> MsgKind;
}

/// Identifies one named lock (resource) in a multi-resource lock space.
///
/// Single-resource protocols — the paper's setting — arbitrate exactly one
/// critical section and use [`ResourceId::SOLO`] everywhere. The
/// [`LockSpace`](crate::lockspace::LockSpace) layer multiplexes many
/// protocol instances over the same sites and links, keyed by this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// The single implicit resource of a one-lock protocol.
    pub const SOLO: ResourceId = ResourceId(0);
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Effects emitted by one protocol step: messages to send and CS entries.
///
/// Drivers create a fresh `Effects` (or reuse one after draining), pass it to
/// a [`Protocol`] entry point, then act on the collected sends and the
/// entered-resource list (single-resource protocols report at most one entry,
/// always [`ResourceId::SOLO`]; a lock space may admit several resources in
/// one step, e.g. when a reliable link delivers a reordered prefix).
#[derive(Debug)]
pub struct Effects<M> {
    sends: Vec<(SiteId, M)>,
    entered: Vec<ResourceId>,
}

impl<M> Default for Effects<M> {
    fn default() -> Self {
        Effects {
            sends: Vec::new(),
            entered: Vec::new(),
        }
    }
}

impl<M> Effects<M> {
    /// Creates an empty effects buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a wire message to `to`.
    pub fn send(&mut self, to: SiteId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Marks that the site has just entered its critical section (the
    /// implicit solo resource of a single-lock protocol).
    pub fn enter_cs(&mut self) {
        self.entered.push(ResourceId::SOLO);
    }

    /// Marks that the site has just entered the critical section of `rid`.
    pub fn enter_cs_r(&mut self, rid: ResourceId) {
        self.entered.push(rid);
    }

    /// Whether any CS entry was signalled since the last drain.
    pub fn entered_cs(&self) -> bool {
        !self.entered.is_empty()
    }

    /// The resources entered since the last drain, in signal order.
    pub fn entered_resources(&self) -> &[ResourceId] {
        &self.entered
    }

    /// Read-only view of queued sends.
    pub fn sends(&self) -> &[(SiteId, M)] {
        &self.sends
    }

    /// Drains and returns the queued sends, clearing the entry list too.
    pub fn take_sends(&mut self) -> Vec<(SiteId, M)> {
        self.entered.clear();
        std::mem::take(&mut self.sends)
    }

    /// Drains the buffer returning `(sends, entered resources)`.
    pub fn drain(&mut self) -> (Vec<(SiteId, M)>, Vec<ResourceId>) {
        (
            std::mem::take(&mut self.sends),
            std::mem::take(&mut self.entered),
        )
    }

    /// Drains queued sends in order *without* surrendering the buffer's
    /// capacity. Drivers that reuse one scratch buffer across events call
    /// this instead of [`Effects::drain`] so the send vector's allocation
    /// amortizes to zero per event. Entered resources are left in place —
    /// drain them separately via [`Effects::drain_entered`] (or clear with
    /// [`Effects::clear_entered`]).
    pub fn drain_sends(&mut self) -> std::vec::Drain<'_, (SiteId, M)> {
        self.sends.drain(..)
    }

    /// Drains the entered-resource list in signal order, keeping capacity.
    pub fn drain_entered(&mut self) -> std::vec::Drain<'_, ResourceId> {
        self.entered.drain(..)
    }

    /// Clears the entered-resource list without yielding it.
    pub fn clear_entered(&mut self) {
        self.entered.clear();
    }
}

/// Counters for the abort path: requests withdrawn by the client, deadline
/// expiries, and grants that arrived for an already-abandoned request.
///
/// Observability only — layers must keep these out of any state that feeds
/// model-checker fingerprints (they count *history*, not behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbortCounters {
    /// Requests withdrawn via [`Protocol::abort_cs`] (including deadline
    /// expiries) that actually cancelled an outstanding request.
    pub aborts: u64,
    /// The subset of `aborts` triggered by a deadline firing inside
    /// [`Protocol::on_timer`] rather than an explicit client call.
    pub deadline_aborts: u64,
    /// Permission grants that reached this site after it had already
    /// abandoned the request they answer, and were returned to their
    /// arbiter (`Relinquish`) instead of being consumed.
    pub orphan_grants: u64,
}

impl AbortCounters {
    /// Accumulates `other` into `self` (drivers sum per-site counters).
    pub fn merge(&mut self, other: &AbortCounters) {
        self.aborts += other.aborts;
        self.deadline_aborts += other.deadline_aborts;
        self.orphan_grants += other.orphan_grants;
    }
}

/// A distributed mutual-exclusion algorithm as a per-site state machine.
///
/// Contract expected by drivers:
///
/// * At most one outstanding CS request per site: the driver calls
///   [`request_cs`](Protocol::request_cs) only when the site is idle, and
///   [`release_cs`](Protocol::release_cs) only when [`in_cs`](Protocol::in_cs)
///   is `true` (sites execute CS requests "sequentially one by one", §2).
/// * CS entry is signalled exactly once per request via
///   [`Effects::enter_cs`], either inside `request_cs` (grant was immediate)
///   or inside a later `handle` call.
/// * `handle` must tolerate stale messages (late replies for finished
///   requests, etc.) — unreliable-order tolerance is part of each algorithm.
pub trait Protocol {
    /// The algorithm's wire message type.
    ///
    /// `Send + Sync` because drivers move messages across threads and the
    /// reliable transport shares payloads between its retransmit buffer
    /// and in-flight packets via `Arc`.
    type Msg: Clone + fmt::Debug + MsgMeta + Send + Sync + 'static;

    /// This site's identifier.
    fn site(&self) -> SiteId;

    /// Called once before any other event, for protocols that need to
    /// announce initial state (e.g. initial token placement).
    fn on_start(&mut self, fx: &mut Effects<Self::Msg>) {
        let _ = fx;
    }

    /// The local application requests the critical section.
    fn request_cs(&mut self, fx: &mut Effects<Self::Msg>);

    /// The local application leaves the critical section.
    fn release_cs(&mut self, fx: &mut Effects<Self::Msg>);

    /// A wire message from `from` is delivered.
    fn handle(&mut self, from: SiteId, msg: Self::Msg, fx: &mut Effects<Self::Msg>);

    /// Whether this site is currently executing its CS.
    fn in_cs(&self) -> bool;

    /// Whether this site has an unfulfilled CS request outstanding.
    fn wants_cs(&self) -> bool;

    /// The local application abandons its outstanding CS request (client
    /// timeout, cancelled transaction, shutdown).
    ///
    /// Returns `true` if there was a pending (not yet granted) request and
    /// it was withdrawn — the site is idle afterwards and the driver may
    /// issue a fresh `request_cs` later (e.g. retry with backoff). Returns
    /// `false` if there was nothing to abort: the site was idle, or the
    /// request had already been granted (once inside the CS the only exit
    /// is [`release_cs`](Protocol::release_cs) — an abort must never "lose"
    /// an acquired lock). Algorithms without an abort path keep the
    /// default, which refuses (`false`).
    fn abort_cs(&mut self, fx: &mut Effects<Self::Msg>) -> bool {
        let _ = fx;
        false
    }

    /// Whether [`abort_cs`](Protocol::abort_cs) would currently withdraw
    /// anything: an unfulfilled request is outstanding *and* the algorithm
    /// implements abort. Drivers and the model checker use this to gate
    /// abort transitions.
    fn abortable(&self) -> bool {
        false
    }

    /// Sets (or clears, with `None`) the absolute deadline for the current
    /// or next CS request. When the deadline passes while the request is
    /// still unfulfilled, the protocol aborts it from within
    /// [`on_timer`](Protocol::on_timer) — deadlines ride the same driver
    /// timer hooks as transport retransmission and detector heartbeats, so
    /// any driver that polls [`next_timer`](Protocol::next_timer) gets
    /// deadline enforcement for free. Cleared automatically on CS entry.
    /// Default: ignored (no deadline support).
    fn set_deadline(&mut self, deadline: Option<u64>) {
        let _ = deadline;
    }

    /// Abort-path counters, if the algorithm supports aborts.
    ///
    /// `None` for algorithms without an abort path; mirrors
    /// [`transport_counters`](Protocol::transport_counters).
    fn abort_counters(&self) -> Option<AbortCounters> {
        None
    }

    /// Resource-addressed [`request_cs`](Protocol::request_cs): the local
    /// application requests the critical section of `rid`.
    ///
    /// Single-resource protocols keep the default, which accepts only
    /// [`ResourceId::SOLO`] and delegates; the
    /// [`LockSpace`](crate::lockspace::LockSpace) layer routes to the
    /// addressed shard, and wrapper layers ([`Reliable`](crate::transport::Reliable),
    /// [`Detector`](crate::detector::Detector)) forward to their inner
    /// protocol so the id survives the stack.
    fn request_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) {
        debug_assert_eq!(rid, ResourceId::SOLO, "single-resource protocol");
        self.request_cs(fx);
    }

    /// Resource-addressed [`release_cs`](Protocol::release_cs).
    fn release_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) {
        debug_assert_eq!(rid, ResourceId::SOLO, "single-resource protocol");
        self.release_cs(fx);
    }

    /// Resource-addressed [`abort_cs`](Protocol::abort_cs).
    fn abort_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) -> bool {
        debug_assert_eq!(rid, ResourceId::SOLO, "single-resource protocol");
        self.abort_cs(fx)
    }

    /// Resource-addressed [`in_cs`](Protocol::in_cs).
    fn in_cs_r(&self, rid: ResourceId) -> bool {
        debug_assert_eq!(rid, ResourceId::SOLO, "single-resource protocol");
        self.in_cs()
    }

    /// Resource-addressed [`wants_cs`](Protocol::wants_cs).
    fn wants_cs_r(&self, rid: ResourceId) -> bool {
        debug_assert_eq!(rid, ResourceId::SOLO, "single-resource protocol");
        self.wants_cs()
    }

    /// Resource-addressed [`set_deadline`](Protocol::set_deadline).
    fn set_deadline_r(&mut self, rid: ResourceId, deadline: Option<u64>) {
        debug_assert_eq!(rid, ResourceId::SOLO, "single-resource protocol");
        self.set_deadline(deadline);
    }

    /// Drains the set of resources whose outstanding request was aborted
    /// (deadline expiry or explicit withdrawal) since the last drain, so a
    /// driver that watches the aggregate [`abort_counters`](Protocol::abort_counters)
    /// delta can route per-resource retries. Single-resource protocols keep
    /// the default (empty — the driver attributes any delta to
    /// [`ResourceId::SOLO`]); the lock space reports the affected shards in
    /// id order.
    fn drain_aborted_resources(&mut self) -> Vec<ResourceId> {
        Vec::new()
    }

    /// Notification (from a failure detector) that `failed` has crashed.
    ///
    /// Algorithms without fault handling may ignore this. The delay-optimal
    /// algorithm implements the §6 cleanup and quorum-reconstruction rules.
    fn on_site_failure(&mut self, failed: SiteId, fx: &mut Effects<Self::Msg>) {
        let _ = (failed, fx);
    }

    /// A failure detector *suspects* `site` has crashed (missed heartbeats).
    ///
    /// Unlike [`on_site_failure`](Protocol::on_site_failure) — the paper's
    /// oracle `failure(i)` notice, which is definitive — a suspicion may be
    /// wrong (a partition or slow link, Chandra–Toueg style), possibly while
    /// the suspected site is *inside its CS*. Reacting to it with the
    /// definitive-failure cleanup (which reclaims and re-grants held locks)
    /// is therefore unsafe; the default does nothing, which is always safe.
    /// Algorithms may override it with *revocable* reactions only (routing
    /// around the suspect, withdrawing own requests) and must reintegrate
    /// the site in [`on_site_restored`](Protocol::on_site_restored). The
    /// definitive cleanup still runs when the detector later *confirms* the
    /// failure via [`on_site_failure`](Protocol::on_site_failure).
    fn on_site_suspected(&mut self, site: SiteId, fx: &mut Effects<Self::Msg>) {
        let _ = (site, fx);
    }

    /// A previously suspected `site` has been heard from again: the
    /// suspicion was false and the site must be reintegrated (messages to it
    /// no longer dropped at source, re-admitted to quorum selection).
    fn on_site_restored(&mut self, site: SiteId, fx: &mut Effects<Self::Msg>) {
        let _ = (site, fx);
    }

    /// A crashed `site` has announced it restarted with fresh state (rejoin
    /// handshake), under boot `incarnation` (a counter that strictly
    /// increases across the peer's restarts; `0` when the driver does not
    /// track incarnations). Layers should reset any per-peer connection
    /// state (the rejoiner lost all protocol memory) and then reintegrate
    /// it; the default defers to
    /// [`on_site_restored`](Protocol::on_site_restored).
    fn on_peer_rejoined(&mut self, site: SiteId, incarnation: u64, fx: &mut Effects<Self::Msg>) {
        let _ = incarnation;
        self.on_site_restored(site, fx);
    }

    /// This site itself has just restarted after a crash, with fresh state.
    ///
    /// Layers announce themselves to peers here (the detector broadcasts a
    /// rejoin message) and may defer normal operation until the rejoin
    /// handshake completes.
    fn on_recover(&mut self, fx: &mut Effects<Self::Msg>) {
        let _ = fx;
    }

    /// The rejoin grace window opened by [`on_recover`](Protocol::on_recover)
    /// has elapsed: the site may resume full operation (arbitration,
    /// granting) with whatever state the handshake rebuilt.
    fn on_rejoin_complete(&mut self, fx: &mut Effects<Self::Msg>) {
        let _ = fx;
    }

    /// Whether this site's rejoin resynchronization is still incomplete:
    /// it has restarted ([`on_recover`](Protocol::on_recover)) but not yet
    /// heard resync answers from every peer it is waiting on. Layers that
    /// gate rejoin completion on peer answers report `true` here so the
    /// detector keeps its grace window open (and keeps re-announcing the
    /// rejoin) instead of closing on a fixed timeout. Default: `false`
    /// (purely timer-gated rejoin).
    fn rejoin_pending(&self) -> bool {
        false
    }

    /// Informs the protocol of this site's boot incarnation (a driver-
    /// maintained counter that strictly increases across this site's
    /// restarts). Called once before `on_start`/`on_recover` of each life.
    /// Layers use it to make post-restart identifiers (link epochs, rejoin
    /// announcements) distinguishable from pre-crash ones. Default: ignored.
    fn set_incarnation(&mut self, incarnation: u64) {
        let _ = incarnation;
    }

    /// Informs the protocol of the full set of peers it shares the system
    /// with (excluding itself), regardless of quorum membership. Called
    /// once at stack-construction time by layers that know the topology
    /// (the failure detector). Algorithms that resynchronize state on
    /// recovery use it to know whom to await answers from. Default: ignored.
    fn set_peer_universe(&mut self, peers: &[SiteId]) {
        let _ = peers;
    }

    /// Informs time-aware layers of the driver's current time, before any
    /// event is delivered.
    ///
    /// The mutual-exclusion algorithms themselves are time-free and ignore
    /// this; the reliable transport wrapper
    /// ([`Reliable`](crate::transport::Reliable)) uses it to timestamp
    /// outgoing packets for retransmission scheduling. Drivers must call it
    /// with a monotonically non-decreasing clock (virtual ticks under the
    /// simulator, microseconds since start under the runtime).
    fn set_now(&mut self, now: u64) {
        let _ = now;
    }

    /// The earliest time at which this site needs [`on_timer`](Protocol::on_timer)
    /// called, or `None` if no timer is armed.
    ///
    /// Drivers poll this after every event they deliver to the site and
    /// schedule a wake-up accordingly. Spurious (early or duplicate)
    /// wake-ups are harmless.
    fn next_timer(&self) -> Option<u64> {
        None
    }

    /// A driver timer wake-up at time `now` (see [`next_timer`](Protocol::next_timer)).
    ///
    /// Time-free protocols ignore this; the reliable transport retransmits
    /// whatever is due.
    fn on_timer(&mut self, now: u64, fx: &mut Effects<Self::Msg>) {
        let _ = (now, fx);
    }

    /// Transport-layer counters, if a transport wrapper is present.
    ///
    /// `None` for bare protocols; [`Reliable`](crate::transport::Reliable)
    /// reports its retransmission/dedup statistics here so drivers can
    /// aggregate them into run metrics without knowing the wrapper type.
    fn transport_counters(&self) -> Option<crate::transport::TransportCounters> {
        None
    }

    /// Failure-detector counters, if a detector wrapper is present.
    ///
    /// `None` for bare protocols; [`Detector`](crate::detector::Detector)
    /// reports its heartbeat/suspicion statistics here, mirroring
    /// [`transport_counters`](Protocol::transport_counters).
    fn detector_counters(&self) -> Option<crate::detector::DetectorCounters> {
        None
    }
}

/// Supplies (possibly reconstructed) quorums for fault tolerance.
///
/// §6 of the paper: when a member of a site's quorum fails, the site
/// "executes the quorum construction algorithm to select another quorum"
/// avoiding the failed sites. Implementations live in `qmx-quorum` (the tree
/// quorum of Agrawal–El Abbadi is the canonical reconstructible coterie);
/// `qmx-core` only defines the interface so the protocol crate stays
/// construction-agnostic, exactly as the algorithm is.
pub trait QuorumSource: Send + Sync {
    /// Returns a quorum for `site` that avoids every site in `down`, or
    /// `None` if no live quorum exists (the site becomes inaccessible, as the
    /// paper prescribes).
    fn quorum_avoiding(&mut self, site: SiteId, down: &BTreeSet<SiteId>) -> Option<Vec<SiteId>>;

    /// Clones the source as a boxed trait object (lets protocol instances
    /// holding a source be `Clone`, which the model checker requires).
    fn box_clone(&self) -> Box<dyn QuorumSource>;
}

impl Clone for Box<dyn QuorumSource> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A fixed quorum assignment with no reconstruction capability.
///
/// Useful for running the fault-tolerant protocol with constructions that
/// tolerate failures without reconfiguration (e.g. majority-in-subgroup
/// schemes), or in tests: if any member is down the source reports the site
/// inaccessible.
#[derive(Debug, Clone)]
pub struct StaticQuorums {
    quorums: Vec<Vec<SiteId>>,
}

impl StaticQuorums {
    /// Creates a static source from one quorum per site (indexed by site id).
    pub fn new(quorums: Vec<Vec<SiteId>>) -> Self {
        StaticQuorums { quorums }
    }
}

impl QuorumSource for StaticQuorums {
    fn quorum_avoiding(&mut self, site: SiteId, down: &BTreeSet<SiteId>) -> Option<Vec<SiteId>> {
        let q = self.quorums.get(site.index())?.clone();
        if q.iter().any(|m| down.contains(m)) {
            None
        } else {
            Some(q)
        }
    }

    fn box_clone(&self) -> Box<dyn QuorumSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Dummy;
    impl MsgMeta for Dummy {
        fn kind(&self) -> MsgKind {
            MsgKind::Info
        }
    }

    #[test]
    fn effects_collects_and_drains() {
        let mut fx: Effects<Dummy> = Effects::new();
        assert!(!fx.entered_cs());
        fx.send(SiteId(1), Dummy);
        fx.send(SiteId(2), Dummy);
        fx.enter_cs();
        assert_eq!(fx.sends().len(), 2);
        let (sends, entered) = fx.drain();
        assert_eq!(sends.len(), 2);
        assert_eq!(entered, vec![ResourceId::SOLO]);
        // Drained: empty and entry list reset.
        let (sends, entered) = fx.drain();
        assert!(sends.is_empty());
        assert!(entered.is_empty());
    }

    #[test]
    fn take_sends_resets_entry_flag() {
        let mut fx: Effects<Dummy> = Effects::new();
        fx.enter_cs();
        fx.send(SiteId(0), Dummy);
        let sends = fx.take_sends();
        assert_eq!(sends.len(), 1);
        assert!(!fx.entered_cs());
    }

    #[test]
    fn site_id_ordering_and_index() {
        assert!(SiteId(1) < SiteId(2));
        assert_eq!(SiteId(7).index(), 7);
        assert_eq!(SiteId::from(3u32), SiteId(3));
        assert_eq!(SiteId(4).to_string(), "S4");
    }

    #[test]
    fn msg_kind_labels_are_distinct() {
        let labels: BTreeSet<&str> = MsgKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), MsgKind::ALL.len());
        assert_eq!(MsgKind::Transfer.to_string(), "transfer");
    }

    #[test]
    fn static_quorums_reports_inaccessible_when_member_down() {
        let mut src =
            StaticQuorums::new(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(1), SiteId(2)]]);
        let none_down = BTreeSet::new();
        assert_eq!(
            src.quorum_avoiding(SiteId(0), &none_down),
            Some(vec![SiteId(0), SiteId(1)])
        );
        let mut down = BTreeSet::new();
        down.insert(SiteId(1));
        assert_eq!(src.quorum_avoiding(SiteId(0), &down), None);
        assert_eq!(src.quorum_avoiding(SiteId(9), &none_down), None);
    }
}
