//! Multiplexing many named locks over one site set and one link layer.
//!
//! The paper arbitrates a single critical section. A production lock
//! *service* serves millions of named resources, and running one full
//! `Detector<Reliable<DelayOptimal>>` stack per resource would be absurd:
//! every resource would heartbeat every peer, every resource would keep its
//! own retransmit buffers, and one site crash would be suspected, confirmed
//! and fenced once *per lock* instead of once per link.
//!
//! [`LockSpace`] fixes the layering. It is itself a [`Protocol`] whose wire
//! message [`ResMsg`] tags the inner algorithm's messages with a
//! [`ResourceId`], and it keeps **per-resource protocol state** in a sharded
//! table keyed by that id. Stacked as
//!
//! ```text
//! Detector< Reliable< LockSpace<DelayOptimal> > >
//! ```
//!
//! the transport and detector wrappers sit *outside* the resource
//! multiplexer, so there is exactly **one** ack/retransmit/epoch machine and
//! **one** heartbeat state per link, shared by all resources:
//!
//! * a crash bumps the link epoch once, and the fence is observed by every
//!   resource shard (the rejoin/failure hooks fan out to all of them);
//! * heartbeat volume is a function of `N`, not of the number of locks;
//! * messages from many resources to the same peer share one FIFO sequence
//!   space (the prerequisite for link-level batching).
//!
//! Shards are created **lazily** on first touch via a factory closure, so a
//! zipf-skewed workload over a million-resource namespace only materializes
//! the resources actually used. Timer scheduling is indexed (a `BTreeSet` of
//! `(due, resource)` pairs), so [`Protocol::next_timer`] and
//! [`Protocol::on_timer`] cost `O(log R)` in the touched shards, never a
//! scan of the whole table; the driver clock is stamped onto a shard only
//! when the shard is touched.
//!
//! The inner protocol must signal CS entry per its own single-resource
//! convention ([`Effects::enter_cs`]); the lock space re-tags each entry
//! with the shard's id so drivers observe [`Effects::entered_resources`].
//! Inner protocols must have an effect-free `on_start` (true of the
//! permission-based algorithms in this workspace; a token protocol that
//! announces initial placement would need eager shard creation).

use crate::protocol::{Effects, MsgKind, MsgMeta, Protocol, ResourceId, SiteId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A wire message of one resource shard, tagged with its [`ResourceId`].
#[derive(Clone, Debug, PartialEq)]
pub struct ResMsg<M> {
    /// The resource whose shard sent (and should receive) `body`.
    pub rid: ResourceId,
    /// The inner protocol's message.
    pub body: M,
}

impl<M: MsgMeta> MsgMeta for ResMsg<M> {
    fn kind(&self) -> MsgKind {
        self.body.kind()
    }
}

/// Builds the protocol instance for a freshly touched resource shard.
///
/// `Arc` so a lock space is cheaply cloneable (the simulator's
/// crash-recovery path clones a pristine image of every site).
pub type ShardFactory<P> = Arc<dyn Fn(ResourceId) -> P + Send + Sync>;

/// A sharded multi-resource lock space over a single-resource [`Protocol`].
///
/// See the [module docs](self) for the layering rationale. Construct with
/// [`LockSpace::new`], address individual locks through the `_r` methods of
/// [`Protocol`] ([`request_cs_r`](Protocol::request_cs_r),
/// [`release_cs_r`](Protocol::release_cs_r), …), and stack transport /
/// detector wrappers *outside* so they are shared per link.
#[derive(Clone)]
pub struct LockSpace<P> {
    site: SiteId,
    factory: ShardFactory<P>,
    shards: BTreeMap<u32, P>,
    /// Driver clock, stamped onto shards lazily (on touch).
    now: u64,
    incarnation: u64,
    peer_universe: Option<Vec<SiteId>>,
    /// Timer index: earliest wake-up of each armed shard …
    timer_of: BTreeMap<u32, u64>,
    /// … and the same pairs ordered by due time for `next_timer`.
    timers: BTreeSet<(u64, u32)>,
    /// Last observed `aborts + deadline_aborts` total per shard, for
    /// [`Protocol::drain_aborted_resources`].
    aborts_seen: BTreeMap<u32, u64>,
    /// Sites currently down from the detector's point of view
    /// (`true` = failure confirmed, `false` = merely suspected). Shards
    /// are created lazily, so a shard touched *after* a suspicion fired
    /// would otherwise start blind to it and request from a dead quorum
    /// member; this set is replayed into every fresh shard.
    down: BTreeMap<SiteId, bool>,
}

impl<P: Protocol> LockSpace<P> {
    /// Creates an empty lock space for `site`; shards are built on first
    /// touch by `factory`.
    pub fn new(site: SiteId, factory: ShardFactory<P>) -> Self {
        LockSpace {
            site,
            factory,
            shards: BTreeMap::new(),
            now: 0,
            incarnation: 0,
            peer_universe: None,
            timer_of: BTreeMap::new(),
            timers: BTreeSet::new(),
            aborts_seen: BTreeMap::new(),
            down: BTreeMap::new(),
        }
    }

    /// Number of shards materialized so far.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read-only view of the shard for `rid`, if it has been touched.
    pub fn shard(&self, rid: ResourceId) -> Option<&P> {
        self.shards.get(&rid.0)
    }

    /// The ids of all materialized shards, ascending.
    pub fn resource_ids(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.shards.keys().map(|&r| ResourceId(r))
    }

    /// Re-seats `rid` in the timer index after its shard may have re-armed.
    fn reindex_timer(&mut self, rid: u32, next: Option<u64>) {
        if let Some(old) = self.timer_of.remove(&rid) {
            self.timers.remove(&(old, rid));
        }
        if let Some(due) = next {
            self.timer_of.insert(rid, due);
            self.timers.insert((due, rid));
        }
    }

    /// Ensures the shard for `rid` exists and is stamped with the current
    /// clock, creating it through the factory on first touch.
    fn ensure(&mut self, rid: ResourceId) -> &mut P {
        let now = self.now;
        let incarnation = self.incarnation;
        if !self.shards.contains_key(&rid.0) {
            let mut shard = (self.factory)(rid);
            debug_assert_eq!(shard.site(), self.site, "factory must build for this site");
            shard.set_incarnation(incarnation);
            if let Some(peers) = &self.peer_universe {
                shard.set_peer_universe(peers);
            }
            shard.set_now(now);
            // Inner protocols must not announce anything at start (see the
            // module docs); run the hook anyway so shard state is complete.
            let mut fx = Effects::new();
            shard.on_start(&mut fx);
            debug_assert!(
                fx.sends().is_empty() && !fx.entered_cs(),
                "lock-space shards require an effect-free on_start"
            );
            // Replay the current down-set so the shard routes around
            // already-suspected/failed sites from its very first request.
            // On an idle, freshly built shard these hooks only adjust
            // failure bookkeeping and quorum choice — no sends.
            for (&s, &confirmed) in &self.down {
                if confirmed {
                    shard.on_site_failure(s, &mut fx);
                } else {
                    shard.on_site_suspected(s, &mut fx);
                }
            }
            debug_assert!(
                fx.sends().is_empty() && !fx.entered_cs(),
                "down-set replay on an idle shard must be effect-free"
            );
            self.shards.insert(rid.0, shard);
        }
        let shard = self.shards.get_mut(&rid.0).expect("ensured above");
        shard.set_now(now);
        shard
    }

    /// Runs `f` against the shard for `rid`, re-tagging its sends and CS
    /// entries with the resource id and re-seating its timer.
    fn with_shard(
        &mut self,
        rid: ResourceId,
        fx: &mut Effects<ResMsg<P::Msg>>,
        f: impl FnOnce(&mut P, &mut Effects<P::Msg>),
    ) {
        let mut inner_fx = Effects::new();
        let shard = self.ensure(rid);
        f(shard, &mut inner_fx);
        let next = shard.next_timer();
        let (sends, entered) = inner_fx.drain();
        for (to, body) in sends {
            fx.send(to, ResMsg { rid, body });
        }
        for _ in entered {
            fx.enter_cs_r(rid);
        }
        self.reindex_timer(rid.0, next);
    }

    /// Fans a hook out to every materialized shard, in resource-id order.
    fn broadcast(
        &mut self,
        fx: &mut Effects<ResMsg<P::Msg>>,
        mut f: impl FnMut(&mut P, &mut Effects<P::Msg>),
    ) {
        let rids: Vec<u32> = self.shards.keys().copied().collect();
        for rid in rids {
            self.with_shard(ResourceId(rid), fx, &mut f);
        }
    }

    /// Current `aborts + deadline_aborts` total of one shard.
    fn abort_total(shard: &P) -> u64 {
        shard
            .abort_counters()
            .map_or(0, |c| c.aborts + c.deadline_aborts)
    }
}

impl<P: Protocol> Protocol for LockSpace<P> {
    type Msg = ResMsg<P::Msg>;

    fn site(&self) -> SiteId {
        self.site
    }

    fn request_cs(&mut self, fx: &mut Effects<Self::Msg>) {
        self.request_cs_r(ResourceId::SOLO, fx);
    }

    fn release_cs(&mut self, fx: &mut Effects<Self::Msg>) {
        self.release_cs_r(ResourceId::SOLO, fx);
    }

    fn handle(&mut self, from: SiteId, msg: Self::Msg, fx: &mut Effects<Self::Msg>) {
        let ResMsg { rid, body } = msg;
        self.with_shard(rid, fx, |p, ifx| p.handle(from, body, ifx));
    }

    /// Whether *any* shard is inside its CS (single-resource drivers treat
    /// the whole space as one lock; use [`in_cs_r`](Protocol::in_cs_r) for a
    /// specific resource).
    fn in_cs(&self) -> bool {
        self.shards.values().any(|p| p.in_cs())
    }

    /// Whether *any* shard has an unfulfilled request outstanding.
    fn wants_cs(&self) -> bool {
        self.shards.values().any(|p| p.wants_cs())
    }

    fn abort_cs(&mut self, fx: &mut Effects<Self::Msg>) -> bool {
        self.abort_cs_r(ResourceId::SOLO, fx)
    }

    fn abortable(&self) -> bool {
        self.shards.values().any(|p| p.abortable())
    }

    fn set_deadline(&mut self, deadline: Option<u64>) {
        self.set_deadline_r(ResourceId::SOLO, deadline);
    }

    fn abort_counters(&self) -> Option<crate::protocol::AbortCounters> {
        let mut total = crate::protocol::AbortCounters::default();
        let mut any = false;
        for shard in self.shards.values() {
            if let Some(c) = shard.abort_counters() {
                total.merge(&c);
                any = true;
            }
        }
        any.then_some(total)
    }

    fn request_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) {
        self.with_shard(rid, fx, |p, ifx| p.request_cs(ifx));
    }

    fn release_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) {
        self.with_shard(rid, fx, |p, ifx| p.release_cs(ifx));
    }

    fn abort_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) -> bool {
        let mut aborted = false;
        self.with_shard(rid, fx, |p, ifx| aborted = p.abort_cs(ifx));
        aborted
    }

    fn in_cs_r(&self, rid: ResourceId) -> bool {
        self.shards.get(&rid.0).is_some_and(|p| p.in_cs())
    }

    fn wants_cs_r(&self, rid: ResourceId) -> bool {
        self.shards.get(&rid.0).is_some_and(|p| p.wants_cs())
    }

    fn set_deadline_r(&mut self, rid: ResourceId, deadline: Option<u64>) {
        let shard = self.ensure(rid);
        shard.set_deadline(deadline);
        let next = shard.next_timer();
        self.reindex_timer(rid.0, next);
    }

    fn drain_aborted_resources(&mut self) -> Vec<ResourceId> {
        let mut out = Vec::new();
        for (&rid, shard) in &self.shards {
            let total = Self::abort_total(shard);
            let seen = self.aborts_seen.entry(rid).or_insert(0);
            if total > *seen {
                *seen = total;
                out.push(ResourceId(rid));
            }
        }
        out
    }

    fn on_site_failure(&mut self, failed: SiteId, fx: &mut Effects<Self::Msg>) {
        self.down.insert(failed, true);
        self.broadcast(fx, |p, ifx| p.on_site_failure(failed, ifx));
    }

    fn on_site_suspected(&mut self, site: SiteId, fx: &mut Effects<Self::Msg>) {
        // A confirmed failure is never downgraded back to suspicion.
        self.down.entry(site).or_insert(false);
        self.broadcast(fx, |p, ifx| p.on_site_suspected(site, ifx));
    }

    fn on_site_restored(&mut self, site: SiteId, fx: &mut Effects<Self::Msg>) {
        self.down.remove(&site);
        self.broadcast(fx, |p, ifx| p.on_site_restored(site, ifx));
    }

    fn on_peer_rejoined(&mut self, site: SiteId, incarnation: u64, fx: &mut Effects<Self::Msg>) {
        // A rejoined peer is alive with fresh state: no longer down.
        self.down.remove(&site);
        self.broadcast(fx, |p, ifx| p.on_peer_rejoined(site, incarnation, ifx));
    }

    fn on_recover(&mut self, fx: &mut Effects<Self::Msg>) {
        self.broadcast(fx, |p, ifx| p.on_recover(ifx));
    }

    fn on_rejoin_complete(&mut self, fx: &mut Effects<Self::Msg>) {
        self.broadcast(fx, |p, ifx| p.on_rejoin_complete(ifx));
    }

    fn rejoin_pending(&self) -> bool {
        self.shards.values().any(|p| p.rejoin_pending())
    }

    fn set_incarnation(&mut self, incarnation: u64) {
        self.incarnation = incarnation;
        for shard in self.shards.values_mut() {
            shard.set_incarnation(incarnation);
        }
    }

    fn set_peer_universe(&mut self, peers: &[SiteId]) {
        self.peer_universe = Some(peers.to_vec());
        for shard in self.shards.values_mut() {
            shard.set_peer_universe(peers);
        }
    }

    fn set_now(&mut self, now: u64) {
        // Lazy: shards are stamped when touched, so a 10^6-resource space
        // does not pay O(R) per driver event.
        self.now = self.now.max(now);
    }

    fn next_timer(&self) -> Option<u64> {
        self.timers.first().map(|&(due, _)| due)
    }

    fn on_timer(&mut self, now: u64, fx: &mut Effects<Self::Msg>) {
        self.now = self.now.max(now);
        // Collect due shards first: processing may re-arm a shard, and the
        // re-armed deadline must wait for the next wake-up, not loop here.
        let mut due = Vec::new();
        while let Some(&(t, rid)) = self.timers.first() {
            if t > self.now {
                break;
            }
            self.timers.remove(&(t, rid));
            self.timer_of.remove(&rid);
            due.push(rid);
        }
        for rid in due {
            self.with_shard(ResourceId(rid), fx, |p, ifx| p.on_timer(now, ifx));
        }
    }
}

impl<P: Protocol + fmt::Debug> fmt::Debug for LockSpace<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockSpace")
            .field("site", &self.site)
            .field("now", &self.now)
            .field("incarnation", &self.incarnation)
            .field("shards", &self.shards)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay_optimal::{Config, DelayOptimal};

    fn space(site: u32, n: u32) -> LockSpace<DelayOptimal> {
        let quorum: Vec<SiteId> = (0..n).map(SiteId).collect();
        LockSpace::new(
            SiteId(site),
            Arc::new(move |_rid| {
                DelayOptimal::new(SiteId(site), quorum.clone(), Config::default())
            }),
        )
    }

    /// Delivers every queued send to its destination space until quiet,
    /// returning the resources each site entered along the way.
    fn pump(
        spaces: &mut [LockSpace<DelayOptimal>],
        fx: &mut [Effects<ResMsg<crate::Msg>>],
    ) -> Vec<Vec<ResourceId>> {
        let mut entered = vec![Vec::new(); spaces.len()];
        for (i, f) in fx.iter_mut().enumerate() {
            entered[i].extend(f.drain_entered());
        }
        loop {
            let mut moved = false;
            for i in 0..spaces.len() {
                let sends = fx[i].take_sends();
                for (to, msg) in sends {
                    moved = true;
                    let dst = to.index();
                    let mut dst_fx = Effects::new();
                    spaces[dst].handle(SiteId(i as u32), msg, &mut dst_fx);
                    for (s_to, s_msg) in dst_fx.drain_sends() {
                        fx[dst].send(s_to, s_msg);
                    }
                    entered[dst].extend(dst_fx.drain_entered());
                }
            }
            if !moved {
                break;
            }
        }
        entered
    }

    #[test]
    fn shards_are_lazy_and_independent() {
        let mut s0 = space(0, 2);
        let s1 = space(1, 2);
        assert_eq!(s0.shard_count(), 0);

        let mut fx0 = Effects::new();
        s0.request_cs_r(ResourceId(7), &mut fx0);
        assert_eq!(s0.shard_count(), 1);
        assert!(s0.wants_cs_r(ResourceId(7)) || s0.in_cs_r(ResourceId(7)));
        assert!(!s0.wants_cs_r(ResourceId(8)) && !s0.in_cs_r(ResourceId(8)));

        // The request reaches site 1 tagged with resource 7 and the grant
        // flows back; both shards materialize only resource 7.
        let mut fx = vec![fx0, Effects::new()];
        let mut spaces = [s0, s1];
        let entered = pump(&mut spaces, &mut fx);
        let [s0, s1] = &spaces;
        assert!(s0.in_cs_r(ResourceId(7)), "entered resource 7");
        assert_eq!(entered[0], vec![ResourceId(7)]);
        assert_eq!(s1.shard_count(), 1);
        assert!(!s0.in_cs_r(ResourceId(0)));
    }

    #[test]
    fn distinct_resources_admit_concurrently() {
        // One site set, two resources: both locks can be held at once (by
        // different or the same site) — they are independent CS instances.
        let mut s0 = space(0, 2);
        let mut fx0 = Effects::new();
        s0.request_cs_r(ResourceId(1), &mut fx0);
        s0.request_cs_r(ResourceId(2), &mut fx0);
        let mut fx = vec![fx0, Effects::new()];
        let mut spaces = [s0, space(1, 2)];
        pump(&mut spaces, &mut fx);
        assert!(spaces[0].in_cs_r(ResourceId(1)));
        assert!(spaces[0].in_cs_r(ResourceId(2)));
        // Solo-resource view: the space as a whole is "in CS".
        assert!(spaces[0].in_cs());
    }

    #[test]
    fn failure_hooks_fan_out_to_all_shards() {
        let mut s0 = space(0, 3);
        let mut fx = Effects::new();
        s0.request_cs_r(ResourceId(1), &mut fx);
        s0.request_cs_r(ResourceId(2), &mut fx);
        fx.take_sends();
        // Both shards exist; a failure notice reaches both (each withdraws /
        // reconstructs per §6 — here we just assert the fan-out happens by
        // observing both shards still answer coherently afterwards).
        let mut fx2 = Effects::new();
        s0.on_site_failure(SiteId(1), &mut fx2);
        assert_eq!(s0.shard_count(), 2);
    }

    #[test]
    fn timer_index_tracks_sharded_deadlines() {
        let mut s0 = space(0, 2);
        assert_eq!(s0.next_timer(), None);
        s0.set_now(10);
        s0.set_deadline_r(ResourceId(3), Some(500));
        s0.set_deadline_r(ResourceId(9), Some(300));
        let mut fx = Effects::new();
        s0.request_cs_r(ResourceId(3), &mut fx);
        s0.request_cs_r(ResourceId(9), &mut fx);
        fx.take_sends();
        // Earliest armed deadline wins.
        assert_eq!(s0.next_timer(), Some(300));
        // Firing resource 9's deadline aborts it and re-seats the index.
        let mut fx = Effects::new();
        s0.on_timer(300, &mut fx);
        assert_eq!(s0.next_timer(), Some(500));
        assert_eq!(s0.drain_aborted_resources(), vec![ResourceId(9)]);
        assert!(s0.drain_aborted_resources().is_empty(), "drained once");
    }
}
