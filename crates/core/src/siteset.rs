//! A dense bitset over [`SiteId`]s for the protocol hot path.
//!
//! The delay-optimal state machine spends most of its time asking "is this
//! site in that set?" — quorum membership, reply accounting, suspicion
//! checks. `BTreeSet<SiteId>` answers that with a pointer-chasing tree
//! walk and an allocation per mutation; [`SiteSet`] answers with one shift
//! and mask into a few inline `u64` words. Site ids are small dense
//! integers (assigned `0..n` by every driver in this workspace), so a
//! bitset is the natural representation; `BTreeSet` remains at API
//! boundaries where callers observe ordered iteration over arbitrary sets.

use crate::protocol::SiteId;
use std::collections::BTreeSet;
use std::fmt;

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// Words kept inline before spilling to the heap. Four words cover
/// `n = 256` sites — far beyond every experiment in this repo — without
/// any allocation.
const INLINE_WORDS: usize = 4;

/// A set of [`SiteId`]s backed by `u64` bit words.
///
/// Semantically equivalent to `BTreeSet<SiteId>` (iteration is in
/// ascending id order), but membership tests, inserts and removals are
/// O(1) word operations and the common small-universe case stores
/// everything inline.
#[derive(Clone, PartialEq, Eq)]
pub struct SiteSet {
    /// Inline storage for the first `INLINE_WORDS * 64` site ids.
    inline: [u64; INLINE_WORDS],
    /// Overflow words for ids ≥ `INLINE_WORDS * 64`, indexed from word
    /// `INLINE_WORDS`. Empty until a large id is inserted.
    spill: Vec<u64>,
}

impl SiteSet {
    /// Creates an empty set.
    #[must_use]
    pub const fn new() -> Self {
        SiteSet {
            inline: [0; INLINE_WORDS],
            spill: Vec::new(),
        }
    }

    #[inline]
    fn word_of(site: SiteId) -> usize {
        site.index() / WORD_BITS
    }

    #[inline]
    fn mask_of(site: SiteId) -> u64 {
        1u64 << (site.index() % WORD_BITS)
    }

    #[inline]
    fn word(&self, w: usize) -> u64 {
        if w < INLINE_WORDS {
            self.inline[w]
        } else {
            self.spill.get(w - INLINE_WORDS).copied().unwrap_or(0)
        }
    }

    #[inline]
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if w < INLINE_WORDS {
            &mut self.inline[w]
        } else {
            let idx = w - INLINE_WORDS;
            if idx >= self.spill.len() {
                self.spill.resize(idx + 1, 0);
            }
            &mut self.spill[idx]
        }
    }

    fn words(&self) -> usize {
        INLINE_WORDS + self.spill.len()
    }

    /// Inserts a site; returns `true` if it was not already present.
    pub fn insert(&mut self, site: SiteId) -> bool {
        let w = self.word_mut(Self::word_of(site));
        let mask = Self::mask_of(site);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes a site; returns `true` if it was present.
    pub fn remove(&mut self, site: SiteId) -> bool {
        let w = Self::word_of(site);
        if w >= self.words() {
            return false;
        }
        let word = self.word_mut(w);
        let mask = Self::mask_of(site);
        let had = *word & mask != 0;
        *word &= !mask;
        had
    }

    /// Membership test.
    #[inline]
    #[must_use]
    pub fn contains(&self, site: SiteId) -> bool {
        self.word(Self::word_of(site)) & Self::mask_of(site) != 0
    }

    /// Number of sites in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inline
            .iter()
            .chain(self.spill.iter())
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// `true` when no site is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inline.iter().all(|&w| w == 0) && self.spill.iter().all(|&w| w == 0)
    }

    /// Removes every site.
    pub fn clear(&mut self) {
        self.inline = [0; INLINE_WORDS];
        self.spill.clear();
    }

    /// `true` when every site in `self` is also in `other`.
    #[must_use]
    pub fn is_subset(&self, other: &SiteSet) -> bool {
        (0..self.words()).all(|w| self.word(w) & !other.word(w) == 0)
    }

    /// Iterates sites in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.words()).flat_map(move |w| {
            let mut bits = self.word(w);
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(SiteId((w * WORD_BITS + b) as u32))
            })
        })
    }

    /// Copies the set into an ordered `BTreeSet` for API boundaries that
    /// observe ordered-set semantics (e.g. [`crate::QuorumSource`]).
    #[must_use]
    pub fn to_btree(&self) -> BTreeSet<SiteId> {
        self.iter().collect()
    }
}

impl Default for SiteSet {
    fn default() -> Self {
        SiteSet::new()
    }
}

impl FromIterator<SiteId> for SiteSet {
    fn from_iter<I: IntoIterator<Item = SiteId>>(iter: I) -> Self {
        let mut s = SiteSet::new();
        for site in iter {
            s.insert(site);
        }
        s
    }
}

impl Extend<SiteId> for SiteSet {
    fn extend<I: IntoIterator<Item = SiteId>>(&mut self, iter: I) {
        for site in iter {
            self.insert(site);
        }
    }
}

// Debug prints exactly like the `BTreeSet` it replaced — ordered
// `{S0, S3}` — because the model checker fingerprints protocol state via
// `Debug` and golden fingerprints must not depend on the representation.
impl fmt::Debug for SiteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> SiteId {
        SiteId(id)
    }

    #[test]
    fn insert_remove_contains_len() {
        let mut set = SiteSet::new();
        assert!(set.is_empty());
        assert!(set.insert(s(3)));
        assert!(!set.insert(s(3)), "double insert reports not-fresh");
        assert!(set.insert(s(0)));
        assert!(set.contains(s(3)));
        assert!(set.contains(s(0)));
        assert!(!set.contains(s(1)));
        assert_eq!(set.len(), 2);
        assert!(set.remove(s(3)));
        assert!(!set.remove(s(3)), "double remove reports absent");
        assert!(!set.contains(s(3)));
        assert_eq!(set.len(), 1);
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn iteration_is_ordered() {
        let set: SiteSet = [s(64), s(2), s(130), s(7), s(65)].into_iter().collect();
        let ids: Vec<u32> = set.iter().map(|x| x.0).collect();
        assert_eq!(ids, vec![2, 7, 64, 65, 130]);
        assert_eq!(set.to_btree().len(), 5);
    }

    #[test]
    fn spill_words_beyond_inline_range() {
        let mut set = SiteSet::new();
        let big = s((INLINE_WORDS * WORD_BITS) as u32 + 10);
        assert!(!set.contains(big));
        assert!(!set.remove(big), "removing from absent spill is a no-op");
        assert!(set.insert(big));
        assert!(set.contains(big));
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next(), Some(big));
        assert!(set.remove(big));
        assert!(set.is_empty());
    }

    #[test]
    fn subset_relation() {
        let small: SiteSet = [s(1), s(5)].into_iter().collect();
        let large: SiteSet = [s(1), s(5), s(9)].into_iter().collect();
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
        assert!(SiteSet::new().is_subset(&small));
        assert!(small.is_subset(&small));
        // A spilled member in `self` missing from a purely inline `other`.
        let mut spilled = small.clone();
        spilled.insert(s(300));
        assert!(!spilled.is_subset(&large));
        assert!(small.is_subset(&spilled));
    }

    #[test]
    fn equality_ignores_spill_capacity() {
        // Equality must be semantic: a set whose spill vec was allocated
        // and then emptied equals one that never spilled... as long as the
        // words agree. (We keep representation equality here: removing a
        // spilled bit zeroes the word but keeps the vec, so compare via
        // iteration order too.)
        let mut a = SiteSet::new();
        a.insert(s(300));
        a.remove(s(300));
        let b = SiteSet::new();
        assert_eq!(a.iter().count(), b.iter().count());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn debug_matches_btreeset_shape() {
        let set: SiteSet = [s(2), s(0)].into_iter().collect();
        let bt: BTreeSet<SiteId> = [s(2), s(0)].into_iter().collect();
        assert_eq!(format!("{set:?}"), format!("{bt:?}"));
    }
}
