//! Reliable delivery over lossy links: the transport layer.
//!
//! The paper assumes "error-free" FIFO channels (§2): every wire message
//! arrives, exactly once, in order. That is an abstraction a real network
//! does not provide — packets are dropped, duplicated and delayed. This
//! module closes the gap with a classic ack/retransmit/dedup protocol so
//! the mutual-exclusion state machines can keep assuming a perfect channel:
//!
//! * **Per-link sequence numbers.** Every data packet from `a` to `b`
//!   carries a sequence number from a counter dedicated to the `(a, b)`
//!   link.
//! * **Cumulative, piggybacked acks.** Every data packet (and explicit
//!   `Ack`) carries the highest sequence number received in order from the
//!   destination; one ack confirms everything at or below it. Acks ride on
//!   protocol traffic when there is any and fall back to explicit `Ack`
//!   packets otherwise.
//! * **Timeout-driven retransmission** with exponential backoff (doubling
//!   from [`TransportConfig::rto_initial`] up to [`TransportConfig::rto_max`])
//!   and a retry cap ([`TransportConfig::max_retries`]) so a send to a dead
//!   peer eventually quiesces instead of retrying forever.
//! * **Receiver-side dedup + reordering.** Packets at or below the
//!   cumulative receive point are duplicates: dropped (and re-acked, so the
//!   sender stops). Packets beyond the next expected number are buffered
//!   and delivered once the gap fills, restoring per-link FIFO.
//! * **Incarnation-fenced link epochs for crash–recovery.** Every packet
//!   and ack is stamped with the *epoch* of the half-link numbering it
//!   belongs to. Epochs are namespaced by the sender's boot *incarnation*
//!   (driver-supplied via [`Protocol::set_incarnation`]): a transport's
//!   epochs start at `incarnation << 32`, so a site restarted with a
//!   higher incarnation sends under epochs strictly above anything its
//!   pre-crash self could have used, and a survivor told the peer
//!   rejoined with incarnation `i` ([`Protocol::on_peer_rejoined`])
//!   expects exactly `i << 32` — the crashed incarnation's stragglers, of
//!   whatever sequence number, fail the epoch check instead of consuming
//!   the fresh numbering's sequence slots (which would silently swallow a
//!   live protocol message carrying the reused number). The survivor's
//!   own send half restarts under a bumped epoch, *rebasing* — not
//!   dropping — its unacked payloads into the new numbering: in-flight
//!   pre-crash data (a `Release` naming a forward beneficiary, say)
//!   still reaches the rejoined peer, in FIFO order ahead of anything
//!   sent after the announcement was processed, which the rejoin resync
//!   above relies on.
//!
//! The result is **exactly-once, per-link FIFO** delivery to the wrapped
//! protocol as long as the peer stays up and the link is *fair-lossy*
//! (retransmitting forever would eventually succeed; the retry cap bounds
//! "forever" at a probability of loss^`max_retries`, negligible for the
//! 1–20 % loss rates under study).
//!
//! [`Reliable`] wraps any [`Protocol`] implementation — the state machines
//! stay I/O-free and unchanged; drivers only additionally call the
//! [`Protocol::set_now`] / [`Protocol::next_timer`] / [`Protocol::on_timer`]
//! hooks (no-ops for bare protocols).
//!
//! Time units are the driver's: virtual ticks under `qmx-sim`, microseconds
//! under `qmx-runtime`. Pick [`TransportConfig`] values accordingly
//! (`rto_initial` of roughly 2–3× the typical one-way delay works well in
//! both). Request *deadlines* ([`Protocol::set_deadline`], `qmxctl run
//! --deadline`) ride the same timer hooks and share the same clock: a
//! deadline shorter than `rto_initial` aborts a request before the
//! transport has retried a lost packet even once, so keep deadlines at
//! several RTOs — or partitions and loss convert into spurious aborts the
//! retransmission machinery would have absorbed.
//!
//! ## Loss models
//!
//! [`LossModel`] + [`LinkFaults`] implement the *fault injection* side used
//! by both drivers: i.i.d. drop/duplication, bursty Gilbert–Elliott loss,
//! and per-link transient outage windows. The decision logic is pure — the
//! caller supplies uniform samples — so this crate stays RNG-free and both
//! drivers inject identically-distributed faults from their own seeded
//! generators.

use crate::protocol::{Effects, MsgKind, MsgMeta, Protocol, ResourceId, SiteId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Retransmission parameters of the reliable transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Initial retransmission timeout (driver time units).
    pub rto_initial: u64,
    /// Ceiling for the exponentially backed-off timeout.
    pub rto_max: u64,
    /// Retransmissions per packet before the transport gives up on it
    /// (the peer is presumed dead; §6's failure machinery takes over).
    pub max_retries: u32,
}

impl Default for TransportConfig {
    /// Defaults tuned for the simulator's `T = 1000`-tick mean delay:
    /// first retry after 2.5 T, backing off to 32 T, 40 attempts.
    fn default() -> Self {
        TransportConfig {
            rto_initial: 2_500,
            rto_max: 32_000,
            max_retries: 40,
        }
    }
}

/// Delivery/duplication/drop counters maintained by [`Reliable`] (and
/// aggregated by the drivers into their run metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Data packets sent for the first time.
    pub data_sent: u64,
    /// Data packets retransmitted after a timeout.
    pub retransmissions: u64,
    /// Explicit ack packets sent (piggybacked acks are free).
    pub acks_sent: u64,
    /// Received data packets discarded as duplicates.
    pub duplicates_dropped: u64,
    /// Received data packets buffered because they arrived ahead of a gap.
    pub reordered: u64,
    /// Packets abandoned after `max_retries` (peer presumed dead).
    pub gave_up: u64,
    /// Received data packets dropped as stragglers from a previous link
    /// incarnation (their epoch predates the current one).
    pub stale_epoch_dropped: u64,
    /// High-water mark of unacked packets across all links (ack backlog).
    pub max_unacked: u64,
}

impl TransportCounters {
    /// Accumulates `other` into `self` (driver-side aggregation).
    pub fn merge(&mut self, other: &TransportCounters) {
        self.data_sent += other.data_sent;
        self.retransmissions += other.retransmissions;
        self.acks_sent += other.acks_sent;
        self.duplicates_dropped += other.duplicates_dropped;
        self.reordered += other.reordered;
        self.gave_up += other.gave_up;
        self.stale_epoch_dropped += other.stale_epoch_dropped;
        self.max_unacked = self.max_unacked.max(other.max_unacked);
    }
}

/// Wire format of the reliable transport: protocol payloads with transport
/// headers, plus explicit acks.
#[derive(Debug, Clone)]
pub enum Packet<M> {
    /// A protocol message with its link sequence number and a piggybacked
    /// cumulative ack for the reverse direction.
    Data {
        /// Link incarnation the sequence number belongs to (see
        /// [module docs](self): bumped when the send half resets after the
        /// peer rejoins, so stragglers from the old incarnation cannot
        /// consume the new incarnation's sequence slots).
        epoch: u64,
        /// Per-link sequence number (1-based; FIFO order on the link).
        seq: u64,
        /// Link incarnation the piggybacked ack refers to.
        ack_epoch: u64,
        /// Cumulative ack: every reverse-direction packet `<= ack` arrived.
        ack: u64,
        /// The wrapped protocol message, reference-counted so the copy in
        /// the sender's retransmit buffer and every wire copy (duplicates,
        /// retransmissions) share one payload instead of deep-cloning it.
        payload: Arc<M>,
    },
    /// A standalone cumulative ack (sent when there is no data to ride on).
    Ack {
        /// Link incarnation the ack refers to (stale-epoch acks are ignored).
        epoch: u64,
        /// Every packet `<= ack` on the sender→receiver reverse link arrived.
        ack: u64,
    },
}

impl<M: MsgMeta> MsgMeta for Packet<M> {
    fn kind(&self) -> MsgKind {
        match self {
            // The payload keeps its protocol-level identity so §5-style
            // per-kind accounting still works through the transport.
            Packet::Data { payload, .. } => payload.kind(),
            Packet::Ack { .. } => MsgKind::Info,
        }
    }
}

/// One unacked outgoing packet awaiting an ack or its next retransmission.
///
/// The payload is shared with the wire packet(s) via `Arc`: a
/// retransmission bumps a reference count instead of cloning the message.
#[derive(Debug, Clone)]
struct Pending<M> {
    payload: Arc<M>,
    retries: u32,
    next_retry_at: u64,
    rto: u64,
}

/// Per-peer link state: send window, receive point, reorder buffer.
#[derive(Debug, Clone)]
struct LinkState<M> {
    /// Epoch of the outgoing half-link (based at this site's incarnation,
    /// bumped each time the peer rejoins and the send window restarts at 1).
    send_epoch: u64,
    /// Last sequence number assigned on the outgoing half-link.
    sent: u64,
    /// Outgoing packets not yet cumulatively acked, by sequence number.
    unacked: BTreeMap<u64, Pending<M>>,
    /// Epoch of the peer's send half currently being accepted.
    recv_epoch: u64,
    /// Highest sequence number received *in order* on the incoming half.
    recv_cum: u64,
    /// Received-ahead packets waiting for the gap to fill.
    reorder: BTreeMap<u64, Arc<M>>,
    /// Highest peer incarnation a rejoin announcement has been processed
    /// for (0 = none; announcements are deduplicated at the detector, this
    /// guards bare stacks and late duplicates).
    peer_inc: u64,
}

// No `Default`: links must start their send epoch at the owning
// transport's incarnation base, which a blanket default cannot know.
impl<M> LinkState<M> {
    fn fresh(epoch_base: u64) -> Self {
        LinkState {
            send_epoch: epoch_base,
            sent: 0,
            unacked: BTreeMap::new(),
            recv_epoch: 0,
            recv_cum: 0,
            reorder: BTreeMap::new(),
            peer_inc: 0,
        }
    }
}

/// Reliable-delivery wrapper: `Reliable<P>` is a [`Protocol`] whose wire
/// messages are [`Packet<P::Msg>`] and which presents exactly-once FIFO
/// delivery to the inner `P` (see the [module docs](self)).
#[derive(Clone)]
pub struct Reliable<P: Protocol> {
    inner: P,
    cfg: TransportConfig,
    now: u64,
    /// This site's boot incarnation; all send epochs live in
    /// `incarnation << 32 ..`. Set by the driver before `on_start` (see
    /// [`Protocol::set_incarnation`]); 0 for drivers that track none.
    incarnation: u64,
    links: BTreeMap<SiteId, LinkState<P::Msg>>,
    counters: TransportCounters,
}

impl<P: Protocol> Reliable<P> {
    /// Wraps `inner`, starting all links idle at time 0.
    pub fn new(inner: P, cfg: TransportConfig) -> Self {
        Reliable {
            inner,
            cfg,
            now: 0,
            incarnation: 0,
            links: BTreeMap::new(),
            counters: TransportCounters::default(),
        }
    }

    /// The wrapped protocol instance.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// This instance's transport counters.
    pub fn counters(&self) -> TransportCounters {
        self.counters
    }

    /// Total packets currently awaiting acks, across links.
    fn unacked_total(&self) -> u64 {
        self.links.values().map(|l| l.unacked.len() as u64).sum()
    }

    /// Converts queued inner-protocol sends into sequenced data packets.
    fn wrap_sends(&mut self, inner_fx: &mut Effects<P::Msg>, fx: &mut Effects<Packet<P::Msg>>) {
        let (sends, entered) = inner_fx.drain();
        for rid in entered {
            fx.enter_cs_r(rid);
        }
        let base = self.incarnation << 32;
        for (to, payload) in sends {
            let payload = Arc::new(payload);
            let link = self
                .links
                .entry(to)
                .or_insert_with(|| LinkState::fresh(base));
            link.sent += 1;
            let seq = link.sent;
            link.unacked.insert(
                seq,
                Pending {
                    payload: Arc::clone(&payload),
                    retries: 0,
                    next_retry_at: self.now + self.cfg.rto_initial,
                    rto: self.cfg.rto_initial,
                },
            );
            self.counters.data_sent += 1;
            fx.send(
                to,
                Packet::Data {
                    epoch: link.send_epoch,
                    seq,
                    ack_epoch: link.recv_epoch,
                    ack: link.recv_cum,
                    payload,
                },
            );
        }
        self.counters.max_unacked = self.counters.max_unacked.max(self.unacked_total());
    }

    /// Applies a cumulative ack from `from`, provided it refers to the
    /// current incarnation of the outgoing half-link (a straggler ack from
    /// before the peer's restart must not confirm new-incarnation packets).
    fn apply_ack(&mut self, from: SiteId, epoch: u64, ack: u64) {
        if let Some(link) = self.links.get_mut(&from) {
            if epoch == link.send_epoch {
                link.unacked.retain(|&seq, _| seq > ack);
            }
        }
    }
}

impl<P: Protocol> Protocol for Reliable<P> {
    type Msg = Packet<P::Msg>;

    fn site(&self) -> SiteId {
        self.inner.site()
    }

    fn set_now(&mut self, now: u64) {
        self.now = self.now.max(now);
    }

    fn on_start(&mut self, fx: &mut Effects<Self::Msg>) {
        let mut inner_fx = Effects::new();
        self.inner.on_start(&mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn request_cs(&mut self, fx: &mut Effects<Self::Msg>) {
        let mut inner_fx = Effects::new();
        self.inner.request_cs(&mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn release_cs(&mut self, fx: &mut Effects<Self::Msg>) {
        let mut inner_fx = Effects::new();
        self.inner.release_cs(&mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn handle(&mut self, from: SiteId, msg: Self::Msg, fx: &mut Effects<Self::Msg>) {
        match msg {
            Packet::Ack { epoch, ack } => {
                self.apply_ack(from, epoch, ack);
            }
            Packet::Data {
                epoch,
                seq,
                ack_epoch,
                ack,
                payload,
            } => {
                self.apply_ack(from, ack_epoch, ack);
                let base = self.incarnation << 32;
                let link = self
                    .links
                    .entry(from)
                    .or_insert_with(|| LinkState::fresh(base));
                if epoch < link.recv_epoch {
                    // Straggler from a previous incarnation of the peer's
                    // send half: its sequence numbers live in a dead
                    // numbering space — taking it would let it consume the
                    // new incarnation's slots. Drop silently (no re-ack:
                    // stale-epoch acks are ignored anyway).
                    self.counters.stale_epoch_dropped += 1;
                    return;
                }
                if epoch > link.recv_epoch {
                    // The peer's send half restarted (it saw us rejoin, or
                    // an old straggler was briefly adopted as the current
                    // incarnation). Discard any buffered old-epoch packets
                    // and restart the receive window for the new numbering.
                    link.recv_epoch = epoch;
                    link.recv_cum = 0;
                    link.reorder.clear();
                }
                if seq <= link.recv_cum {
                    // Duplicate (retransmission of something already taken):
                    // drop it and re-ack so the sender stops resending.
                    self.counters.duplicates_dropped += 1;
                } else if link.reorder.insert(seq, payload).is_some() {
                    // Duplicate of a packet already buffered ahead.
                    self.counters.duplicates_dropped += 1;
                } else if seq > link.recv_cum + 1 {
                    self.counters.reordered += 1;
                }

                // Deliver the longest in-order prefix to the inner protocol.
                let mut inner_fx = Effects::new();
                loop {
                    let link = self
                        .links
                        .get_mut(&from)
                        .expect("link exists: created above");
                    let next = link.recv_cum + 1;
                    let Some(payload) = link.reorder.remove(&next) else {
                        break;
                    };
                    link.recv_cum = next;
                    // Take the payload out of the Arc without copying when
                    // this is the last reference (e.g. after a real network
                    // hop); clone only if the sender's retransmit buffer
                    // still shares it (in-process drivers).
                    let payload =
                        Arc::try_unwrap(payload).unwrap_or_else(|shared| (*shared).clone());
                    self.inner.handle(from, payload, &mut inner_fx);
                }
                self.wrap_sends(&mut inner_fx, fx);

                // Ack `from`: piggybacked if a data packet is already headed
                // there this step, explicit otherwise (covers duplicates too,
                // whose original ack may have been lost).
                let piggybacked = fx
                    .sends()
                    .iter()
                    .any(|(to, p)| *to == from && matches!(p, Packet::Data { .. }));
                if !piggybacked {
                    let link = self
                        .links
                        .get_mut(&from)
                        .expect("link exists: created above");
                    let (epoch, ack) = (link.recv_epoch, link.recv_cum);
                    self.counters.acks_sent += 1;
                    fx.send(from, Packet::Ack { epoch, ack });
                }
            }
        }
    }

    fn next_timer(&self) -> Option<u64> {
        let retransmit = self
            .links
            .values()
            .flat_map(|l| l.unacked.values())
            .map(|p| p.next_retry_at)
            .min();
        // Merge the inner protocol's timers (e.g. a request deadline) so
        // wrapping in a transport never silences them.
        match (retransmit, self.inner.next_timer()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn on_timer(&mut self, now: u64, fx: &mut Effects<Self::Msg>) {
        self.now = self.now.max(now);
        let now = self.now;
        let (rto_max, max_retries) = (self.cfg.rto_max, self.cfg.max_retries);
        for (&to, link) in self.links.iter_mut() {
            let due: Vec<u64> = link
                .unacked
                .iter()
                .filter(|(_, p)| p.next_retry_at <= now)
                .map(|(&s, _)| s)
                .collect();
            for seq in due {
                let p = link.unacked.get_mut(&seq).expect("due seq present");
                if p.retries >= max_retries {
                    link.unacked.remove(&seq);
                    self.counters.gave_up += 1;
                    continue;
                }
                p.retries += 1;
                p.rto = (p.rto * 2).min(rto_max);
                p.next_retry_at = now + p.rto;
                self.counters.retransmissions += 1;
                fx.send(
                    to,
                    Packet::Data {
                        epoch: link.send_epoch,
                        seq,
                        ack_epoch: link.recv_epoch,
                        ack: link.recv_cum,
                        payload: p.payload.clone(),
                    },
                );
            }
        }
        // Forward the wake-up: the inner protocol may own timers of its own
        // (a request deadline aborts from in here).
        let mut inner_fx = Effects::new();
        self.inner.on_timer(now, &mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn in_cs(&self) -> bool {
        self.inner.in_cs()
    }

    fn wants_cs(&self) -> bool {
        self.inner.wants_cs()
    }

    fn abort_cs(&mut self, fx: &mut Effects<Self::Msg>) -> bool {
        let mut inner_fx = Effects::new();
        let aborted = self.inner.abort_cs(&mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
        aborted
    }

    fn abortable(&self) -> bool {
        self.inner.abortable()
    }

    fn set_deadline(&mut self, deadline: Option<u64>) {
        self.inner.set_deadline(deadline);
    }

    fn abort_counters(&self) -> Option<crate::protocol::AbortCounters> {
        self.inner.abort_counters()
    }

    fn request_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) {
        let mut inner_fx = Effects::new();
        self.inner.request_cs_r(rid, &mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn release_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) {
        let mut inner_fx = Effects::new();
        self.inner.release_cs_r(rid, &mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn abort_cs_r(&mut self, rid: ResourceId, fx: &mut Effects<Self::Msg>) -> bool {
        let mut inner_fx = Effects::new();
        let aborted = self.inner.abort_cs_r(rid, &mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
        aborted
    }

    fn in_cs_r(&self, rid: ResourceId) -> bool {
        self.inner.in_cs_r(rid)
    }

    fn wants_cs_r(&self, rid: ResourceId) -> bool {
        self.inner.wants_cs_r(rid)
    }

    fn set_deadline_r(&mut self, rid: ResourceId, deadline: Option<u64>) {
        self.inner.set_deadline_r(rid, deadline);
    }

    fn drain_aborted_resources(&mut self) -> Vec<ResourceId> {
        self.inner.drain_aborted_resources()
    }

    fn on_site_failure(&mut self, failed: SiteId, fx: &mut Effects<Self::Msg>) {
        // Stop retransmitting to the dead peer; keep the receive state in
        // case the "failure" was a partition that later heals (stale
        // retransmissions from the peer then still dedup correctly).
        if let Some(link) = self.links.get_mut(&failed) {
            self.counters.gave_up += link.unacked.len() as u64;
            link.unacked.clear();
        }
        let mut inner_fx = Effects::new();
        self.inner.on_site_failure(failed, &mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn on_site_suspected(&mut self, site: SiteId, fx: &mut Effects<Self::Msg>) {
        // Unlike a definitive failure notice, a suspicion may be false: do
        // NOT abandon unacked packets (that would leave a permanent hole in
        // the peer's sequence space, wedging the link after restoration).
        // Retransmission keeps trying, bounded by `max_retries`.
        let mut inner_fx = Effects::new();
        self.inner.on_site_suspected(site, &mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn on_site_restored(&mut self, site: SiteId, fx: &mut Effects<Self::Msg>) {
        // Both ends kept their link state (the peer never actually died):
        // pending retransmissions resume on their own. Transport-wise a
        // restoration is a no-op; only the inner protocol reintegrates.
        let mut inner_fx = Effects::new();
        self.inner.on_site_restored(site, &mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn on_peer_rejoined(&mut self, site: SiteId, incarnation: u64, fx: &mut Effects<Self::Msg>) {
        // The peer restarted with a fresh transport: its sequence numbers
        // begin again at 1 in both directions, under its new incarnation's
        // epoch base.
        let base = self.incarnation << 32;
        let link = self
            .links
            .entry(site)
            .or_insert_with(|| LinkState::fresh(base));
        let fresh_recv = incarnation << 32;
        // A duplicate announcement of an incarnation already integrated
        // must not reset the link again — that would re-deliver data and
        // orphan packets sent since. (The detector deduplicates too; this
        // guards bare stacks, where incarnation 0 keeps legacy
        // process-every-announcement semantics.)
        let duplicate = incarnation > 0 && incarnation <= link.peer_inc;
        let mut replay = Effects::new();
        if !duplicate {
            link.peer_inc = incarnation;
            // Send half: restart the window under a NEW epoch, *rebasing*
            // the unacked backlog into it — old-numbering copies still in
            // flight (a retransmission can fire between the peer's restart
            // and our sighting of its Rejoin) carry a stale epoch and are
            // dropped at the fresh peer, while the payloads themselves are
            // renumbered from 1 and retransmitted below, ahead of anything
            // the inner protocol sends in response to the announcement.
            let pending = std::mem::take(&mut link.unacked);
            link.send_epoch += 1;
            link.sent = 0;
            // Receive half: expect exactly the announced incarnation's
            // numbering, fencing off the crashed incarnation's stragglers.
            // Skip if that incarnation's data was already adopted (its
            // announcement arrived late): resetting would re-deliver it.
            if incarnation == 0 || fresh_recv > link.recv_epoch {
                link.recv_epoch = fresh_recv;
                link.recv_cum = 0;
                link.reorder.clear();
            }
            for (_, p) in pending {
                let payload = Arc::try_unwrap(p.payload).unwrap_or_else(|shared| (*shared).clone());
                replay.send(site, payload);
            }
        }
        self.wrap_sends(&mut replay, fx);
        let mut inner_fx = Effects::new();
        self.inner
            .on_peer_rejoined(site, incarnation, &mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn on_recover(&mut self, fx: &mut Effects<Self::Msg>) {
        let mut inner_fx = Effects::new();
        self.inner.on_recover(&mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn set_incarnation(&mut self, incarnation: u64) {
        // Called by the driver on a freshly constructed stack, before any
        // link exists; links created afterwards base their send epochs at
        // `incarnation << 32` (see the module docs).
        self.incarnation = incarnation;
        self.inner.set_incarnation(incarnation);
    }

    fn set_peer_universe(&mut self, peers: &[SiteId]) {
        self.inner.set_peer_universe(peers);
    }

    fn rejoin_pending(&self) -> bool {
        self.inner.rejoin_pending()
    }

    fn on_rejoin_complete(&mut self, fx: &mut Effects<Self::Msg>) {
        let mut inner_fx = Effects::new();
        self.inner.on_rejoin_complete(&mut inner_fx);
        self.wrap_sends(&mut inner_fx, fx);
    }

    fn transport_counters(&self) -> Option<TransportCounters> {
        Some(self.counters)
    }

    fn detector_counters(&self) -> Option<crate::detector::DetectorCounters> {
        self.inner.detector_counters()
    }
}

impl<P: Protocol + fmt::Debug> fmt::Debug for Reliable<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reliable")
            .field("inner", &self.inner)
            .field("now", &self.now)
            .field("unacked", &self.unacked_total())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Fault injection: loss models
// ---------------------------------------------------------------------------

/// A model of wire-message faults on the network links.
///
/// Decision logic only — drivers feed uniform samples from their own seeded
/// RNGs through [`LinkFaults::decide`], so the same model produces the same
/// fault distribution under the simulator and the threaded runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// Perfect links (the paper's §2 channel model).
    None,
    /// Independent per-message faults: each message is dropped with
    /// probability `drop` and (if not dropped) duplicated with
    /// probability `dup`.
    Iid {
        /// Drop probability in `[0, 1)`.
        drop: f64,
        /// Duplication probability in `[0, 1)`.
        dup: f64,
    },
    /// Bursty loss (Gilbert–Elliott): each link flips between a good and a
    /// bad state; drops are rare in the good state and common in the bad.
    Burst {
        /// Per-message probability a good link turns bad.
        p_bad: f64,
        /// Per-message probability a bad link recovers.
        p_good: f64,
        /// Drop probability while the link is good.
        drop_good: f64,
        /// Drop probability while the link is bad.
        drop_bad: f64,
        /// Duplication probability (state-independent).
        dup: f64,
    },
}

impl LossModel {
    /// Mean long-run drop probability of the model (outages excluded).
    pub fn mean_drop(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { drop, .. } => drop,
            LossModel::Burst {
                p_bad,
                p_good,
                drop_good,
                drop_bad,
                ..
            } => {
                // Stationary fraction of time in the bad state.
                let bad = if p_bad + p_good > 0.0 {
                    p_bad / (p_bad + p_good)
                } else {
                    0.0
                };
                drop_good * (1.0 - bad) + drop_bad * bad
            }
        }
    }
}

/// What the fault injector decided for one wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver normally.
    Deliver,
    /// Drop silently.
    Drop,
    /// Deliver two copies (the transport's dedup absorbs the second).
    Duplicate,
}

/// A transient one-directional link outage: messages from `from` to `to`
/// sent during `[start, end)` are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Sending side of the silenced half-link.
    pub from: SiteId,
    /// Receiving side of the silenced half-link.
    pub to: SiteId,
    /// First instant of the outage.
    pub start: u64,
    /// First instant after the outage.
    pub end: u64,
}

/// Per-link fault state for a [`LossModel`] plus scheduled [`Outage`]s.
#[derive(Debug, Clone, Default)]
pub struct LinkFaults {
    model: Option<LossModel>,
    outages: Vec<Outage>,
    /// Gilbert–Elliott state per directed link (`true` = bad).
    bad: BTreeMap<(SiteId, SiteId), bool>,
}

impl LinkFaults {
    /// Creates the injector for `model` with scheduled `outages`.
    pub fn new(model: LossModel, outages: Vec<Outage>) -> Self {
        LinkFaults {
            model: Some(model),
            outages,
            bad: BTreeMap::new(),
        }
    }

    /// Whether this injector can ever fault a message.
    pub fn is_active(&self) -> bool {
        !matches!(self.model, None | Some(LossModel::None)) || !self.outages.is_empty()
    }

    /// Decides the fate of one message from `from` to `to` sent at `now`.
    ///
    /// `uniform` must yield independent samples uniform in `[0, 1)`; it is
    /// called a model-dependent number of times (zero for [`LossModel::None`]
    /// outside outages).
    pub fn decide(
        &mut self,
        from: SiteId,
        to: SiteId,
        now: u64,
        mut uniform: impl FnMut() -> f64,
    ) -> FaultVerdict {
        if self
            .outages
            .iter()
            .any(|o| o.from == from && o.to == to && (o.start..o.end).contains(&now))
        {
            return FaultVerdict::Drop;
        }
        let (drop_p, dup_p) = match self.model {
            None | Some(LossModel::None) => return FaultVerdict::Deliver,
            Some(LossModel::Iid { drop, dup }) => (drop, dup),
            Some(LossModel::Burst {
                p_bad,
                p_good,
                drop_good,
                drop_bad,
                dup,
            }) => {
                let state = self.bad.entry((from, to)).or_insert(false);
                let flip_p = if *state { p_good } else { p_bad };
                if uniform() < flip_p {
                    *state = !*state;
                }
                (if *state { drop_bad } else { drop_good }, dup)
            }
        };
        if drop_p > 0.0 && uniform() < drop_p {
            FaultVerdict::Drop
        } else if dup_p > 0.0 && uniform() < dup_p {
            FaultVerdict::Duplicate
        } else {
            FaultVerdict::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay_optimal::{Config, DelayOptimal};

    type R = Reliable<DelayOptimal>;

    fn pair() -> (R, R) {
        let quorum = vec![SiteId(0), SiteId(1)];
        let cfg = TransportConfig::default();
        (
            Reliable::new(
                DelayOptimal::new(SiteId(0), quorum.clone(), Config::default()),
                cfg,
            ),
            Reliable::new(DelayOptimal::new(SiteId(1), quorum, Config::default()), cfg),
        )
    }

    /// Delivers every queued send (no faults), returning replies in `fx`.
    fn deliver_all(fx: &mut Effects<Packet<qmx_msg::Msg>>, sites: &mut [&mut R]) {
        let sends = fx.take_sends();
        for (to, pkt) in sends {
            let from = SiteId(1 - to.0); // two-site harness
            sites[to.index()].handle(from, pkt, fx);
        }
    }

    // Local alias so the helper signature stays readable.
    mod qmx_msg {
        pub use crate::delay_optimal::Msg;
    }

    #[test]
    fn lossless_round_trip_enters_cs() {
        let (mut s0, mut s1) = pair();
        let mut fx = Effects::new();
        s0.request_cs(&mut fx);
        // One Data packet to site 1 (plus s0's local grant work).
        let sends = fx.take_sends();
        assert_eq!(sends.len(), 1);
        let (to, pkt) = sends.into_iter().next().unwrap();
        assert_eq!(to, SiteId(1));
        assert!(matches!(pkt, Packet::Data { seq: 1, .. }));

        let mut fx1 = Effects::new();
        s1.handle(SiteId(0), pkt, &mut fx1);
        // Reply rides as Data (the ack to s0 piggybacks on it).
        let sends = fx1.take_sends();
        assert_eq!(sends.len(), 1);
        let (_, reply) = sends.into_iter().next().unwrap();
        assert!(matches!(reply, Packet::Data { seq: 1, ack: 1, .. }));

        let mut fx0 = Effects::new();
        s0.handle(SiteId(1), reply, &mut fx0);
        assert!(fx0.entered_cs());
        assert!(s0.in_cs());
        // s0 acked the reply explicitly (no data to piggyback on).
        let sends = fx0.take_sends();
        assert_eq!(sends.len(), 1);
        assert!(matches!(sends[0].1, Packet::Ack { ack: 1, .. }));
        // The request is now acked: no pending retransmission.
        assert_eq!(s0.next_timer(), None);
    }

    #[test]
    fn lost_request_is_retransmitted_and_recovered() {
        let (mut s0, mut s1) = pair();
        let mut fx = Effects::new();
        s0.request_cs(&mut fx);
        let _lost = fx.take_sends(); // the network eats the request
        let rto = TransportConfig::default().rto_initial;
        assert_eq!(s0.next_timer(), Some(rto));

        // Nothing due yet at rto-1.
        s0.on_timer(rto - 1, &mut fx);
        assert!(fx.take_sends().is_empty());

        // Due at rto: identical packet (same seq) goes out again.
        s0.on_timer(rto, &mut fx);
        let sends = fx.take_sends();
        assert_eq!(sends.len(), 1);
        assert!(matches!(sends[0].1, Packet::Data { seq: 1, .. }));
        assert_eq!(s0.counters().retransmissions, 1);

        // Backoff doubled the next deadline.
        assert_eq!(s0.next_timer(), Some(rto + 2 * rto));

        // This copy arrives; the reply completes the entry.
        let (_, pkt) = sends.into_iter().next().unwrap();
        let mut fx1 = Effects::new();
        s1.handle(SiteId(0), pkt, &mut fx1);
        let (_, reply) = fx1.take_sends().into_iter().next().unwrap();
        let mut fx0 = Effects::new();
        s0.handle(SiteId(1), reply, &mut fx0);
        assert!(s0.in_cs());
        assert_eq!(s0.next_timer(), None, "ack cleared the send buffer");
    }

    /// A one-way link cut from the transport's point of view: every copy
    /// of site 0's traffic is eaten, the detector above reports the peer
    /// *suspected* (not failed), and the cut later heals. The suspicion
    /// must not abandon the unacked packets — pending retransmissions are
    /// exactly what carries the in-flight messages across once the link is
    /// back — and after the heal the retransmitted backlog plus the
    /// restoration's own sends complete the CS entry end to end.
    #[test]
    fn heal_after_suspected_cut_delivers_via_retransmission() {
        let (mut s0, mut s1) = pair();
        let cfg = TransportConfig::default();
        let mut fx = Effects::new();
        s0.request_cs(&mut fx);
        let _eaten = fx.take_sends(); // the cut link eats the request

        // The detector suspects the silent peer mid-outage. At this layer
        // a false suspicion is indistinguishable from a slow link, so the
        // send buffer must survive; the inner protocol may react (here it
        // withdraws the request), and whatever it sends is eaten too.
        s0.on_site_suspected(SiteId(1), &mut fx);
        fx.take_sends();
        assert!(s0.next_timer().is_some(), "unacked packets still pending");

        // Retry deadlines pass while the link stays cut; every copy is
        // eaten as well, and backoff doubles the RTO each attempt.
        let mut now = 0;
        for _ in 0..3 {
            now += cfg.rto_max;
            s0.on_timer(now, &mut fx);
            assert!(!fx.take_sends().is_empty(), "retransmissions continue");
        }
        assert!(s0.counters().retransmissions >= 3);
        assert_eq!(s0.counters().gave_up, 0, "suspicion abandoned nothing");

        // The link heals: the detector revokes the suspicion, the fixed
        // two-site quorum becomes accessible again and the want that
        // parked during the outage is re-issued automatically; one more
        // retry deadline flushes the unacked backlog — this time
        // everything is delivered, both ways, until the network drains.
        let mut fx = Effects::new();
        s0.on_site_restored(SiteId(1), &mut fx);
        now += cfg.rto_max;
        s0.on_timer(now, &mut fx);
        // Drain the healed network one packet at a time with a fresh
        // effects buffer per delivery, like the simulator's Deliver events
        // (the shared-buffer shortcut of `deliver_all` would make the
        // piggyback-ack check see packets from *earlier* deliveries).
        let mut inflight: std::collections::VecDeque<(SiteId, Packet<qmx_msg::Msg>)> =
            fx.take_sends().into();
        while let Some((to, pkt)) = inflight.pop_front() {
            let mut fxd = Effects::new();
            let from = SiteId(1 - to.0);
            if to == SiteId(0) {
                s0.handle(from, pkt, &mut fxd);
            } else {
                s1.handle(from, pkt, &mut fxd);
            }
            inflight.extend(fxd.take_sends());
        }
        assert!(s0.in_cs(), "healed link completed the entry");
        assert_eq!(s0.next_timer(), None, "acks cleared the send buffer");
        assert_eq!(s1.next_timer(), None);
        assert_eq!(s0.counters().gave_up, 0);
    }

    #[test]
    fn duplicates_are_dropped_exactly_once_delivery() {
        let (mut s0, mut s1) = pair();
        let mut fx = Effects::new();
        s0.request_cs(&mut fx);
        let (_, pkt) = fx.take_sends().into_iter().next().unwrap();

        let mut fx1 = Effects::new();
        s1.handle(SiteId(0), pkt.clone(), &mut fx1);
        let first_reply = fx1.take_sends();
        assert_eq!(first_reply.len(), 1);

        // The duplicate is absorbed: no second reply from the inner
        // protocol, only a re-ack.
        let mut fx1b = Effects::new();
        s1.handle(SiteId(0), pkt, &mut fx1b);
        let dup_out = fx1b.take_sends();
        assert_eq!(dup_out.len(), 1);
        assert!(matches!(dup_out[0].1, Packet::Ack { ack: 1, .. }));
        assert_eq!(s1.counters().duplicates_dropped, 1);
    }

    #[test]
    fn reordering_is_repaired_before_delivery() {
        // Feed site 1 two packets in reverse order; the inner protocol must
        // see them in sequence order (we verify via recv bookkeeping and
        // that delivery of seq 2 waits for seq 1).
        let (mut s0, mut s1) = pair();
        let mut fx = Effects::new();
        s0.request_cs(&mut fx); // seq 1: request
        let (_, p1) = fx.take_sends().into_iter().next().unwrap();
        // Fabricate a second in-flight packet by releasing after a manual
        // grant path is impossible here; instead use a second request from
        // the inner by simulating exit. Simplest: clone the machinery —
        // send the same payload with seq 2 via the public API is not
        // possible, so drive the real flow: deliver p1 (reply comes back),
        // enter, release (seq 2: release).
        let mut fx1 = Effects::new();
        s1.handle(SiteId(0), p1.clone(), &mut fx1);
        let (_, reply) = fx1.take_sends().into_iter().next().unwrap();
        let mut fx0 = Effects::new();
        s0.handle(SiteId(1), reply, &mut fx0);
        fx0.take_sends();
        assert!(s0.in_cs());
        s0.release_cs(&mut fx0);
        let (_, p2) = fx0.take_sends().into_iter().next().unwrap();
        assert!(matches!(p2, Packet::Data { seq: 2, .. }));

        // Fresh receiver that never saw seq 1: deliver p2 first.
        let (_, mut s1b) = pair();
        let mut fxb = Effects::new();
        s1b.handle(SiteId(0), p2, &mut fxb);
        assert_eq!(s1b.counters().reordered, 1);
        // Still acking 0 — nothing deliverable yet, request not seen.
        let out = fxb.take_sends();
        assert!(matches!(out[0].1, Packet::Ack { ack: 0, .. }));

        // Now seq 1 arrives: both deliver in order (request then release).
        s1b.handle(SiteId(0), p1, &mut fxb);
        let out = fxb.take_sends();
        // The reply to the (now stale, since release followed) request may
        // or may not be emitted depending on inner logic; what matters is
        // the cumulative ack advanced over both.
        assert!(out
            .iter()
            .any(|(_, p)| matches!(p, Packet::Data { ack: 2, .. } | Packet::Ack { ack: 2, .. })));
    }

    #[test]
    fn stale_epoch_stragglers_cannot_wedge_a_fresh_link() {
        // Regression for the crash-recovery wedge: site 1 restarts fresh
        // while old-incarnation retransmissions from site 0 are still in
        // flight. Without epochs those stragglers consume the fresh
        // receive window's sequence slots, and the first REAL message the
        // survivor sends after resetting its link (reusing those numbers)
        // is dropped as a "duplicate" — silently swallowing a protocol
        // message and deadlocking the mutual-exclusion layer above.
        let (mut s0, mut s1) = pair();
        let mut fx = Effects::new();
        s0.request_cs(&mut fx);
        let (_, pkt) = fx.take_sends().into_iter().next().unwrap();
        let payload = match &pkt {
            Packet::Data { payload, .. } => payload.clone(),
            Packet::Ack { .. } => unreachable!("request rides as data"),
        };

        // Old-incarnation stragglers (epoch 0, seqs 3 and 4) reach the
        // freshly restarted site 1 first: buffered behind the 1..2 gap.
        let mut fx1 = Effects::new();
        for seq in [3, 4] {
            s1.handle(
                SiteId(0),
                Packet::Data {
                    epoch: 0,
                    seq,
                    ack_epoch: 0,
                    ack: 0,
                    payload: payload.clone(),
                },
                &mut fx1,
            );
        }
        assert_eq!(s1.counters().reordered, 2);
        fx1.take_sends();

        // Site 0 sees the rejoin: the send window restarts under a NEW
        // epoch, with the unacked request REBASED into it as seq 1 (not
        // dropped — in-flight data must survive a peer restart).
        let mut fx0 = Effects::new();
        s0.on_peer_rejoined(SiteId(1), 1, &mut fx0);
        let sends = fx0.take_sends();
        assert!(matches!(
            sends[0].1,
            Packet::Data {
                epoch: 1,
                seq: 1,
                ..
            }
        ));

        // The new-epoch packets must evict the buffered junk and reach the
        // inner protocol (site 1's arbiter answers the request).
        let mut fx1 = Effects::new();
        for (_, pkt) in sends {
            s1.handle(SiteId(0), pkt, &mut fx1);
        }
        let replied = fx1
            .take_sends()
            .iter()
            .any(|(_, p)| matches!(p, Packet::Data { .. }));
        assert!(replied, "new-epoch request was delivered and answered");

        // A late straggler from the dead epoch is now dropped outright.
        let mut fx1 = Effects::new();
        s1.handle(
            SiteId(0),
            Packet::Data {
                epoch: 0,
                seq: 5,
                ack_epoch: 0,
                ack: 0,
                payload,
            },
            &mut fx1,
        );
        assert_eq!(s1.counters().stale_epoch_dropped, 1);
        assert!(fx1.take_sends().is_empty(), "stale packets are not acked");
    }

    #[test]
    fn incarnation_fences_pre_crash_stragglers_at_the_survivor() {
        // Regression for the incarnation gap: site 1 crashes with a Data
        // packet still in flight and restarts. The survivor, told of the
        // rejoin, must not let the pre-crash straggler pass its epoch
        // check — before incarnation fencing, on_peer_rejoined reset
        // recv_epoch to 0, the exact epoch the straggler carries.
        let (mut s0, _) = pair();
        let mut fx = Effects::new();
        s0.request_cs(&mut fx);
        fx.take_sends();

        // Site 1's new life announces incarnation 1.
        let mut fx0 = Effects::new();
        s0.on_peer_rejoined(SiteId(1), 1, &mut fx0);
        fx0.take_sends();

        // Pre-crash straggler from site 1 (epoch 0, a high seq): dropped
        // as stale, not buffered into the fresh incarnation's window.
        let mut quorum_pkt = None;
        let mut fx1 = Effects::new();
        let mut s1_new = {
            let quorum = vec![SiteId(0), SiteId(1)];
            let mut s = Reliable::new(
                DelayOptimal::new(SiteId(1), quorum, Config::default()),
                TransportConfig::default(),
            );
            s.set_incarnation(1);
            s.request_cs(&mut fx1);
            for (to, pkt) in fx1.take_sends() {
                assert_eq!(to, SiteId(0));
                quorum_pkt = Some(pkt);
            }
            s
        };
        let straggler = quorum_pkt.clone().unwrap(); // payload shape only
        let payload = match straggler {
            Packet::Data { payload, .. } => payload,
            Packet::Ack { .. } => unreachable!(),
        };
        let mut fxs = Effects::new();
        s0.handle(
            SiteId(1),
            Packet::Data {
                epoch: 0,
                seq: 7,
                ack_epoch: 0,
                ack: 0,
                payload,
            },
            &mut fxs,
        );
        assert_eq!(s0.counters().stale_epoch_dropped, 1);
        assert_eq!(s0.counters().reordered, 0, "straggler must not buffer");

        // The fresh incarnation's real packet (epoch 1 << 32, seq 1) is
        // accepted and answered.
        let mut fxs = Effects::new();
        s0.handle(SiteId(1), quorum_pkt.unwrap(), &mut fxs);
        let answered = fxs
            .take_sends()
            .iter()
            .any(|(to, p)| *to == SiteId(1) && matches!(p, Packet::Data { .. }));
        assert!(answered, "fresh-incarnation request delivered and answered");
        let _ = &mut s1_new;
    }

    #[test]
    fn retry_cap_quiesces_against_a_dead_peer() {
        let cfg = TransportConfig {
            rto_initial: 10,
            rto_max: 40,
            max_retries: 3,
        };
        let quorum = vec![SiteId(0), SiteId(1)];
        let mut s0 = Reliable::new(DelayOptimal::new(SiteId(0), quorum, Config::default()), cfg);
        let mut fx = Effects::new();
        s0.request_cs(&mut fx);
        fx.take_sends();
        let mut t = 0;
        let mut sent = 0;
        while let Some(due) = s0.next_timer() {
            assert!(t < 10_000, "must quiesce");
            t = due;
            s0.on_timer(t, &mut fx);
            sent += fx.take_sends().len();
        }
        assert_eq!(sent, 3, "exactly max_retries retransmissions");
        assert_eq!(s0.counters().gave_up, 1);
        assert_eq!(s0.next_timer(), None);
    }

    #[test]
    fn failure_notice_cancels_retransmissions() {
        let (mut s0, _s1) = pair();
        let mut fx = Effects::new();
        s0.request_cs(&mut fx);
        fx.take_sends();
        assert!(s0.next_timer().is_some());
        let mut fx2 = Effects::new();
        s0.on_site_failure(SiteId(1), &mut fx2);
        assert_eq!(s0.next_timer(), None, "no retries to a known-dead peer");
        assert_eq!(s0.counters().gave_up, 1);
    }

    #[test]
    fn iid_loss_model_drops_and_duplicates() {
        let mut lf = LinkFaults::new(
            LossModel::Iid {
                drop: 0.3,
                dup: 0.2,
            },
            Vec::new(),
        );
        assert!(lf.is_active());
        // Deterministic "uniform" streams exercise each verdict.
        let v = lf.decide(SiteId(0), SiteId(1), 0, || 0.1); // 0.1 < 0.3 -> drop
        assert_eq!(v, FaultVerdict::Drop);
        let mut vals = [0.9, 0.1].into_iter(); // survive drop, then dup
        let v = lf.decide(SiteId(0), SiteId(1), 0, || vals.next().unwrap());
        assert_eq!(v, FaultVerdict::Duplicate);
        let mut vals = [0.9, 0.9].into_iter();
        let v = lf.decide(SiteId(0), SiteId(1), 0, || vals.next().unwrap());
        assert_eq!(v, FaultVerdict::Deliver);
    }

    #[test]
    fn outage_window_drops_only_inside_window() {
        let mut lf = LinkFaults::new(
            LossModel::None,
            vec![Outage {
                from: SiteId(0),
                to: SiteId(1),
                start: 100,
                end: 200,
            }],
        );
        assert!(lf.is_active());
        let u = || unreachable!("LossModel::None needs no samples");
        assert_eq!(
            lf.decide(SiteId(0), SiteId(1), 99, u),
            FaultVerdict::Deliver
        );
        assert_eq!(lf.decide(SiteId(0), SiteId(1), 100, u), FaultVerdict::Drop);
        assert_eq!(lf.decide(SiteId(0), SiteId(1), 199, u), FaultVerdict::Drop);
        assert_eq!(
            lf.decide(SiteId(0), SiteId(1), 200, u),
            FaultVerdict::Deliver
        );
        // Other direction unaffected.
        assert_eq!(
            lf.decide(SiteId(1), SiteId(0), 150, u),
            FaultVerdict::Deliver
        );
    }

    #[test]
    fn burst_model_is_stickier_than_iid() {
        // In the bad state with drop_bad = 1.0, everything drops until the
        // state flips back.
        let mut lf = LinkFaults::new(
            LossModel::Burst {
                p_bad: 1.0, // first message flips to bad
                p_good: 0.0,
                drop_good: 0.0,
                drop_bad: 1.0,
                dup: 0.0,
            },
            Vec::new(),
        );
        let v = lf.decide(SiteId(0), SiteId(1), 0, || 0.5);
        assert_eq!(v, FaultVerdict::Drop);
        // Stuck bad (p_good = 0): still dropping.
        let v = lf.decide(SiteId(0), SiteId(1), 1, || 0.5);
        assert_eq!(v, FaultVerdict::Drop);
    }

    #[test]
    fn mean_drop_matches_stationary_distribution() {
        assert_eq!(LossModel::None.mean_drop(), 0.0);
        assert_eq!(
            LossModel::Iid {
                drop: 0.1,
                dup: 0.0
            }
            .mean_drop(),
            0.1
        );
        let ge = LossModel::Burst {
            p_bad: 0.1,
            p_good: 0.3,
            drop_good: 0.0,
            drop_bad: 0.8,
            dup: 0.0,
        };
        // Bad fraction = 0.1 / 0.4 = 0.25; mean drop = 0.2.
        assert!((ge.mean_drop() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn counters_merge() {
        let mut a = TransportCounters {
            data_sent: 1,
            retransmissions: 2,
            acks_sent: 3,
            duplicates_dropped: 4,
            reordered: 5,
            gave_up: 6,
            stale_epoch_dropped: 8,
            max_unacked: 7,
        };
        let b = TransportCounters {
            max_unacked: 9,
            ..TransportCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.data_sent, 1);
        assert_eq!(a.max_unacked, 9);
    }

    #[test]
    fn deliver_all_smoke() {
        // The helper-based two-site loop reaches the CS with zero faults.
        let (mut s0, mut s1) = pair();
        let mut fx = Effects::new();
        s0.request_cs(&mut fx);
        for _ in 0..10 {
            if s0.in_cs() {
                break;
            }
            let mut both = [&mut s0, &mut s1];
            deliver_all(&mut fx, &mut both);
        }
        assert!(s0.in_cs());
    }
}
