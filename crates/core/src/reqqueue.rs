//! The arbiter's priority queue of pending CS requests (`req_queue`).
//!
//! Each arbiter queues the requests it cannot grant immediately. The queue is
//! ordered by request priority (the [`Timestamp`] order: smaller is higher
//! priority); the head is the next request in line for this arbiter's
//! permission. Fault handling (§6) additionally needs removal of arbitrary
//! entries (a failed site's request), so the queue is backed by an ordered
//! set rather than a binary heap.

use crate::clock::Timestamp;
use crate::protocol::SiteId;
use std::collections::BTreeSet;

/// Priority queue of request timestamps with arbitrary removal.
///
/// ```
/// use qmx_core::{ReqQueue, SiteId, Timestamp};
/// let mut q = ReqQueue::new();
/// q.insert(Timestamp::new(5, SiteId(1)));
/// q.insert(Timestamp::new(3, SiteId(2)));
/// assert_eq!(q.head(), Some(Timestamp::new(3, SiteId(2))));
/// assert_eq!(q.pop(), Some(Timestamp::new(3, SiteId(2))));
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReqQueue {
    set: BTreeSet<Timestamp>,
}

impl ReqQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a request. Returns `false` if it was already queued.
    pub fn insert(&mut self, ts: Timestamp) -> bool {
        self.set.insert(ts)
    }

    /// The highest-priority pending request, if any.
    pub fn head(&self) -> Option<Timestamp> {
        self.set.first().copied()
    }

    /// Removes and returns the highest-priority pending request.
    pub fn pop(&mut self) -> Option<Timestamp> {
        self.set.pop_first()
    }

    /// Removes a specific request. Returns `true` if it was present.
    pub fn remove(&mut self, ts: &Timestamp) -> bool {
        self.set.remove(ts)
    }

    /// Removes every request issued by `site` (fault handling), returning
    /// the removed timestamps in priority order.
    pub fn remove_site(&mut self, site: SiteId) -> Vec<Timestamp> {
        let victims: Vec<Timestamp> = self
            .set
            .iter()
            .filter(|t| t.site == site)
            .copied()
            .collect();
        for v in &victims {
            self.set.remove(v);
        }
        victims
    }

    /// Whether the queue contains a request from `site`.
    pub fn contains_site(&self, site: SiteId) -> bool {
        self.set.iter().any(|t| t.site == site)
    }

    /// Whether this exact request is queued.
    pub fn contains(&self, ts: &Timestamp) -> bool {
        self.set.contains(ts)
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates queued requests in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &Timestamp> {
        self.set.iter()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.set.clear();
    }
}

impl Extend<Timestamp> for ReqQueue {
    fn extend<I: IntoIterator<Item = Timestamp>>(&mut self, iter: I) {
        self.set.extend(iter);
    }
}

impl FromIterator<Timestamp> for ReqQueue {
    fn from_iter<I: IntoIterator<Item = Timestamp>>(iter: I) -> Self {
        ReqQueue {
            set: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(seq: u64, site: u32) -> Timestamp {
        Timestamp::new(seq, SiteId(site))
    }

    #[test]
    fn head_is_highest_priority() {
        let mut q = ReqQueue::new();
        q.insert(ts(9, 0));
        q.insert(ts(2, 5));
        q.insert(ts(2, 3));
        assert_eq!(q.head(), Some(ts(2, 3)));
    }

    #[test]
    fn pop_drains_in_priority_order() {
        let mut q: ReqQueue = [ts(4, 1), ts(1, 9), ts(4, 0)].into_iter().collect();
        assert_eq!(q.pop(), Some(ts(1, 9)));
        assert_eq!(q.pop(), Some(ts(4, 0)));
        assert_eq!(q.pop(), Some(ts(4, 1)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut q = ReqQueue::new();
        assert!(q.insert(ts(1, 1)));
        assert!(!q.insert(ts(1, 1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_specific_and_by_site() {
        let mut q: ReqQueue = [ts(1, 1), ts(2, 2), ts(3, 1)].into_iter().collect();
        assert!(q.remove(&ts(2, 2)));
        assert!(!q.remove(&ts(2, 2)));
        assert!(q.contains_site(SiteId(1)));
        let removed = q.remove_site(SiteId(1));
        assert_eq!(removed, vec![ts(1, 1), ts(3, 1)]);
        assert!(q.is_empty());
        assert!(!q.contains_site(SiteId(1)));
    }

    #[test]
    fn iter_and_clear() {
        let mut q: ReqQueue = [ts(2, 0), ts(1, 0)].into_iter().collect();
        let order: Vec<u64> = q.iter().map(|t| t.seq.0).collect();
        assert_eq!(order, vec![1, 2]);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn extend_merges() {
        let mut q = ReqQueue::new();
        q.extend([ts(5, 1), ts(4, 2)]);
        assert_eq!(q.len(), 2);
        assert!(q.contains(&ts(4, 2)));
    }
}
