//! Conformance tests for the paper's §5.2 heavy-load case analysis.
//!
//! §5.2 enumerates what happens when a request `(sn, i)` reaches an
//! arbiter `S_j` that has already granted its permission, and counts the
//! messages each case adds. These tests construct each case at a single
//! arbiter and assert the exact message pattern the analysis relies on:
//!
//! * **Case 1** `(req_queue = ∅) ∧ ((sn,i) > lock)`: transfer to the
//!   holder + fail to the requester (the fail appears in the paper's
//!   5(K−1) count for this case).
//! * **Case 2** `(req_queue = ∅) ∧ ((sn,i) < lock)`: inquire piggybacked
//!   with transfer to the holder (one wire message).
//! * **Case 3** `(req_queue ≠ ∅) ∧ ((sn,i) > head)`: fail to the
//!   requester only.
//! * **Case 4** `(req_queue ≠ ∅) ∧ ((sn,i) < head < lock)`: fail to the
//!   displaced head + transfer to the holder; **no second inquire** (one
//!   is already outstanding because head < lock).
//! * **Case 5** `(req_queue ≠ ∅) ∧ (lock < (sn,i) < head)`: the new head
//!   is behind the lock: transfer to the holder + fail to the requester +
//!   fail to the displaced head if it had priority over the lock.
//!
//! Then the two yield sub-cases (§5.2 Cases 2.1/2.2): the inquired holder
//! either keeps the permission (release answers later) or yields and the
//! arbiter re-grants with a piggybacked transfer.

use qmx_core::delay_optimal::Body;
use qmx_core::{
    Config, DelayOptimal, Effects, Msg, MsgKind, MsgMeta, Protocol, SeqNum, SiteId, Timestamp,
};

fn ts(seq: u64, site: u32) -> Timestamp {
    Timestamp::new(seq, SiteId(site))
}

/// Fresh dedicated arbiter S9 with the given lock holder and queued
/// requests (delivered in the given order).
fn arbiter_with(lock: Timestamp, queued: &[Timestamp]) -> DelayOptimal {
    let mut a = DelayOptimal::new(SiteId(9), vec![SiteId(9)], Config::default());
    let mut fx = Effects::new();
    for &r in std::iter::once(&lock).chain(queued) {
        a.handle(
            r.site,
            Msg {
                clk: r.seq,
                body: Body::Request { ts: r },
            },
            &mut fx,
        );
    }
    assert_eq!(a.lock_holder(), Some(lock));
    a
}

/// Delivers one request and returns `(to, kind)` pairs of what the
/// arbiter sent in response.
fn probe(a: &mut DelayOptimal, r: Timestamp) -> Vec<(SiteId, MsgKind)> {
    let mut fx = Effects::new();
    a.handle(
        r.site,
        Msg {
            clk: r.seq,
            body: Body::Request { ts: r },
        },
        &mut fx,
    );
    fx.take_sends()
        .into_iter()
        .map(|(to, m)| (to, m.kind()))
        .collect()
}

#[test]
fn case_1_empty_queue_lower_priority_request() {
    // lock = (1, S1); request (5, S2) > lock; queue empty.
    let mut a = arbiter_with(ts(1, 1), &[]);
    let sends = probe(&mut a, ts(5, 2));
    // Transfer to the holder S1 + fail to the requester S2.
    assert_eq!(sends.len(), 2);
    assert!(sends.contains(&(SiteId(1), MsgKind::Transfer)));
    assert!(sends.contains(&(SiteId(2), MsgKind::Fail)));
}

#[test]
fn case_2_empty_queue_higher_priority_request() {
    // lock = (5, S1); request (1, S2) < lock; queue empty.
    let mut a = arbiter_with(ts(5, 1), &[]);
    let sends = probe(&mut a, ts(1, 2));
    // ONE wire message: inquire piggybacked with the transfer, to S1.
    assert_eq!(sends, vec![(SiteId(1), MsgKind::Inquire)]);
}

#[test]
fn case_3_not_the_head() {
    // lock = (1, S1); head = (3, S2); request (5, S3) > head.
    let mut a = arbiter_with(ts(1, 1), &[ts(3, 2)]);
    let sends = probe(&mut a, ts(5, 3));
    // Only a fail to the requester.
    assert_eq!(sends, vec![(SiteId(3), MsgKind::Fail)]);
}

#[test]
fn case_4_new_head_above_old_head_above_lock_inverted() {
    // lock = (9, S1); head = (5, S2) (so an inquire is already out);
    // request (3, S3) < head < lock.
    let mut a = arbiter_with(ts(9, 1), &[ts(5, 2)]);
    let sends = probe(&mut a, ts(3, 3));
    // Transfer to holder + fail to the displaced head; NO second inquire.
    assert_eq!(sends.len(), 2);
    assert!(sends.contains(&(SiteId(1), MsgKind::Transfer)));
    assert!(
        sends.contains(&(SiteId(2), MsgKind::Fail)),
        "displaced head S2 must fail (it never failed before)"
    );
    assert!(!sends.iter().any(|(_, k)| *k == MsgKind::Inquire));
}

#[test]
fn case_5_new_head_between_lock_and_old_head() {
    // lock = (1, S1); old head = (7, S2); request (4, S3):
    // lock < (4,S3) < head.
    let mut a = arbiter_with(ts(1, 1), &[ts(7, 2)]);
    let sends = probe(&mut a, ts(4, 3));
    // Transfer to holder + fail to the requester (it is behind the lock).
    // The displaced head already failed on arrival (7 > 1), so no second
    // fail for it.
    assert_eq!(sends.len(), 2);
    assert!(sends.contains(&(SiteId(1), MsgKind::Transfer)));
    assert!(sends.contains(&(SiteId(3), MsgKind::Fail)));
}

#[test]
fn yield_subcase_regrant_piggybacks_transfer() {
    // §5.2 Case 2.2: the inquired holder yields; the arbiter re-grants to
    // the preemptor and piggybacks the transfer for the re-queued yielder
    // — "(K-1) reply piggybacked with transfer" in the paper's count.
    let lock = ts(5, 1);
    let mut a = arbiter_with(lock, &[]);
    let pre = ts(1, 2);
    let sends = probe(&mut a, pre);
    assert_eq!(sends, vec![(SiteId(1), MsgKind::Inquire)]);
    // The holder yields.
    let mut fx = Effects::new();
    a.handle(
        SiteId(1),
        Msg {
            clk: SeqNum(9),
            body: Body::Yield { req: lock },
        },
        &mut fx,
    );
    let sends = fx.take_sends();
    assert_eq!(a.lock_holder(), Some(pre));
    // ONE wire message: reply to S2 with the transfer for (5,S1) inside.
    assert_eq!(sends.len(), 1);
    assert_eq!(sends[0].0, SiteId(2));
    match &sends[0].1.body {
        Body::Reply { req, transfer, .. } => {
            assert_eq!(*req, pre);
            assert_eq!(*transfer, Some(lock), "re-queued yielder rides along");
        }
        other => panic!("expected piggybacked reply, got {other:?}"),
    }
}

#[test]
fn release_path_regrant_piggybacks_transfer_for_next() {
    // §3.2 / C.2: release with no forwarding, non-empty queue: the arbiter
    // replies to the head and piggybacks a transfer naming the new head.
    let lock = ts(1, 1);
    let mut a = arbiter_with(lock, &[ts(3, 2), ts(5, 3)]);
    let mut fx = Effects::new();
    a.handle(
        SiteId(1),
        Msg {
            clk: SeqNum(9),
            body: Body::Release {
                holder_req: lock,
                forwarded_to: None,
            },
        },
        &mut fx,
    );
    let sends = fx.take_sends();
    assert_eq!(a.lock_holder(), Some(ts(3, 2)));
    assert_eq!(sends.len(), 1);
    assert_eq!(sends[0].0, SiteId(2));
    match &sends[0].1.body {
        Body::Reply { transfer, .. } => {
            assert_eq!(*transfer, Some(ts(5, 3)), "next-in-line rides along");
        }
        other => panic!("expected piggybacked reply, got {other:?}"),
    }
}

#[test]
fn forwarded_release_points_new_holder_at_next_head() {
    // Release that DID forward: the arbiter records the new holder and
    // sends it a transfer naming the next queued request — the message
    // §5.2's "(K-1) transfer" accounts for in Cases 1/3/5.
    let lock = ts(1, 1);
    let next = ts(3, 2);
    let later = ts(5, 3);
    let mut a = arbiter_with(lock, &[next, later]);
    let mut fx = Effects::new();
    a.handle(
        SiteId(1),
        Msg {
            clk: SeqNum(9),
            body: Body::Release {
                holder_req: lock,
                forwarded_to: Some(next),
            },
        },
        &mut fx,
    );
    let sends = fx.take_sends();
    assert_eq!(a.lock_holder(), Some(next));
    assert_eq!(sends.len(), 1);
    assert_eq!(sends[0].0, SiteId(2), "the NEW holder gets the transfer");
    match &sends[0].1.body {
        Body::Transfer {
            beneficiary,
            holder_req,
            ..
        } => {
            assert_eq!(*beneficiary, later);
            assert_eq!(*holder_req, next);
        }
        other => panic!("expected transfer, got {other:?}"),
    }
}

#[test]
fn forwarded_release_to_now_displaced_holder_adds_inquire() {
    // The race the proof's Case 2.2 walks through: the forward targeted
    // the old head, but a higher-priority request arrived while the
    // forwarded reply was in flight. The arbiter must send the new holder
    // an inquire (piggybacked with the transfer) so the better request can
    // preempt.
    let lock = ts(5, 1);
    let fwd_target = ts(6, 2);
    let mut a = arbiter_with(lock, &[fwd_target]);
    // Higher-priority request slips in: becomes head, inquire goes to the
    // CURRENT holder (5, S1)...
    let pre = ts(2, 3);
    probe(&mut a, pre);
    // ...but S1 already exited and forwarded to (6, S2):
    let mut fx = Effects::new();
    a.handle(
        SiteId(1),
        Msg {
            clk: SeqNum(9),
            body: Body::Release {
                holder_req: lock,
                forwarded_to: Some(fwd_target),
            },
        },
        &mut fx,
    );
    let sends = fx.take_sends();
    assert_eq!(a.lock_holder(), Some(fwd_target));
    assert_eq!(sends.len(), 1);
    assert_eq!(sends[0].0, SiteId(2));
    match &sends[0].1.body {
        Body::Inquire {
            holder_req,
            transfer,
            ..
        } => {
            assert_eq!(*holder_req, fwd_target);
            assert_eq!(*transfer, Some(pre));
        }
        other => panic!("expected inquire+transfer to the new holder, got {other:?}"),
    }
}
