//! Message-level tests of the delay-optimal protocol's subtle paths:
//! proxy-forwarding races, deferred inquires, early returns, and the §6
//! cleanup — each driven wire message by wire message so the exact
//! behaviour is pinned down.

use qmx_core::delay_optimal::Body;
use qmx_core::{Config, DelayOptimal, Effects, Msg, Protocol, SeqNum, SiteId, Timestamp};

fn ts(seq: u64, site: u32) -> Timestamp {
    Timestamp::new(seq, SiteId(site))
}

fn msg(body: Body) -> Msg {
    Msg {
        clk: SeqNum(50),
        body,
    }
}

/// A dedicated arbiter (site 9) that never requests; requesters talk to it
/// remotely, so every arbiter-side send is visible on the wire.
fn arbiter() -> DelayOptimal {
    DelayOptimal::new(SiteId(9), vec![SiteId(9)], Config::default())
}

/// A requester whose quorum is only the remote arbiter S9 (no
/// self-arbitration noise).
fn requester(site: u32) -> DelayOptimal {
    DelayOptimal::new(SiteId(site), vec![SiteId(9)], Config::default())
}

fn deliver(p: &mut DelayOptimal, from: u32, body: Body) -> Vec<(SiteId, Msg)> {
    let mut fx = Effects::new();
    p.handle(SiteId(from), msg(body), &mut fx);
    fx.take_sends()
}

#[test]
fn forwarded_reply_lets_requester_enter_without_arbiter() {
    // S1's quorum is just S9. S9's permission was forwarded by a proxy S2:
    // S1 must enter on the forwarded reply alone.
    let mut r = requester(1);
    let mut fx = Effects::new();
    r.request_cs(&mut fx);
    let my = r.current_request().unwrap();
    fx.take_sends();
    let mut fx = Effects::new();
    r.handle(
        SiteId(2), // the proxy, NOT the arbiter
        msg(Body::Reply {
            arbiter: SiteId(9),
            req: my,
            transfer: None,
        }),
        &mut fx,
    );
    assert!(fx.entered_cs());
    assert!(r.in_cs());
}

#[test]
fn release_reports_forwarding_per_arbiter() {
    // Holder with two remote arbiters; transfers arrive from both; on exit
    // exactly one forwarded reply per arbiter goes to the beneficiary and
    // each release names it.
    let mut h = DelayOptimal::new(SiteId(0), vec![SiteId(8), SiteId(9)], Config::default());
    let mut fx = Effects::new();
    h.request_cs(&mut fx);
    let my = h.current_request().unwrap();
    fx.take_sends();
    for a in [8u32, 9] {
        let sends = deliver(
            &mut h,
            a,
            Body::Reply {
                arbiter: SiteId(a),
                req: my,
                transfer: None,
            },
        );
        let _ = sends;
    }
    assert!(h.in_cs());
    // Both arbiters ask us to forward to (60, S3); S9 later supersedes
    // with (55, S4) — newest transfer per arbiter wins.
    for (a, b) in [(8u32, ts(60, 3)), (9, ts(60, 3)), (9, ts(55, 4))] {
        deliver(
            &mut h,
            a,
            Body::Transfer {
                arbiter: SiteId(a),
                beneficiary: b,
                holder_req: my,
            },
        );
    }
    let mut fx = Effects::new();
    h.release_cs(&mut fx);
    let sends = fx.take_sends();
    // Forwarded replies: S8's permission to S3, S9's to S4.
    let fwd: Vec<_> = sends
        .iter()
        .filter_map(|(to, m)| match m.body {
            Body::Reply { arbiter, req, .. } => Some((*to, arbiter, req)),
            _ => None,
        })
        .collect();
    assert_eq!(fwd.len(), 2);
    assert!(fwd.contains(&(SiteId(3), SiteId(8), ts(60, 3))));
    assert!(fwd.contains(&(SiteId(4), SiteId(9), ts(55, 4))));
    // Releases carry the matching forwarded_to.
    let rel: Vec<_> = sends
        .iter()
        .filter_map(|(to, m)| match m.body {
            Body::Release { forwarded_to, .. } => Some((*to, forwarded_to)),
            _ => None,
        })
        .collect();
    assert!(rel.contains(&(SiteId(8), Some(ts(60, 3)))));
    assert!(rel.contains(&(SiteId(9), Some(ts(55, 4)))));
}

#[test]
fn deferred_inquire_with_transfer_is_replayed_on_reply() {
    // An inquire (with piggybacked transfer) outruns the forwarded reply:
    // it must be deferred, and when the reply arrives both the transfer
    // AND the inquire must take effect — here the requester has failed, so
    // it yields and the transfer must be purged with the yield.
    let mut r = requester(1);
    let mut fx = Effects::new();
    r.request_cs(&mut fx);
    let my = r.current_request().unwrap();
    fx.take_sends();

    // Fail from elsewhere — wait, quorum is only S9, so the fail must be
    // from S9 itself about an older state: use a second arbiter instead.
    let mut r = DelayOptimal::new(SiteId(1), vec![SiteId(8), SiteId(9)], Config::default());
    let mut fx = Effects::new();
    r.request_cs(&mut fx);
    let my = {
        let _ = my;
        r.current_request().unwrap()
    };
    fx.take_sends();

    // Inquire from S9 arrives BEFORE S9's reply: deferred.
    let sends = deliver(
        &mut r,
        9,
        Body::Inquire {
            arbiter: SiteId(9),
            holder_req: my,
            transfer: Some(ts(70, 5)),
        },
    );
    assert!(sends.is_empty(), "inquire must be deferred, not answered");

    // Fail from S8: `failed` set.
    deliver(
        &mut r,
        8,
        Body::Fail {
            arbiter: SiteId(8),
            req: my,
        },
    );

    // Now S9's reply arrives (forwarded by proxy S3): the deferred inquire
    // replays, and with `failed` set the requester yields S9 immediately.
    let sends = deliver(
        &mut r,
        3,
        Body::Reply {
            arbiter: SiteId(9),
            req: my,
            transfer: None,
        },
    );
    assert_eq!(sends.len(), 1);
    assert_eq!(sends[0].0, SiteId(9));
    assert!(matches!(sends[0].1.body, Body::Yield { req } if req == my));
    assert!(r.wants_cs(), "still waiting after the yield");
}

#[test]
fn yield_purges_only_that_arbiters_transfers() {
    let mut r = DelayOptimal::new(SiteId(1), vec![SiteId(8), SiteId(9)], Config::default());
    let mut fx = Effects::new();
    r.request_cs(&mut fx);
    let my = r.current_request().unwrap();
    fx.take_sends();
    for a in [8u32, 9] {
        deliver(
            &mut r,
            a,
            Body::Reply {
                arbiter: SiteId(a),
                req: my,
                transfer: Some(ts(61, a as u64 as u32 + 2)),
            },
        );
    }
    assert!(r.in_cs());
    // In the CS, a late inquire from S8 is answered by the release; but if
    // we never yielded, BOTH transfers must be honored at exit.
    let mut fx = Effects::new();
    r.release_cs(&mut fx);
    let fwd_count = fx
        .take_sends()
        .iter()
        .filter(|(_, m)| matches!(m.body, Body::Reply { .. }))
        .count();
    assert_eq!(fwd_count, 2);
}

#[test]
fn early_release_chain_is_replayed_in_order() {
    // Arbiter granted r1. r1 forwards to r2; r2 forwards to r3; both r2's
    // and r3's releases beat r1's. When r1's release finally arrives the
    // arbiter must chase the chain r1→r2→r3 and land on r3's forward
    // target (none) → grant its own queue.
    let mut a = arbiter();
    let r1 = ts(1, 1);
    let r2 = ts(2, 2);
    let r3 = ts(3, 3);
    let r4 = ts(4, 4);
    // r1 arrives first and is granted; r2, r3, r4 queue up.
    deliver(&mut a, 1, Body::Request { ts: r1 });
    for r in [r2, r3, r4] {
        deliver(&mut a, r.site.0, Body::Request { ts: r });
    }
    assert_eq!(a.lock_holder(), Some(r1));
    // r2's release (it was forwarded S9's permission by r1, took the CS,
    // forwarded on to r3) arrives EARLY:
    deliver(
        &mut a,
        2,
        Body::Release {
            holder_req: r2,
            forwarded_to: Some(r3),
        },
    );
    assert_eq!(a.lock_holder(), Some(r1), "early return parked");
    // r3's release (forwarded nothing) also early:
    deliver(
        &mut a,
        3,
        Body::Release {
            holder_req: r3,
            forwarded_to: None,
        },
    );
    assert_eq!(a.lock_holder(), Some(r1));
    // Now r1's release lands, naming r2 as its forward target: the chain
    // r2 → r3 → (returned) collapses and r4 gets a direct grant.
    let sends = deliver(
        &mut a,
        1,
        Body::Release {
            holder_req: r1,
            forwarded_to: Some(r2),
        },
    );
    assert_eq!(a.lock_holder(), Some(r4));
    assert!(sends
        .iter()
        .any(|(to, m)| *to == SiteId(4) && matches!(m.body, Body::Reply { req, .. } if req == r4)));
}

#[test]
fn early_yield_is_replayed_and_requeued() {
    // r2 receives a forwarded grant and yields it before the arbiter even
    // learns about the forward. When the forward notification arrives, the
    // arbiter must requeue r2 and grant the best waiter.
    let mut a = arbiter();
    let r1 = ts(5, 1);
    let r2 = ts(6, 2);
    let r0 = ts(4, 0); // the high-priority request r2 yields to
    deliver(&mut a, 1, Body::Request { ts: r1 });
    deliver(&mut a, 2, Body::Request { ts: r2 });
    // r0 arrives: highest priority, queue head; inquire goes to r1.
    deliver(&mut a, 0, Body::Request { ts: r0 });
    // r2's yield arrives before r1's release (r1 forwarded to r2 — which
    // the arbiter does not know yet):
    deliver(&mut a, 2, Body::Yield { req: r2 });
    assert_eq!(a.lock_holder(), Some(r1), "early yield parked");
    // r1's release: forward chain r2 → (yielded) → grant r0 (the minimum).
    let sends = deliver(
        &mut a,
        1,
        Body::Release {
            holder_req: r1,
            forwarded_to: Some(r2),
        },
    );
    assert_eq!(a.lock_holder(), Some(r0));
    assert!(sends
        .iter()
        .any(|(to, m)| *to == SiteId(0) && matches!(m.body, Body::Reply { .. })));
    // r2 stays queued for a later grant.
    assert_eq!(a.queued_requests(), 1);
}

#[test]
fn ablation_sends_no_transfers_but_keeps_inquires() {
    let cfg = Config {
        forwarding_enabled: false,
    };
    let mut a = DelayOptimal::new(SiteId(9), vec![SiteId(9)], cfg);
    let r1 = ts(5, 1);
    let r0 = ts(3, 0);
    deliver(&mut a, 1, Body::Request { ts: r1 });
    let sends = deliver(&mut a, 0, Body::Request { ts: r0 });
    // Preemption still needs the inquire; the transfer is suppressed.
    assert_eq!(sends.len(), 1);
    assert!(matches!(
        sends[0].1.body,
        Body::Inquire { transfer: None, .. }
    ));
    // A lower-priority head gets only the fail (no transfer promise).
    let mut a = DelayOptimal::new(
        SiteId(9),
        vec![SiteId(9)],
        Config {
            forwarding_enabled: false,
        },
    );
    deliver(&mut a, 0, Body::Request { ts: r0 });
    let sends = deliver(&mut a, 1, Body::Request { ts: r1 });
    assert_eq!(sends.len(), 1);
    assert!(matches!(sends[0].1.body, Body::Fail { .. }));
}

#[test]
fn requests_from_known_failed_sites_are_ignored() {
    let mut a = arbiter();
    let mut fx = Effects::new();
    a.on_site_failure(SiteId(3), &mut fx);
    let sends = deliver(&mut a, 3, Body::Request { ts: ts(1, 3) });
    assert!(sends.is_empty());
    assert_eq!(a.lock_holder(), None);
}

#[test]
fn relinquish_of_queued_request_removes_it_silently() {
    let mut a = arbiter();
    let r1 = ts(1, 1);
    let r2 = ts(2, 2);
    deliver(&mut a, 1, Body::Request { ts: r1 });
    deliver(&mut a, 2, Body::Request { ts: r2 });
    assert_eq!(a.queued_requests(), 1);
    let sends = deliver(&mut a, 2, Body::Relinquish { req: r2 });
    assert!(sends.is_empty());
    assert_eq!(a.queued_requests(), 0);
    assert_eq!(a.lock_holder(), Some(r1));
}

#[test]
fn relinquish_of_lock_grants_next() {
    let mut a = arbiter();
    let r1 = ts(1, 1);
    let r2 = ts(2, 2);
    deliver(&mut a, 1, Body::Request { ts: r1 });
    deliver(&mut a, 2, Body::Request { ts: r2 });
    let sends = deliver(&mut a, 1, Body::Relinquish { req: r1 });
    assert_eq!(a.lock_holder(), Some(r2));
    assert!(sends
        .iter()
        .any(|(to, m)| *to == SiteId(2) && matches!(m.body, Body::Reply { .. })));
}

#[test]
fn forged_yield_from_wrong_site_is_ignored() {
    let mut a = arbiter();
    let r1 = ts(1, 1);
    deliver(&mut a, 1, Body::Request { ts: r1 });
    // Site 5 claims site 1's request yields: must be ignored.
    let sends = deliver(&mut a, 5, Body::Yield { req: r1 });
    assert!(sends.is_empty());
    assert_eq!(a.lock_holder(), Some(r1));
}

#[test]
fn transfer_without_matching_reply_is_discarded() {
    // A transfer for a permission we do NOT hold (we yielded it, or it is
    // from a stale round) must not create a forwarding obligation.
    let mut r = DelayOptimal::new(SiteId(1), vec![SiteId(8), SiteId(9)], Config::default());
    let mut fx = Effects::new();
    r.request_cs(&mut fx);
    let my = r.current_request().unwrap();
    fx.take_sends();
    // Transfer from S9 although S9 never replied: discard (A.5).
    deliver(
        &mut r,
        9,
        Body::Transfer {
            arbiter: SiteId(9),
            beneficiary: ts(70, 5),
            holder_req: my,
        },
    );
    // Collect both replies, enter, exit: no forwarded reply may appear.
    for a in [8u32, 9] {
        deliver(
            &mut r,
            a,
            Body::Reply {
                arbiter: SiteId(a),
                req: my,
                transfer: None,
            },
        );
    }
    assert!(r.in_cs());
    let mut fx = Effects::new();
    r.release_cs(&mut fx);
    let sends = fx.take_sends();
    assert!(
        sends
            .iter()
            .all(|(_, m)| !matches!(m.body, Body::Reply { .. })),
        "discarded transfer must not be honored"
    );
}

#[test]
fn inquire_while_fully_granted_is_answered_by_release() {
    let mut r = requester(1);
    let mut fx = Effects::new();
    r.request_cs(&mut fx);
    let my = r.current_request().unwrap();
    fx.take_sends();
    deliver(
        &mut r,
        9,
        Body::Reply {
            arbiter: SiteId(9),
            req: my,
            transfer: None,
        },
    );
    assert!(r.in_cs());
    // Inquire arrives while in the CS: no yield; but its piggybacked
    // transfer is still live and must be honored at exit.
    let sends = deliver(
        &mut r,
        9,
        Body::Inquire {
            arbiter: SiteId(9),
            holder_req: my,
            transfer: Some(ts(80, 6)),
        },
    );
    assert!(sends.is_empty());
    let mut fx = Effects::new();
    r.release_cs(&mut fx);
    let sends = fx.take_sends();
    assert!(sends.iter().any(|(to, m)| *to == SiteId(6)
        && matches!(m.body, Body::Reply { arbiter, .. } if arbiter == SiteId(9))));
}
