//! Micro-benchmark of the reliable transport hot path: ack, retransmit
//! and dedup under i.i.d. loss and duplication. The interesting cost here
//! is the per-packet bookkeeping (sequence windows, pending queues, the
//! `Arc`-shared payloads), so throughput is reported in protocol messages
//! delivered per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qmx_core::{LossModel, TransportConfig};
use qmx_sim::DelayModel;
use qmx_workload::arrival::ArrivalProcess;
use qmx_workload::scenario::{Algorithm, QuorumSpec, Scenario};

fn lossy_scenario(n: usize, drop: f64) -> Scenario {
    Scenario {
        n,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Poisson { mean_gap: 3_000 },
        horizon: 150_000,
        delay: DelayModel::Exponential { mean: 1000 },
        hold: DelayModel::Constant(100),
        loss: LossModel::Iid { drop, dup: 0.02 },
        transport: Some(TransportConfig::default()),
        seed: 42,
        ..Scenario::default()
    }
}

fn bench_retransmit(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport_retransmit");
    for (n, drop) in [(9usize, 0.05), (9, 0.20), (25, 0.10)] {
        // Calibrate once and make sure the loss actually exercises the
        // retransmit and dedup paths rather than timing a no-op.
        let r = lossy_scenario(n, drop).run();
        assert!(
            r.transport.retransmissions > 0,
            "n={n} drop={drop}: no retransmissions"
        );
        assert!(
            r.transport.duplicates_dropped > 0,
            "n={n} drop={drop}: no dedup work"
        );
        assert!(r.completed > 0, "n={n} drop={drop}: nothing completed");
        g.throughput(Throughput::Elements(r.messages));
        g.bench_function(
            format!("n{n}_drop{:02}", (drop * 100.0).round() as u32),
            |b| b.iter(|| lossy_scenario(n, drop).run()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_retransmit);
criterion_main!(benches);
