//! Micro-benchmarks of the protocol state machines themselves: how fast is
//! one uncontended CS round (request → replies → enter → release), and how
//! fast does an arbiter chew through queued requests?

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qmx_baselines::Maekawa;
use qmx_core::{Config, DelayOptimal, Effects, Protocol, SiteId};
use qmx_quorum::grid::grid_system;
use std::collections::VecDeque;

/// Drives a set of protocol instances synchronously until quiescence.
fn settle<P: Protocol>(sites: &mut [P], inflight: &mut VecDeque<(SiteId, SiteId, P::Msg)>) {
    while let Some((from, to, msg)) = inflight.pop_front() {
        let mut fx = Effects::new();
        sites[to.index()].handle(from, msg, &mut fx);
        for (t, m) in fx.take_sends() {
            inflight.push_back((to, t, m));
        }
    }
}

fn full_round<P: Protocol>(sites: &mut [P], requester: usize) {
    let mut inflight = VecDeque::new();
    let mut fx = Effects::new();
    sites[requester].request_cs(&mut fx);
    for (t, m) in fx.take_sends() {
        inflight.push_back((SiteId(requester as u32), t, m));
    }
    settle(sites, &mut inflight);
    assert!(sites[requester].in_cs());
    sites[requester].release_cs(&mut fx);
    for (t, m) in fx.take_sends() {
        inflight.push_back((SiteId(requester as u32), t, m));
    }
    settle(sites, &mut inflight);
}

fn delay_optimal_sites(n: usize) -> Vec<DelayOptimal> {
    let sys = grid_system(n);
    (0..n)
        .map(|i| {
            DelayOptimal::new(
                SiteId(i as u32),
                sys.quorum_of(SiteId(i as u32)).to_vec(),
                Config::default(),
            )
        })
        .collect()
}

fn maekawa_sites(n: usize) -> Vec<Maekawa> {
    let sys = grid_system(n);
    (0..n)
        .map(|i| Maekawa::new(SiteId(i as u32), sys.quorum_of(SiteId(i as u32)).to_vec()))
        .collect()
}

fn bench_uncontended_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_cs_round");
    for n in [9usize, 25, 100] {
        g.bench_function(format!("delay_optimal_n{n}"), |b| {
            b.iter_batched_ref(
                || delay_optimal_sites(n),
                |sites| full_round(sites, 0),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("maekawa_n{n}"), |b| {
            b.iter_batched_ref(
                || maekawa_sites(n),
                |sites| full_round(sites, 0),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_contended_burst(c: &mut Criterion) {
    // All sites request simultaneously, then the CS drains in turn — the
    // arbiter hot path with transfers, inquires, fails and yields.
    let mut g = c.benchmark_group("contended_burst");
    for n in [9usize, 25] {
        g.bench_function(format!("delay_optimal_n{n}"), |b| {
            b.iter_batched_ref(
                || delay_optimal_sites(n),
                |sites| {
                    let mut inflight = VecDeque::new();
                    for (i, site) in sites.iter_mut().enumerate() {
                        let mut fx = Effects::new();
                        site.request_cs(&mut fx);
                        for (t, m) in fx.take_sends() {
                            inflight.push_back((SiteId(i as u32), t, m));
                        }
                    }
                    settle(sites, &mut inflight);
                    let mut served = 0;
                    while let Some(cur) = sites.iter().position(|s| s.in_cs()) {
                        let mut fx = Effects::new();
                        sites[cur].release_cs(&mut fx);
                        for (t, m) in fx.take_sends() {
                            inflight.push_back((SiteId(cur as u32), t, m));
                        }
                        settle(sites, &mut inflight);
                        served += 1;
                    }
                    assert_eq!(served, n);
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_uncontended_round, bench_contended_burst);
criterion_main!(benches);
