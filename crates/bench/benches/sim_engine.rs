//! Micro-benchmark of the discrete-event engine: virtual events per second
//! on a contended mutual-exclusion workload (the cost of every experiment
//! in this crate).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qmx_core::{Config, DelayOptimal, SiteId};
use qmx_quorum::grid::grid_system;
use qmx_sim::{DelayModel, SimConfig, Simulator};

fn contended_run(n: usize, rounds: u64) -> usize {
    let sys = grid_system(n);
    let sites: Vec<DelayOptimal> = (0..n)
        .map(|i| {
            DelayOptimal::new(
                SiteId(i as u32),
                sys.quorum_of(SiteId(i as u32)).to_vec(),
                Config::default(),
            )
        })
        .collect();
    let mut sim = Simulator::new(
        sites,
        SimConfig {
            delay: DelayModel::Exponential { mean: 1000 },
            hold: DelayModel::Constant(100),
            ..SimConfig::default()
        },
    );
    for r in 0..rounds {
        for i in 0..n {
            sim.schedule_request(SiteId(i as u32), r * 5_000 + 17 * i as u64);
        }
    }
    sim.run_to_quiescence(u64::MAX / 2)
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine");
    for n in [9usize, 25] {
        // Calibrate: how many events does one configuration process?
        let events = contended_run(n, 20);
        g.throughput(Throughput::Elements(events as u64));
        g.bench_function(format!("contended_n{n}_20rounds"), |b| {
            b.iter(|| contended_run(n, 20))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
