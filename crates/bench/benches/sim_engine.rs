//! Micro-benchmark of the discrete-event engine: virtual events per second
//! on a contended mutual-exclusion workload (the cost of every experiment
//! in this crate), per event-scheduler implementation (binary heap,
//! calendar queue, timer wheel), plus the lazy-quorum large-N
//! configuration the wheel and the hot/cold protocol split exist for.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qmx_bench::micro;
use qmx_sim::SchedulerKind;

const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Heap,
    SchedulerKind::Calendar,
    SchedulerKind::Wheel,
];

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine");
    for n in [9usize, 25] {
        for kind in SCHEDULERS {
            // Calibrate: how many events does one configuration process?
            let events = micro::contended_sim_run_with(n, 20, kind);
            g.throughput(Throughput::Elements(events as u64));
            g.bench_function(format!("contended_n{n}_20rounds/{}", kind.label()), |b| {
                b.iter(|| micro::contended_sim_run_with(n, 20, kind))
            });
        }
    }
    g.finish();
}

fn bench_engine_large(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine_large");
    // Criterion runs many iterations, so the group stays at N = 10³; the
    // 10⁵ row lives in the benchjson trajectory where it runs a bounded
    // number of times.
    for kind in SCHEDULERS {
        let events = micro::large_n_sim_run(1_000, 50, kind);
        g.throughput(Throughput::Elements(events as u64));
        g.bench_function(format!("lazy_uncontended_n1000/{}", kind.label()), |b| {
            b.iter(|| micro::large_n_sim_run(1_000, 50, kind))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine, bench_engine_large);
criterion_main!(benches);
