//! Micro-benchmarks of quorum construction and verification: the one-time
//! setup cost a deployment pays per membership change.

use criterion::{criterion_group, criterion_main, Criterion};
use qmx_quorum::{fpp, grid, hqc, majority, rst, tree};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_constructions(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct");
    g.bench_function("grid_n400", |b| {
        b.iter(|| black_box(grid::grid_system(400)))
    });
    g.bench_function("majority_n401", |b| {
        b.iter(|| black_box(majority::majority_system(401)))
    });
    g.bench_function("tree_n255", |b| {
        b.iter(|| black_box(tree::tree_system(255).expect("full tree")))
    });
    g.bench_function("hqc_n243", |b| {
        b.iter(|| black_box(hqc::hqc_system(243).expect("power of three")))
    });
    g.bench_function("fpp_q13_n183", |b| {
        b.iter(|| black_box(fpp::fpp_system(13).expect("prime")))
    });
    g.bench_function("rst_n400_g4", |b| {
        b.iter(|| black_box(rst::rst_system(400, 4).expect("divisible")))
    });
    g.finish();
}

fn bench_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify_intersection");
    let grid = grid::grid_system(100);
    g.bench_function("grid_n100", |b| {
        b.iter(|| grid.verify_intersection().is_ok())
    });
    let tr = tree::tree_system(127).expect("full tree");
    g.bench_function("tree_n127", |b| b.iter(|| tr.verify_intersection().is_ok()));
    g.finish();
}

fn bench_tree_reconstruction(c: &mut Criterion) {
    // §6 hot path: recompute a quorum avoiding failed sites.
    let mut g = c.benchmark_group("tree_reconstruct");
    for failures in [0usize, 2, 8] {
        let down: BTreeSet<qmx_core::SiteId> = (0..failures as u32)
            .map(|i| qmx_core::SiteId(i * 7 + 1))
            .collect();
        g.bench_function(format!("n255_failed{failures}"), |b| {
            b.iter(|| black_box(tree::tree_quorum(255, &down, 42)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_constructions,
    bench_verification,
    bench_tree_reconstruction
);
criterion_main!(benches);
