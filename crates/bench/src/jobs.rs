//! `--jobs` flag handling shared by the experiment binaries.

/// Applies a `--jobs N` argument (if present in `args`) to the
/// process-wide worker count used by the experiment fan-out, returning
/// the effective value. `--jobs 0` (and absence) means auto-detect.
///
/// The experiment binaries take no other arguments, so unknown flags are
/// left alone for forward compatibility rather than rejected.
pub fn apply_jobs_flag<I: IntoIterator<Item = String>>(args: I) -> usize {
    let args: Vec<String> = args.into_iter().collect();
    for pair in args.windows(2) {
        if pair[0] == "--jobs" {
            if let Ok(n) = pair[1].parse::<usize>() {
                qmx_workload::parallel::set_jobs(n);
            }
        }
    }
    qmx_workload::parallel::jobs()
}

/// Convenience wrapper over [`apply_jobs_flag`] reading the process args.
pub fn init_jobs() -> usize {
    apply_jobs_flag(std::env::args().skip(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_flag_sets_worker_count() {
        let n = apply_jobs_flag(["--jobs".to_string(), "3".to_string()]);
        assert_eq!(n, 3);
        qmx_workload::parallel::set_jobs(0);
    }

    #[test]
    fn absent_or_malformed_flag_keeps_auto() {
        qmx_workload::parallel::set_jobs(0);
        let auto = qmx_workload::parallel::jobs();
        assert_eq!(apply_jobs_flag(Vec::new()), auto);
        assert_eq!(
            apply_jobs_flag(["--jobs".to_string(), "lots".to_string()]),
            auto
        );
    }
}
