//! Plain-text table formatting for experiment reports.

/// A simple fixed-width table printer: collects rows, prints aligned
/// columns with a header rule. No external dependency, deterministic
/// output (easy to diff in EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:width$}", c, width = widths[i]));
            }
            s.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats an optional float with two decimals, `-` when absent.
pub fn opt2(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"))
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["alg", "msgs"]);
        t.row(["maekawa", "12"]);
        t.row(["x", "3.50"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "alg      msgs");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "maekawa  12");
        assert_eq!(lines[3], "x        3.50");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn formats() {
        assert_eq!(opt2(None), "-");
        assert_eq!(opt2(Some(1.234)), "1.23");
        assert_eq!(f2(2.0), "2.00");
    }
}
