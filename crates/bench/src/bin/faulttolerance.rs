//! E8: liveness under a mid-run site crash (§6 failure handling).
fn main() {
    println!("{}", qmx_bench::experiments::fault_tolerance(7, 1));
}
