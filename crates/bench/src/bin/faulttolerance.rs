//! E8: liveness under a mid-run site crash (§6 failure handling).
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::fault_tolerance(7, 1));
}
