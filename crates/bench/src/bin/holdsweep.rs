//! E10: sync delay vs CS execution time (overlap effect).
fn main() {
    println!("{}", qmx_bench::experiments::sync_delay_vs_hold(25));
}
