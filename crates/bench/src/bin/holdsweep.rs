//! E10: sync delay vs CS execution time (overlap effect).
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::sync_delay_vs_hold(25));
}
