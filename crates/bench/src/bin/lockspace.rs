//! E16: R named resources sharded over one site set — one reliable
//! transport and one failure detector per link, shared by all of them.
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::lockspace_scaling());
}
