//! E4: synchronization delay vs load — proposed (T) vs Maekawa (2T).
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::sync_delay_sweep(25));
}
