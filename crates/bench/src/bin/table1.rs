//! E1: reproduce the paper's Table 1 (message complexity + sync delay).
fn main() {
    qmx_bench::jobs::init_jobs();
    for n in [9usize, 25, 49] {
        println!("{}", qmx_bench::experiments::table1(n));
    }
}
