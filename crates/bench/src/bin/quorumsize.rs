//! E6: quorum size K vs N for every construction.
fn main() {
    println!("{}", qmx_bench::experiments::quorum_sizes());
}
