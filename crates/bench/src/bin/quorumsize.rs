//! E6: quorum size K vs N for every construction.
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::quorum_sizes());
}
