//! E5: throughput and waiting time vs load.
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::throughput_sweep(25));
}
