//! E5: throughput and waiting time vs load.
fn main() {
    println!("{}", qmx_bench::experiments::throughput_sweep(25));
}
