//! E14: tail latency and served demand with deadline/abort/retry vs
//! parking under asymmetric link partitions (§5–§6).
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::abort_availability());
}
