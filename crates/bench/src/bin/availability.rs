//! E7: availability vs per-site reliability for every construction.
fn main() {
    println!("{}", qmx_bench::experiments::availability_curves());
}
