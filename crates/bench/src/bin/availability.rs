//! E7: availability vs per-site reliability for every construction.
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::availability_curves());
}
