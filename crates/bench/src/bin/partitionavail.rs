//! E13: service availability during asymmetric link partitions (§6).
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::partition_availability());
}
