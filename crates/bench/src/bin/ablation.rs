//! E9: ablation — disable reply forwarding, watch the delay revert to 2T.
fn main() {
    println!("{}", qmx_bench::experiments::ablation(25));
}
