//! E9: ablation — disable reply forwarding, watch the delay revert to 2T.
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::ablation(25));
}
