//! E2: light-load behaviour (§5.1): 3(K-1) messages, response 2T+E.
fn main() {
    qmx_bench::jobs::init_jobs();
    println!(
        "{}",
        qmx_bench::experiments::light_load_detail(&[9, 16, 25, 36, 49])
    );
}
