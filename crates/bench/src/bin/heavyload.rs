//! E3: heavy-load behaviour (§5.2): 5(K-1)..6(K-1) messages, delay T.
fn main() {
    qmx_bench::jobs::init_jobs();
    println!(
        "{}",
        qmx_bench::experiments::heavy_load_detail(&[9, 25, 49])
    );
}
