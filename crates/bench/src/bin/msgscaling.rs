//! E11: message complexity vs N per quorum construction.
fn main() {
    qmx_bench::jobs::init_jobs();
    println!("{}", qmx_bench::experiments::message_scaling());
}
