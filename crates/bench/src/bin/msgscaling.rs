//! E11: message complexity vs N per quorum construction.
fn main() {
    println!("{}", qmx_bench::experiments::message_scaling());
}
