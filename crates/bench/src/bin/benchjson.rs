//! Writes the machine-readable benchmark trajectory `BENCH_qmx.json`:
//! simulator events/sec, protocol ns/step, and wall-clock seconds per
//! experiment, so performance can be tracked across commits without
//! parsing Criterion output.
//!
//! Usage: `benchjson [--tiny] [--out PATH] [--jobs J]`
//!
//! `--tiny` shrinks iteration counts and the experiment list to a smoke
//! matrix suitable for CI; the JSON shape is identical in both modes.

use qmx_bench::{experiments, micro};
use std::fmt::Write as _;
use std::time::Instant;

/// Mean wall-clock seconds of `f` over `iters` runs (after one warm-up).
fn time_mean(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

struct Args {
    tiny: bool,
    out: String,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        tiny: false,
        out: "BENCH_qmx.json".to_string(),
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tiny" => args.tiny = true,
            "--out" if i + 1 < argv.len() => {
                args.out = argv[i + 1].clone();
                i += 1;
            }
            // `--jobs N` is consumed by init_jobs; skip its value here.
            "--jobs" => i += 1,
            other => {
                eprintln!("benchjson: unknown argument '{other}'");
                eprintln!("usage: benchjson [--tiny] [--out PATH] [--jobs J]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let jobs = qmx_bench::jobs::init_jobs();
    let args = parse_args();
    let (engine_iters, round_iters, sim_rounds) = if args.tiny {
        (2, 200, 3)
    } else {
        (10, 2_000, 20)
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"qmx-bench-trajectory/v1\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if args.tiny { "tiny" } else { "full" }
    );
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(
        json,
        "  \"cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Discrete-event engine: virtual events per second of wall clock.
    json.push_str("  \"engine\": [\n");
    let engine_ns: Vec<usize> = if args.tiny { vec![9] } else { vec![9, 25] };
    for (i, &n) in engine_ns.iter().enumerate() {
        let events = micro::contended_sim_run(n, sim_rounds);
        let secs = time_mean(engine_iters, || {
            micro::contended_sim_run(n, sim_rounds);
        });
        let rate = events as f64 / secs;
        eprintln!("engine   contended_n{n}: {events} events, {rate:.0} events/sec");
        let _ = writeln!(
            json,
            "    {{\"name\": \"contended_n{n}_{sim_rounds}rounds\", \
             \"events\": {events}, \"seconds\": {secs:.6}, \
             \"events_per_sec\": {rate:.0}}}{}",
            if i + 1 < engine_ns.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    // Protocol state machines: nanoseconds per handled step in an
    // uncontended round, for both the paper's algorithm and Maekawa.
    json.push_str("  \"protocol\": [\n");
    let proto_ns: Vec<usize> = if args.tiny { vec![9] } else { vec![9, 25, 100] };
    let mut rows: Vec<String> = Vec::new();
    for &n in &proto_ns {
        let mut d = micro::delay_optimal_sites(n);
        let steps = micro::full_round(&mut d, 0);
        let secs = time_mean(round_iters, || {
            micro::full_round(&mut d, 0);
        });
        let ns_per_step = secs * 1e9 / steps as f64;
        eprintln!("protocol delay_optimal_n{n}: {steps} steps, {ns_per_step:.0} ns/step");
        rows.push(format!(
            "    {{\"name\": \"uncontended_round/delay_optimal_n{n}\", \
             \"steps\": {steps}, \"ns_per_step\": {ns_per_step:.1}}}"
        ));

        let mut m = micro::maekawa_sites(n);
        let steps = micro::full_round(&mut m, 0);
        let secs = time_mean(round_iters, || {
            micro::full_round(&mut m, 0);
        });
        let ns_per_step = secs * 1e9 / steps as f64;
        eprintln!("protocol maekawa_n{n}: {steps} steps, {ns_per_step:.0} ns/step");
        rows.push(format!(
            "    {{\"name\": \"uncontended_round/maekawa_n{n}\", \
             \"steps\": {steps}, \"ns_per_step\": {ns_per_step:.1}}}"
        ));
    }
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");

    // End-to-end experiments: wall-clock seconds per report, once each.
    type Exp = (&'static str, fn() -> String);
    let exps: Vec<Exp> = if args.tiny {
        vec![("table1_n9", || experiments::table1(9))]
    } else {
        vec![
            ("table1_n9", || experiments::table1(9)),
            ("lightload", || {
                experiments::light_load_detail(&[9, 16, 25, 36, 49])
            }),
            ("heavyload", || experiments::heavy_load_detail(&[9, 25, 49])),
            ("holdsweep", || experiments::sync_delay_vs_hold(25)),
        ]
    };
    json.push_str("  \"experiments\": [\n");
    for (i, (name, f)) in exps.iter().enumerate() {
        let start = Instant::now();
        let report = f();
        let secs = start.elapsed().as_secs_f64();
        assert!(!report.is_empty());
        eprintln!("e2e      {name}: {secs:.3} s");
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"seconds\": {secs:.3}}}{}",
            if i + 1 < exps.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).expect("write trajectory file");
    println!("wrote {}", args.out);
}
