//! Writes the machine-readable benchmark trajectory `BENCH_qmx.json`:
//! simulator events/sec (per event-scheduler implementation), large-N
//! lazy-quorum engine rows (events/sec plus a peak-RSS estimate at
//! N = 10³ and 10⁵), protocol ns/step, model-checker state counts and
//! DPOR reduction ratios, and wall-clock seconds per experiment, so
//! performance can be tracked across commits without parsing Criterion
//! output.
//!
//! Usage: `benchjson [--tiny] [--out PATH] [--jobs J]`
//!        `benchjson --check PATH [--jobs J]`
//!
//! `--tiny` shrinks iteration counts and the experiment list to a smoke
//! matrix suitable for CI; the JSON shape is identical in both modes.
//!
//! `--check` re-derives every *deterministic* field of a committed
//! trajectory file — schema, mode, engine row names and event counts,
//! protocol row names and step counts — and fails (exit 1) on any
//! drift. Wall-clock fields (`seconds`, rates, `jobs`, `cores`) are
//! machine-dependent and ignored. This is the CI gate that catches a
//! benchmark row silently changing its workload (different event count)
//! or the file going stale after a protocol change (different steps).

use qmx_bench::{experiments, micro};
use qmx_check::{check_with, CheckOptions, CheckStats, FaultBudget, Workload};
use qmx_core::{Config, DelayOptimal, SiteId};
use qmx_sim::SchedulerKind;
use std::fmt::Write as _;
use std::time::Instant;

/// Trajectory file format version. Bump when row names or the set of
/// deterministic fields changes, so `--check` rejects stale files
/// loudly instead of mis-diffing them. v4 added the timer-wheel
/// scheduler rows and the `engine_large/*` section (lazy-quorum runs at
/// N = 10³ and 10⁵ with a peak-RSS estimate). v5 added the
/// `lockspace/*` section: sharded multi-resource runs over one
/// transport/detector per link, gated on completed-CS counts.
const SCHEMA: &str = "qmx-bench-trajectory/v5";

/// All three scheduler implementations, in the order rows are emitted.
const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Heap,
    SchedulerKind::Calendar,
    SchedulerKind::Wheel,
];

/// Engine matrix sizes for the given mode.
fn engine_ns(tiny: bool) -> Vec<usize> {
    if tiny {
        vec![9]
    } else {
        vec![9, 25]
    }
}

/// Large-N engine matrix `(sites, requesters)` for the given mode: the
/// lazy-quorum configurations the timer wheel, the hot/cold protocol
/// split, and the payload slab exist for. Tiny mode keeps only the 10³
/// row so CI smoke stays fast; full mode adds the 10⁵ row the issue
/// gate asks for.
fn large_ns(tiny: bool) -> Vec<(usize, u64)> {
    if tiny {
        vec![(1_000, 50)]
    } else {
        vec![(1_000, 50), (100_000, 100)]
    }
}

/// Protocol matrix sizes for the given mode.
fn proto_ns(tiny: bool) -> Vec<usize> {
    if tiny {
        vec![9]
    } else {
        vec![9, 25, 100]
    }
}

/// (engine timing iters, protocol timing iters, contended sim rounds,
/// large-N timing iters).
fn iteration_params(tiny: bool) -> (usize, usize, u64, usize) {
    if tiny {
        (2, 200, 3, 1)
    } else {
        (10, 2_000, 20, 3)
    }
}

/// Model-checker scopes tracked in the trajectory: exhaustive DPOR runs
/// of the paper's protocol whose state counts are deterministic (gated
/// by `--check`) and whose reduction ratio is the sleep-set win the
/// checker README advertises. Runs are sequential (`jobs = 1` default)
/// so transitions are deterministic too.
type CheckerScope = (&'static str, fn() -> CheckStats);

fn checker_scopes(tiny: bool) -> Vec<CheckerScope> {
    fn sites(quorums: Vec<Vec<SiteId>>) -> Vec<DelayOptimal> {
        quorums
            .into_iter()
            .enumerate()
            .map(|(i, q)| {
                DelayOptimal::new(
                    SiteId(i as u32),
                    q,
                    Config {
                        forwarding_enabled: true,
                    },
                )
            })
            .collect()
    }
    fn full_q(n: u32) -> Vec<Vec<SiteId>> {
        (0..n).map(|_| (0..n).map(SiteId).collect()).collect()
    }
    fn ring_q() -> Vec<Vec<SiteId>> {
        vec![
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(1), SiteId(2)],
            vec![SiteId(2), SiteId(0)],
        ]
    }
    fn opts(faults: FaultBudget) -> CheckOptions<DelayOptimal> {
        let mut o = CheckOptions::new(200_000_000);
        o.faults = faults;
        if faults.is_active() {
            o.stuck_exempt = Some(DelayOptimal::is_inaccessible);
        }
        o
    }
    fn run(quorums: Vec<Vec<SiteId>>, n: u32, rounds: u32, faults: FaultBudget) -> CheckStats {
        check_with(
            sites(quorums),
            &Workload::uniform(n as usize, rounds),
            &opts(faults),
        )
        .expect("trajectory scope verifies")
    }
    let mut scopes: Vec<CheckerScope> =
        vec![("dpor/duo_2x2", || run(full_q(2), 2, 2, FaultBudget::none()))];
    if !tiny {
        scopes.push(("dpor/trio_3x1", || {
            run(full_q(3), 3, 1, FaultBudget::none())
        }));
        scopes.push(("dpor/ring_crash", || {
            run(ring_q(), 3, 1, FaultBudget::crash_recover(1, 0))
        }));
        scopes.push(("dpor/ring_crash_rejoin", || {
            run(ring_q(), 3, 1, FaultBudget::crash_recover(1, 1))
        }));
        scopes.push(("dpor/duo_crash_recover", || {
            run(full_q(2), 2, 1, FaultBudget::crash_recover(1, 1))
        }));
        scopes.push(("dpor/duo_partition", || {
            run(full_q(2), 2, 1, FaultBudget::partitions(2, 2))
        }));
        scopes.push(("dpor/abort", || {
            run(
                full_q(2),
                2,
                1,
                FaultBudget::crash_recover(1, 1).with_aborts(1),
            )
        }));
        scopes.push(("dpor/duo_false_suspicion", || {
            run(
                full_q(2),
                2,
                2,
                FaultBudget {
                    false_suspicions: 1,
                    detector: true,
                    ..FaultBudget::none()
                },
            )
        }));
    }
    scopes
}

/// Lock-space matrix `(resources, zipf)` for the given mode: zipfian
/// multi-resource load sharded over one `LockSpace` per site, with the
/// full per-link transport/detector stack. Tiny mode keeps one cell.
fn lockspace_cells(tiny: bool) -> Vec<(u32, f64)> {
    if tiny {
        vec![(16, 0.8)]
    } else {
        vec![(4, 0.0), (16, 0.8), (64, 1.0)]
    }
}

/// Row name for one lock-space cell.
fn lockspace_row_name(resources: u32, zipf: f64) -> String {
    format!("lockspace/n9_r{resources}_zipf{zipf:.1}")
}

/// Runs one lock-space cell: 9 sites, grid quorums, Poisson load spread
/// over `resources` locks by a zipfian draw, reliable transport and
/// heartbeat detector shared per link. Deterministic per cell (and for
/// any `--jobs`), so the completed-CS count is a `--check`-gated field.
fn lockspace_cell_report(resources: u32, zipf: f64) -> qmx_workload::stats::RunReport {
    use qmx_workload::arrival::{ArrivalProcess, ResourceMix};
    use qmx_workload::scenario::{Algorithm, QuorumSpec, Scenario};
    Scenario {
        n: 9,
        algorithm: Algorithm::DelayOptimal,
        quorum: QuorumSpec::Grid,
        arrivals: ArrivalProcess::Poisson { mean_gap: 8_000 },
        horizon: 300_000,
        transport: Some(qmx_core::TransportConfig::default()),
        detector: Some(qmx_core::DetectorConfig::default()),
        mix: Some(ResourceMix::Zipf { resources, s: zipf }),
        seed: 0xBE9C,
        ..Scenario::default()
    }
    .run()
}

/// Recomputes the deterministic lock-space rows `(name, completed CS)`
/// for a mode.
fn expected_lockspace_rows(tiny: bool) -> Vec<(String, u64)> {
    lockspace_cells(tiny)
        .into_iter()
        .map(|(r, z)| {
            (
                lockspace_row_name(r, z),
                lockspace_cell_report(r, z).completed as u64,
            )
        })
        .collect()
}

/// Peak resident-set size of this process in KiB, from `VmHWM` in
/// `/proc/self/status`; 0 where the file is unavailable (non-Linux).
/// A process-wide high-water mark, so per-row values are an estimate:
/// the 10⁵ row dwarfs everything else the writer runs, which is exactly
/// the number the large-N memory work (hot/cold split, payload slab,
/// lazy quorums) is meant to hold down. Machine-dependent, so ignored
/// by `--check`.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// Mean wall-clock seconds of `f` over `iters` runs (after one warm-up).
fn time_mean(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

struct Args {
    tiny: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        tiny: false,
        out: "BENCH_qmx.json".to_string(),
        check: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tiny" => args.tiny = true,
            "--out" if i + 1 < argv.len() => {
                args.out = argv[i + 1].clone();
                i += 1;
            }
            "--check" if i + 1 < argv.len() => {
                args.check = Some(argv[i + 1].clone());
                i += 1;
            }
            // `--jobs N` is consumed by init_jobs; skip its value here.
            "--jobs" => i += 1,
            other => {
                eprintln!("benchjson: unknown argument '{other}'");
                eprintln!("usage: benchjson [--tiny] [--out PATH] [--jobs J]");
                eprintln!("       benchjson --check PATH [--jobs J]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Extracts `"key": "value"` from a single JSON line we wrote ourselves
/// (one object per line, no escapes inside strings).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts `"key": 123` (unsigned integer) from a single JSON line.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: &str = line[start..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap_or("");
    digits.parse().ok()
}

/// Recomputes the deterministic engine rows `(name, events)` for a
/// mode: the contended small-N matrix followed by the lazy-quorum
/// `engine_large/*` matrix, in file order.
fn expected_engine_rows(tiny: bool) -> Vec<(String, u64)> {
    let (_, _, sim_rounds, _) = iteration_params(tiny);
    let mut rows = Vec::new();
    for &n in &engine_ns(tiny) {
        for kind in SCHEDULERS {
            let events = micro::contended_sim_run_with(n, sim_rounds, kind);
            rows.push((
                format!("contended_n{n}_{sim_rounds}rounds/{}", kind.label()),
                events as u64,
            ));
        }
    }
    for &(n, req) in &large_ns(tiny) {
        for kind in SCHEDULERS {
            let events = micro::large_n_sim_run(n, req, kind);
            rows.push((
                format!("engine_large/uncontended_n{n}_{req}req/{}", kind.label()),
                events as u64,
            ));
        }
    }
    rows
}

/// Recomputes the deterministic protocol rows `(name, steps)` for a mode.
fn expected_protocol_rows(tiny: bool) -> Vec<(String, u64)> {
    let mut rows = Vec::new();
    for &n in &proto_ns(tiny) {
        let mut d = micro::delay_optimal_sites(n);
        rows.push((
            format!("uncontended_round/delay_optimal_n{n}"),
            micro::full_round(&mut d, 0) as u64,
        ));
        let mut m = micro::maekawa_sites(n);
        rows.push((
            format!("uncontended_round/maekawa_n{n}"),
            micro::full_round(&mut m, 0) as u64,
        ));
    }
    rows
}

/// Recomputes the deterministic checker rows `(name, states)` for a mode.
fn expected_checker_rows(tiny: bool) -> Vec<(String, u64)> {
    checker_scopes(tiny)
        .into_iter()
        .map(|(name, f)| (name.to_string(), f().states as u64))
        .collect()
}

/// Diffs one named-counter section; appends human-readable failures.
fn diff_rows(
    section: &str,
    counter: &str,
    expected: &[(String, u64)],
    actual: &[(String, u64)],
    failures: &mut Vec<String>,
) {
    if expected.len() != actual.len() {
        failures.push(format!(
            "{section}: expected {} rows, file has {}",
            expected.len(),
            actual.len()
        ));
    }
    for (i, exp) in expected.iter().enumerate() {
        match actual.get(i) {
            None => failures.push(format!("{section}: missing row '{}'", exp.0)),
            Some(act) if act.0 != exp.0 => failures.push(format!(
                "{section} row {i}: name drift: expected '{}', file has '{}'",
                exp.0, act.0
            )),
            Some(act) if act.1 != exp.1 => failures.push(format!(
                "{section} '{}': {counter} drift: expected {}, file has {}",
                exp.0, exp.1, act.1
            )),
            Some(_) => {}
        }
    }
}

/// `--check PATH`: verify the committed trajectory's deterministic
/// fields against freshly recomputed values. Exits the process.
fn run_check(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("benchjson --check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut failures: Vec<String> = Vec::new();

    let schema = text
        .lines()
        .find_map(|l| json_str_field(l, "schema"))
        .unwrap_or_default();
    if schema != SCHEMA {
        failures.push(format!(
            "schema drift: expected '{SCHEMA}', file has '{schema}'"
        ));
    }
    let mode = text
        .lines()
        .find_map(|l| json_str_field(l, "mode"))
        .unwrap_or_default();
    let tiny = match mode.as_str() {
        "tiny" => true,
        "full" => false,
        other => {
            eprintln!("benchjson --check: unknown mode '{other}' in {path}");
            std::process::exit(1);
        }
    };

    // One row object per line by construction; a row carries an `events`
    // counter (engine), a `steps` counter (protocol), a `states` counter
    // (model checker), or a `cs` counter (lock space).
    let mut actual_engine: Vec<(String, u64)> = Vec::new();
    let mut actual_proto: Vec<(String, u64)> = Vec::new();
    let mut actual_check: Vec<(String, u64)> = Vec::new();
    let mut actual_lock: Vec<(String, u64)> = Vec::new();
    for line in text.lines() {
        let Some(name) = json_str_field(line, "name") else {
            continue;
        };
        if let Some(events) = json_u64_field(line, "events") {
            actual_engine.push((name, events));
        } else if let Some(steps) = json_u64_field(line, "steps") {
            actual_proto.push((name, steps));
        } else if let Some(states) = json_u64_field(line, "states") {
            actual_check.push((name, states));
        } else if let Some(cs) = json_u64_field(line, "cs") {
            actual_lock.push((name, cs));
        }
    }

    if failures.is_empty() {
        diff_rows(
            "engine",
            "events",
            &expected_engine_rows(tiny),
            &actual_engine,
            &mut failures,
        );
        diff_rows(
            "protocol",
            "steps",
            &expected_protocol_rows(tiny),
            &actual_proto,
            &mut failures,
        );
        diff_rows(
            "checker",
            "states",
            &expected_checker_rows(tiny),
            &actual_check,
            &mut failures,
        );
        diff_rows(
            "lockspace",
            "cs",
            &expected_lockspace_rows(tiny),
            &actual_lock,
            &mut failures,
        );
    }

    if failures.is_empty() {
        println!(
            "benchjson --check: {path} OK ({} engine rows, {} protocol rows, \
             {} checker rows, {} lockspace rows, mode {mode})",
            actual_engine.len(),
            actual_proto.len(),
            actual_check.len(),
            actual_lock.len()
        );
        std::process::exit(0);
    }
    eprintln!("benchjson --check: {path} FAILED:");
    for f in &failures {
        eprintln!("  - {f}");
    }
    eprintln!("regenerate with: cargo run --release -p qmx-bench --bin benchjson");
    std::process::exit(1);
}

fn main() {
    let jobs = qmx_bench::jobs::init_jobs();
    let args = parse_args();
    if let Some(path) = &args.check {
        run_check(path);
    }
    let (engine_iters, round_iters, sim_rounds, large_iters) = iteration_params(args.tiny);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if args.tiny { "tiny" } else { "full" }
    );
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(
        json,
        "  \"cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // Discrete-event engine: virtual events per second of wall clock,
    // one row per (size, scheduler) pair. The event counts of the heap,
    // calendar, and wheel rows at the same size must be identical —
    // that is the scheduler determinism contract, asserted here.
    json.push_str("  \"engine\": [\n");
    let ns = engine_ns(args.tiny);
    let mut engine_rows: Vec<String> = Vec::new();
    for &n in &ns {
        let mut counts = Vec::new();
        for kind in SCHEDULERS {
            let events = micro::contended_sim_run_with(n, sim_rounds, kind);
            counts.push(events);
            let secs = time_mean(engine_iters, || {
                micro::contended_sim_run_with(n, sim_rounds, kind);
            });
            let rate = events as f64 / secs;
            let label = kind.label();
            eprintln!("engine   contended_n{n}/{label}: {events} events, {rate:.0} events/sec");
            engine_rows.push(format!(
                "    {{\"name\": \"contended_n{n}_{sim_rounds}rounds/{label}\", \
                 \"events\": {events}, \"seconds\": {secs:.6}, \
                 \"events_per_sec\": {rate:.0}}}"
            ));
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "schedulers disagree on event count at n={n}: {counts:?}"
        );
    }
    json.push_str(&engine_rows.join(",\n"));
    json.push_str("\n  ],\n");

    // Large-N engine: the lazy-quorum configurations (no materialized
    // coterie, timer-wheel-friendly tick spans) at 10³ and 10⁵ sites.
    // Event counts are deterministic and scheduler-invariant (asserted
    // and gated by `--check`); `peak_rss_kb` is the process high-water
    // mark after the run — a memory-footprint tripwire for the hot/cold
    // split and the payload slab, tracked but not gated.
    json.push_str("  \"engine_large\": [\n");
    let mut large_rows: Vec<String> = Vec::new();
    for &(n, req) in &large_ns(args.tiny) {
        let mut counts = Vec::new();
        for kind in SCHEDULERS {
            let events = micro::large_n_sim_run(n, req, kind);
            counts.push(events);
            let secs = time_mean(large_iters, || {
                micro::large_n_sim_run(n, req, kind);
            });
            let rate = events as f64 / secs;
            let rss = peak_rss_kb();
            let label = kind.label();
            eprintln!(
                "large    uncontended_n{n}/{label}: {events} events, {rate:.0} events/sec, \
                 peak rss {rss} KiB"
            );
            large_rows.push(format!(
                "    {{\"name\": \"engine_large/uncontended_n{n}_{req}req/{label}\", \
                 \"events\": {events}, \"seconds\": {secs:.6}, \
                 \"events_per_sec\": {rate:.0}, \"peak_rss_kb\": {rss}}}"
            ));
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "schedulers disagree on large-N event count at n={n}: {counts:?}"
        );
    }
    json.push_str(&large_rows.join(",\n"));
    json.push_str("\n  ],\n");

    // Protocol state machines: nanoseconds per handled step in an
    // uncontended round, for both the paper's algorithm and Maekawa.
    json.push_str("  \"protocol\": [\n");
    let mut rows: Vec<String> = Vec::new();
    for &n in &proto_ns(args.tiny) {
        let mut d = micro::delay_optimal_sites(n);
        let steps = micro::full_round(&mut d, 0);
        let secs = time_mean(round_iters, || {
            micro::full_round(&mut d, 0);
        });
        let ns_per_step = secs * 1e9 / steps as f64;
        eprintln!("protocol delay_optimal_n{n}: {steps} steps, {ns_per_step:.0} ns/step");
        rows.push(format!(
            "    {{\"name\": \"uncontended_round/delay_optimal_n{n}\", \
             \"steps\": {steps}, \"ns_per_step\": {ns_per_step:.1}}}"
        ));

        let mut m = micro::maekawa_sites(n);
        let steps = micro::full_round(&mut m, 0);
        let secs = time_mean(round_iters, || {
            micro::full_round(&mut m, 0);
        });
        let ns_per_step = secs * 1e9 / steps as f64;
        eprintln!("protocol maekawa_n{n}: {steps} steps, {ns_per_step:.0} ns/step");
        rows.push(format!(
            "    {{\"name\": \"uncontended_round/maekawa_n{n}\", \
             \"steps\": {steps}, \"ns_per_step\": {ns_per_step:.1}}}"
        ));
    }
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");

    // Model checker: exhaustive DPOR verification scopes. `states` is
    // the exact (deterministic) reachable-state count; the reduction
    // ratio is naive-enabled-transitions over explored transitions —
    // how much interleaving the sleep sets proved redundant.
    json.push_str("  \"checker\": [\n");
    let mut rows: Vec<String> = Vec::new();
    for (name, f) in checker_scopes(args.tiny) {
        let start = Instant::now();
        let stats = f();
        let secs = start.elapsed().as_secs_f64();
        let ratio = stats.reduction_ratio();
        eprintln!(
            "checker  {name}: {} states, {} transitions, {ratio:.2}x reduction, {secs:.3} s",
            stats.states, stats.transitions
        );
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"states\": {}, \"transitions\": {}, \
             \"naive_transitions\": {}, \"reduction_ratio\": {ratio:.3}, \
             \"seconds\": {secs:.3}}}",
            stats.states, stats.transitions, stats.naive_transitions
        ));
    }
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");

    // Sharded lock space: zipfian multi-resource runs over one
    // transport/detector per link. `cs` (completed executions) is the
    // deterministic gated counter; resource spread, fairness, and the
    // per-link heartbeat/retransmit counts ride along as tracked fields
    // (deterministic too, but the single gate keeps the check cheap to
    // reason about).
    json.push_str("  \"lockspace\": [\n");
    let mut rows: Vec<String> = Vec::new();
    for (resources, zipf) in lockspace_cells(args.tiny) {
        let start = Instant::now();
        let r = lockspace_cell_report(resources, zipf);
        let secs = start.elapsed().as_secs_f64();
        let name = lockspace_row_name(resources, zipf);
        let fairness = r.resource_fairness.unwrap_or(0.0);
        eprintln!(
            "lockspace {name}: {} cs over {} resources, fairness {fairness:.3}, \
             {} beats, {} retrans, {secs:.3} s",
            r.completed, r.resources, r.detector.heartbeats_sent, r.transport.retransmissions
        );
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"cs\": {}, \"resources_hit\": {}, \
             \"resource_fairness\": {fairness:.4}, \"heartbeats\": {}, \
             \"retransmissions\": {}, \"seconds\": {secs:.3}}}",
            r.completed, r.resources, r.detector.heartbeats_sent, r.transport.retransmissions
        ));
    }
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");

    // End-to-end experiments: wall-clock seconds per report, once each.
    type Exp = (&'static str, fn() -> String);
    let exps: Vec<Exp> = if args.tiny {
        vec![("table1_n9", || experiments::table1(9))]
    } else {
        vec![
            ("table1_n9", || experiments::table1(9)),
            ("lightload", || {
                experiments::light_load_detail(&[9, 16, 25, 36, 49])
            }),
            ("heavyload", || experiments::heavy_load_detail(&[9, 25, 49])),
            ("holdsweep", || experiments::sync_delay_vs_hold(25)),
        ]
    };
    json.push_str("  \"experiments\": [\n");
    for (i, (name, f)) in exps.iter().enumerate() {
        let start = Instant::now();
        let report = f();
        let secs = start.elapsed().as_secs_f64();
        assert!(!report.is_empty());
        eprintln!("e2e      {name}: {secs:.3} s");
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"seconds\": {secs:.3}}}{}",
            if i + 1 < exps.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).expect("write trajectory file");
    println!("wrote {}", args.out);
}
