//! The experiment suite: one function per table/figure of the paper.
//!
//! Each function returns its rendered report (the binaries print it), so
//! integration tests can run the same code and assert on the numbers.
//! Experiment ids (E1–E9) are indexed in `DESIGN.md` and the outputs are
//! recorded in `EXPERIMENTS.md`.
//!
//! Every sweep fans its cells out across worker threads via
//! [`qmx_workload::parallel::par_map`] — each cell is a pure function of
//! its scenario parameters and a fixed seed, and rows are assembled in
//! parameter order, so reports are byte-identical for any `--jobs` value.

use crate::report::{f2, opt2, Table};
use qmx_core::{MsgKind, SiteId};
use qmx_quorum::availability::{exact_availability, true_majority_availability};
use qmx_quorum::{crumbling, fpp, grid, gridset, hqc, majority, rst, tree, wheel};
use qmx_sim::DelayModel;
use qmx_workload::arrival::ArrivalProcess;
use qmx_workload::parallel::par_map;
use qmx_workload::replicate::Replicates;
use qmx_workload::scenario::{Algorithm, QuorumSpec, Scenario};
use qmx_workload::stats::RunReport;

/// Mean message delay used throughout (ticks): the paper's `T`.
pub const T: u64 = 1000;
/// CS execution time (ticks): the paper's `E`.
pub const E: u64 = 100;

fn base_scenario(n: usize, algorithm: Algorithm, quorum: QuorumSpec) -> Scenario {
    Scenario {
        n,
        algorithm,
        quorum,
        delay: DelayModel::Constant(T),
        hold: DelayModel::Constant(E),
        ..Scenario::default()
    }
}

/// Light load: long Poisson gaps, so contention is rare.
pub fn light_load(n: usize, algorithm: Algorithm, quorum: QuorumSpec, seed: u64) -> RunReport {
    // Scale the per-site gap with N so the system-wide arrival rate (and
    // hence the contention level) stays constant as N grows.
    let gap = 40 * n as u64 * T;
    Scenario {
        arrivals: ArrivalProcess::Poisson { mean_gap: gap },
        horizon: 30 * gap,
        seed,
        ..base_scenario(n, algorithm, quorum)
    }
    .run()
}

/// Heavy load: every site re-requests as soon as it can.
pub fn heavy_load(n: usize, algorithm: Algorithm, quorum: QuorumSpec, seed: u64) -> RunReport {
    Scenario {
        arrivals: ArrivalProcess::Saturated { tick_gap: T / 2 },
        horizon: 600 * T,
        // §5.2's premise: "a site that is waiting to execute the CS has
        // enough time to obtain all reply messages except the reply from
        // the site in the CS" — true once the CS occupancy covers the
        // inquire/yield settling time (E ≥ 2T). See sync_delay_vs_hold for
        // the sweep that demonstrates the transition.
        hold: DelayModel::Constant(2 * T),
        seed,
        ..base_scenario(n, algorithm, quorum)
    }
    .run()
}

/// **E10 — extension**: synchronization delay as a function of the CS
/// execution time `E`. The paper's heavy-load delay-`T` claim rests on
/// contention resolution overlapping the CS; short CS bursts leave part of
/// the yield/inquire settling on the critical path.
pub fn sync_delay_vs_hold(n: usize) -> String {
    // Five seeds per cell: a single draw hides how load-dependent the
    // settling transition is, so quote mean ± σ across replicates.
    const SEEDS: std::ops::RangeInclusive<u64> = 1..=5;
    let mut t = Table::new(["E (T)", "delay-optimal", "maekawa"]);
    let rows = par_map(vec![1u64, 5, 10, 15, 20, 30], |e10| {
        let reps = |alg| {
            let base = Scenario {
                arrivals: ArrivalProcess::Saturated { tick_gap: T / 2 },
                horizon: 600 * T,
                hold: DelayModel::Constant(e10 * T / 10),
                ..base_scenario(n, alg, QuorumSpec::Grid)
            };
            Replicates::collect(&base, SEEDS)
        };
        let pm = |r: Replicates| {
            r.sync_delay_t()
                .map(|s| s.pm())
                .unwrap_or_else(|| "-".into())
        };
        [
            format!("{:.1}", e10 as f64 / 10.0),
            pm(reps(Algorithm::DelayOptimal)),
            pm(reps(Algorithm::Maekawa)),
        ]
    });
    for row in rows {
        t.row(row);
    }
    format!(
        "Sync delay vs CS execution time E, N = {n} (E10, extension; mean ± std over {} seeds)\n\n{}",
        SEEDS.count(),
        t.render()
    )
}

/// **E11 — extension**: message complexity vs `N` for the delay-optimal
/// algorithm over different quorum constructions — the abstract's claim
/// that `K` "can be as low as log N" made concrete: tree quorums give
/// `O(log N)` messages per CS at the same `T` synchronization delay.
pub fn message_scaling() -> String {
    let mut t = Table::new([
        "construction",
        "N",
        "K",
        "light msgs/CS",
        "3(K-1)",
        "heavy msgs/CS",
        "sync delay (T)",
    ]);
    let cases: Vec<(QuorumSpec, Vec<usize>)> = vec![
        (QuorumSpec::Grid, vec![9, 25, 49]),
        (QuorumSpec::Tree, vec![7, 15, 31, 63]),
        (QuorumSpec::Hqc, vec![9, 27]),
        (QuorumSpec::Fpp, vec![7, 13, 31]),
        (QuorumSpec::Wheel, vec![9, 25, 49]),
    ];
    let cells: Vec<(QuorumSpec, usize)> = cases
        .into_iter()
        .flat_map(|(spec, ns)| ns.into_iter().map(move |n| (spec, n)))
        .collect();
    for row in par_map(cells, |(spec, n)| {
        let light = light_load(n, Algorithm::DelayOptimal, spec, 21);
        let heavy = heavy_load(n, Algorithm::DelayOptimal, spec, 22);
        [
            format!("{spec:?}").to_lowercase(),
            n.to_string(),
            f2(heavy.quorum_size),
            opt2(light.messages_per_cs),
            f2(3.0 * (heavy.quorum_size - 1.0)),
            opt2(heavy.messages_per_cs),
            opt2(heavy.sync_delay_t),
        ]
    }) {
        t.row(row);
    }
    format!(
        "Message complexity vs N per quorum construction (E11, extension)\n\n{}",
        t.render()
    )
}

/// **E1 — Table 1**: message complexity and synchronization delay of every
/// algorithm, measured at light and heavy load.
pub fn table1(n: usize) -> String {
    let mut t = Table::new([
        "algorithm",
        "K",
        "light msgs/CS",
        "heavy msgs/CS",
        "sync delay (T)",
        "paper says",
    ]);
    let rows: Vec<(Algorithm, &str)> = vec![
        (Algorithm::Lamport, "3(N-1), T"),
        (Algorithm::RicartAgrawala, "2(N-1), T"),
        (Algorithm::CarvalhoRoucairol, "0..2(N-1), T"),
        (Algorithm::Maekawa, "3..5(K-1), 2T"),
        (Algorithm::SuzukiKasami, "N or 0, T"),
        (Algorithm::Raymond, "~log N, T*log(N)/2"),
        (Algorithm::SinghalDynamic, "N-1..2(N-1), T"),
        (Algorithm::DelayOptimal, "3..6(K-1), T"),
    ];
    for row in par_map(rows, |(alg, paper)| {
        let light = light_load(n, alg, QuorumSpec::Grid, 1);
        let heavy = heavy_load(n, alg, QuorumSpec::Grid, 2);
        [
            alg.label().to_string(),
            f2(heavy.quorum_size),
            opt2(light.messages_per_cs),
            opt2(heavy.messages_per_cs),
            opt2(heavy.sync_delay_t),
            paper.to_string(),
        ]
    }) {
        t.row(row);
    }
    format!(
        "Table 1 reproduction, N = {n} (grid quorums)\n\n{}",
        t.render()
    )
}

/// **E2 — §5.1**: light-load message count `3(K-1)` and response `2T+E`.
pub fn light_load_detail(ns: &[usize]) -> String {
    let mut t = Table::new(["N", "K", "msgs/CS", "3(K-1)", "response (T)", "expect 2T+E"]);
    for row in par_map(ns.to_vec(), |n| {
        let r = light_load(n, Algorithm::DelayOptimal, QuorumSpec::Grid, 3);
        [
            n.to_string(),
            f2(r.quorum_size),
            opt2(r.messages_per_cs),
            f2(3.0 * (r.quorum_size - 1.0)),
            opt2(r.response_time_t),
            f2(2.0 + E as f64 / T as f64),
        ]
    }) {
        t.row(row);
    }
    format!("Light-load behaviour (E2, §5.1)\n\n{}", t.render())
}

/// **E3 — §5.2**: heavy-load message counts against the `5(K-1)`/`6(K-1)`
/// envelope, with the per-kind message histogram.
pub fn heavy_load_detail(ns: &[usize]) -> String {
    let mut t = Table::new(["N", "K", "msgs/CS", "5(K-1)", "6(K-1)", "sync delay (T)"]);
    let mut hist = Table::new([
        "N", "request", "reply", "release", "inquire", "fail", "yield", "transfer",
    ]);
    for (trow, hrow) in par_map(ns.to_vec(), |n| {
        let r = heavy_load(n, Algorithm::DelayOptimal, QuorumSpec::Grid, 4);
        let k = r.quorum_size;
        let per = |kind: MsgKind| {
            let v = r.by_kind.get(&kind).copied().unwrap_or(0);
            format!("{:.2}", v as f64 / r.completed.max(1) as f64)
        };
        (
            [
                n.to_string(),
                f2(k),
                opt2(r.messages_per_cs),
                f2(5.0 * (k - 1.0)),
                f2(6.0 * (k - 1.0)),
                opt2(r.sync_delay_t),
            ],
            [
                n.to_string(),
                per(MsgKind::Request),
                per(MsgKind::Reply),
                per(MsgKind::Release),
                per(MsgKind::Inquire),
                per(MsgKind::Fail),
                per(MsgKind::Yield),
                per(MsgKind::Transfer),
            ],
        )
    }) {
        t.row(trow);
        hist.row(hrow);
    }
    format!(
        "Heavy-load behaviour (E3, §5.2)\n\n{}\nPer-CS message mix:\n\n{}",
        t.render(),
        hist.render()
    )
}

/// **E4 — §5.2 headline**: sync delay vs load, proposed vs Maekawa vs the
/// no-forwarding ablation.
pub fn sync_delay_sweep(n: usize) -> String {
    let mut t = Table::new(["mean gap (T)", "delay-optimal", "maekawa", "no-forwarding"]);
    for row in par_map(vec![50u64, 20, 10, 5, 2, 1], |gap_t| {
        let run = |alg| {
            Scenario {
                arrivals: ArrivalProcess::Poisson {
                    mean_gap: gap_t * T,
                },
                horizon: 2_000 * T,
                seed: 5,
                ..base_scenario(n, alg, QuorumSpec::Grid)
            }
            .run()
        };
        [
            gap_t.to_string(),
            opt2(run(Algorithm::DelayOptimal).sync_delay_t),
            opt2(run(Algorithm::Maekawa).sync_delay_t),
            opt2(run(Algorithm::DelayOptimalNoForwarding).sync_delay_t),
        ]
    }) {
        t.row(row);
    }
    format!(
        "Synchronization delay vs load, N = {n} (E4; paper: T vs 2T)\n\n{}",
        t.render()
    )
}

/// **E5 — §5.2 implications**: throughput and waiting time vs load.
pub fn throughput_sweep(n: usize) -> String {
    let mut t = Table::new([
        "mean gap (T)",
        "thr d-opt (/T)",
        "thr maekawa (/T)",
        "ratio",
        "wait d-opt (T)",
        "wait maekawa (T)",
    ]);
    for row in par_map(vec![20u64, 10, 5, 2, 1], |gap_t| {
        let run = |alg| {
            Scenario {
                arrivals: ArrivalProcess::Poisson {
                    mean_gap: gap_t * T,
                },
                horizon: 2_000 * T,
                seed: 6,
                ..base_scenario(n, alg, QuorumSpec::Grid)
            }
            .run()
        };
        let d = run(Algorithm::DelayOptimal);
        let m = run(Algorithm::Maekawa);
        let ratio = if m.throughput_per_t > 0.0 {
            d.throughput_per_t / m.throughput_per_t
        } else {
            f64::NAN
        };
        [
            gap_t.to_string(),
            f2(d.throughput_per_t),
            f2(m.throughput_per_t),
            f2(ratio),
            opt2(d.response_time_t),
            opt2(m.response_time_t),
        ]
    }) {
        t.row(row);
    }
    format!(
        "Throughput / waiting time vs load, N = {n} (E5; paper: ~2x at saturation)\n\n{}",
        t.render()
    )
}

/// **E6 — §5.3/§6**: quorum size `K` as a function of `N` per construction.
pub fn quorum_sizes() -> String {
    let mut t = Table::new(["construction", "N", "K (mean)", "K (max)", "expected"]);
    for n in [16usize, 25, 49, 100, 225, 400] {
        let sys = grid::grid_system(n);
        t.row([
            "grid".into(),
            n.to_string(),
            f2(sys.mean_quorum_size()),
            sys.max_quorum_size().to_string(),
            format!("2sqrt(N)-1 = {:.1}", 2.0 * (n as f64).sqrt() - 1.0),
        ]);
    }
    for q in [2usize, 3, 5, 7, 11, 13] {
        let sys = fpp::fpp_system(q).expect("prime order");
        let n = sys.n();
        t.row([
            "fpp".into(),
            n.to_string(),
            f2(sys.mean_quorum_size()),
            sys.max_quorum_size().to_string(),
            format!("sqrt(N) ~ {:.1}", (n as f64).sqrt()),
        ]);
    }
    for n in [7usize, 15, 31, 63, 127, 255, 511] {
        let sys = tree::tree_system(n).expect("full tree");
        t.row([
            "tree".into(),
            n.to_string(),
            f2(sys.mean_quorum_size()),
            sys.max_quorum_size().to_string(),
            format!("log2(N+1) = {}", (n + 1).trailing_zeros()),
        ]);
    }
    for n in [9usize, 27, 81, 243, 729] {
        let sys = hqc::hqc_system(n).expect("power of three");
        t.row([
            "hqc".into(),
            n.to_string(),
            f2(sys.mean_quorum_size()),
            sys.max_quorum_size().to_string(),
            format!("N^0.63 = {:.1}", (n as f64).powf(0.6309)),
        ]);
    }
    for (n, g) in [(16usize, 4usize), (64, 8), (144, 12), (400, 20)] {
        let sys = gridset::gridset_system(n, g).expect("divisible");
        t.row([
            format!("grid-set g={g}"),
            n.to_string(),
            f2(sys.mean_quorum_size()),
            sys.max_quorum_size().to_string(),
            "maj(N/g) x grid(g)".into(),
        ]);
        let sys = rst::rst_system(n, g).expect("divisible");
        t.row([
            format!("rst g={g}"),
            n.to_string(),
            f2(sys.mean_quorum_size()),
            sys.max_quorum_size().to_string(),
            "(g+1)/2 x grid(N/g)".into(),
        ]);
    }
    for n in [9usize, 25, 100, 400] {
        let sys = wheel::wheel_system(n);
        t.row([
            "wheel".into(),
            n.to_string(),
            f2(sys.mean_quorum_size()),
            sys.max_quorum_size().to_string(),
            "2 (hub)".into(),
        ]);
        let sys = crumbling::triangular_wall(n).expect("any n");
        t.row([
            "crumbling wall".into(),
            n.to_string(),
            f2(sys.mean_quorum_size()),
            sys.max_quorum_size().to_string(),
            "O(sqrt(N))".into(),
        ]);
    }
    for n in [9usize, 25, 49, 101] {
        let sys = majority::majority_system(n);
        t.row([
            "majority".into(),
            n.to_string(),
            f2(sys.mean_quorum_size()),
            sys.max_quorum_size().to_string(),
            format!("N/2+1 = {}", n / 2 + 1),
        ]);
    }
    format!("Quorum size vs N per construction (E6)\n\n{}", t.render())
}

/// **E7 — §6**: availability vs per-site reliability `p`.
pub fn availability_curves() -> String {
    let mut t = Table::new([
        "p",
        "grid N=9",
        "tree N=7",
        "hqc N=9",
        "rst N=12 g=3",
        "maj N=9 (win)",
        "maj N=9 (true)",
        "wheel N=9",
        "wall N=10",
        "single",
    ]);
    let grid9 = grid::grid_system(9);
    let tree7 = tree::tree_system(7).expect("full tree");
    let hqc9 = hqc::hqc_system(9).expect("3^2");
    let rst12 = rst::rst_system(12, 3).expect("divisible");
    let maj9 = majority::majority_system(9);
    let wheel9 = wheel::wheel_system(9);
    let wall10 = crumbling::triangular_wall(10).expect("any n");
    for p10 in [50u32, 60, 70, 80, 90, 95, 99] {
        let p = p10 as f64 / 100.0;
        t.row([
            format!("{p:.2}"),
            f2(exact_availability(&grid9, p)),
            f2(exact_availability(&tree7, p)),
            f2(exact_availability(&hqc9, p)),
            f2(exact_availability(&rst12, p)),
            f2(exact_availability(&maj9, p)),
            f2(true_majority_availability(9, p)),
            f2(exact_availability(&wheel9, p)),
            f2(exact_availability(&wall10, p)),
            f2(p),
        ]);
    }
    format!(
        "Availability vs site reliability (E7, §6 resilience trade-off)\n\n{}",
        t.render()
    )
}

/// **E8 — §6**: liveness under a mid-run crash with reconstructible (tree)
/// quorums, vs the fixed-quorum protocol which loses the crashed member's
/// dependents.
pub fn fault_tolerance(n: usize, crash_site: u32) -> String {
    let run = |alg: Algorithm| {
        Scenario {
            n,
            algorithm: alg,
            quorum: QuorumSpec::Tree,
            arrivals: ArrivalProcess::Periodic {
                period: 20 * T,
                stagger: T,
            },
            horizon: 600 * T,
            crashes: vec![(SiteId(crash_site), 200 * T)],
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(E),
            ..Scenario::default()
        }
        .run()
    };
    let mut pair = par_map(
        vec![Algorithm::DelayOptimalFtTree, Algorithm::DelayOptimal],
        run,
    )
    .into_iter();
    let (ft, fixed) = (
        pair.next().expect("ft run"),
        pair.next().expect("fixed run"),
    );
    let mut t = Table::new(["variant", "completed", "messages/CS", "fairness"]);
    t.row([
        "FT (tree reconstruction)".to_string(),
        ft.completed.to_string(),
        opt2(ft.messages_per_cs),
        opt2(ft.fairness),
    ]);
    t.row([
        "fixed quorums".to_string(),
        fixed.completed.to_string(),
        opt2(fixed.messages_per_cs),
        opt2(fixed.fairness),
    ]);
    format!(
        "Fault tolerance: site {crash_site} crashes at t=200T, N={n} (E8, §6)\n\
         The FT variant keeps serving every live site; the fixed-quorum\n\
         variant stops serving sites whose quorum contains the dead site.\n\n{}",
        t.render()
    )
}

/// **E12 — engineering ablation**: binary-heap vs calendar-queue vs
/// timer-wheel event scheduler on the contended simulator workload. All
/// schedulers must process the identical event sequence (asserted — the
/// determinism contract); the table reports each one's events/sec and
/// the calendar's and wheel's speedups over the heap. Cells are timed
/// sequentially (no [`par_map`]) so sibling cells cannot distort the
/// wall clocks.
pub fn scheduler_ablation(ns: &[usize], rounds: u64) -> String {
    use qmx_sim::SchedulerKind;
    use std::time::Instant;
    let mut t = Table::new([
        "N",
        "rounds",
        "events",
        "heap ev/s",
        "calendar ev/s",
        "wheel ev/s",
        "cal x",
        "wheel x",
    ]);
    for &n in ns {
        let events = crate::micro::contended_sim_run_with(n, rounds, SchedulerKind::Heap);
        for kind in [SchedulerKind::Calendar, SchedulerKind::Wheel] {
            assert_eq!(
                events,
                crate::micro::contended_sim_run_with(n, rounds, kind),
                "schedulers disagree on event count at n={n}"
            );
        }
        // Best of several short windows: the per-window rate is the
        // quantity being estimated, and the fastest window is the one
        // least disturbed by scheduler noise on a shared box.
        let rate = |kind: SchedulerKind| {
            crate::micro::contended_sim_run_with(n, rounds, kind); // warm-up
            const ITERS: usize = 5;
            const WINDOWS: usize = 4;
            let mut best = f64::MIN;
            for _ in 0..WINDOWS {
                let start = Instant::now();
                for _ in 0..ITERS {
                    crate::micro::contended_sim_run_with(n, rounds, kind);
                }
                best = best.max(events as f64 * ITERS as f64 / start.elapsed().as_secs_f64());
            }
            best
        };
        let heap = rate(SchedulerKind::Heap);
        let calendar = rate(SchedulerKind::Calendar);
        let wheel = rate(SchedulerKind::Wheel);
        t.row([
            n.to_string(),
            rounds.to_string(),
            events.to_string(),
            format!("{heap:.0}"),
            format!("{calendar:.0}"),
            format!("{wheel:.0}"),
            f2(calendar / heap),
            f2(wheel / heap),
        ]);
    }
    format!(
        "Scheduler ablation: heap vs calendar vs wheel event queue (E12, engineering)\n\
         Event counts are identical by construction; speedups are over the heap.\n\n{}",
        t.render()
    )
}

/// **E15 — extension: large-N scale sweep**. Events/sec on the
/// lazy-quorum uncontended engine workload (100 requests cycling
/// through the grid, timer-wheel scheduler) and nanoseconds per
/// protocol step in a synchronous uncontended round, as N grows from
/// the paper's scale (9) to 10⁵. The engine column is the cost of the
/// whole machine — scheduler, payload slab, transport, metrics; the
/// ns/step column isolates the protocol state machine over the
/// hot/cold-split struct. Timed sequentially, like the E12 ablation.
pub fn scale_sweep() -> String {
    use qmx_sim::SchedulerKind;
    use std::time::Instant;
    let mut t = Table::new(["N", "K", "events", "events/sec", "ns/step"]);
    for &n in &[9usize, 100, 1_000, 10_000, 100_000] {
        let sweep = |iters: usize| {
            crate::micro::large_n_sim_run(n, 100, SchedulerKind::Wheel); // warm-up
            let start = Instant::now();
            for _ in 0..iters {
                crate::micro::large_n_sim_run(n, 100, SchedulerKind::Wheel);
            }
            start.elapsed().as_secs_f64() / iters as f64
        };
        let events = crate::micro::large_n_sim_run(n, 100, SchedulerKind::Wheel);
        let rate = events as f64 / sweep(if n >= 10_000 { 2 } else { 5 });

        let mut sites = crate::micro::lazy_grid_sites(n);
        let steps = crate::micro::full_round(&mut sites, 0);
        let round_iters = if n >= 10_000 { 20 } else { 500 };
        let start = Instant::now();
        for _ in 0..round_iters {
            crate::micro::full_round(&mut sites, 0);
        }
        let ns_per_step = start.elapsed().as_secs_f64() * 1e9 / (round_iters as f64 * steps as f64);
        let k = {
            use qmx_core::QuorumSource;
            qmx_quorum::GridQuorumSource::new(n)
                .quorum_avoiding(qmx_core::SiteId(0), &std::collections::BTreeSet::new())
                .expect("no failures: quorum exists")
                .len()
        };
        t.row([
            n.to_string(),
            k.to_string(),
            events.to_string(),
            format!("{rate:.0}"),
            format!("{ns_per_step:.0}"),
        ]);
    }
    format!(
        "Large-N scale sweep: lazy grid quorums, wheel scheduler (E15, engineering)\n\
         K = grid quorum size of site 0; events/sec is the full engine,\n\
         ns/step the bare protocol state machine.\n\n{}",
        t.render()
    )
}

/// **E16 — extension: sharded lock space**. One site set serves `R`
/// independent named resources multiplexed over ONE reliable transport
/// and ONE failure detector per link ([`qmx_core::LockSpace`]). The
/// sweep scales `R` under zipfian popularity at a fixed arrival rate:
/// per-resource fairness tracks the skew, while the heartbeat column —
/// a pure per-link cost — stays flat as `R` grows 64-fold. That flat
/// column *is* the multiplexing claim: a per-resource detector would
/// scale it linearly with `R`.
pub fn lockspace_scaling() -> String {
    use qmx_workload::arrival::ResourceMix;
    const N: usize = 9;
    let cells: Vec<(u32, f64)> = vec![(1, 0.0), (4, 0.8), (16, 0.8), (64, 0.8), (64, 0.0)];
    let reports = par_map(cells.clone(), |(resources, zipf)| {
        Scenario {
            arrivals: ArrivalProcess::Poisson { mean_gap: 8 * T },
            horizon: 400 * T,
            transport: Some(qmx_core::TransportConfig::default()),
            detector: Some(qmx_core::DetectorConfig::default()),
            mix: (resources > 1).then_some(ResourceMix::Zipf { resources, s: zipf }),
            seed: 16,
            ..base_scenario(N, Algorithm::DelayOptimal, QuorumSpec::Grid)
        }
        .run()
    });
    let mut t = Table::new([
        "R", "zipf", "done", "res hit", "res fair", "msgs/CS", "thr (/T)", "beats", "retrans",
    ]);
    for ((resources, zipf), r) in cells.iter().zip(reports) {
        t.row([
            resources.to_string(),
            f2(*zipf),
            r.completed.to_string(),
            r.resources.to_string(),
            opt2(r.resource_fairness),
            opt2(r.messages_per_cs),
            f2(r.throughput_per_t),
            r.detector.heartbeats_sent.to_string(),
            r.transport.retransmissions.to_string(),
        ]);
    }
    format!(
        "Sharded lock space: R resources over one site set (E16, extension)\n\
         N={N}, grid quorums, T={T}, Poisson gap 8T spread over R resources.\n\
         Heartbeats are per *link*, so the beats column stays flat as R\n\
         grows; per-resource fairness reflects the zipf popularity skew.\n\n{}",
        t.render()
    )
}

/// **E9 — ablation**: the forwarding mechanism is the entire delay win.
pub fn ablation(n: usize) -> String {
    let mut pair = par_map(
        vec![Algorithm::DelayOptimal, Algorithm::DelayOptimalNoForwarding],
        |alg| heavy_load(n, alg, QuorumSpec::Grid, 7),
    )
    .into_iter();
    let (with, without) = (
        pair.next().expect("with run"),
        pair.next().expect("without run"),
    );
    let mut t = Table::new(["variant", "sync delay (T)", "msgs/CS", "throughput (/T)"]);
    t.row([
        "forwarding ON (the paper)".to_string(),
        opt2(with.sync_delay_t),
        opt2(with.messages_per_cs),
        f2(with.throughput_per_t),
    ]);
    t.row([
        "forwarding OFF (Maekawa-style)".to_string(),
        opt2(without.sync_delay_t),
        opt2(without.messages_per_cs),
        f2(without.throughput_per_t),
    ]);
    format!(
        "Ablation: disable transfer/forwarding in the same code base, N={n} (E9)\n\n{}",
        t.render()
    )
}

/// **E13 — partition availability**: how much service survives *during*
/// an asymmetric partition, §6 quorum reconstruction vs waiting the cut
/// out on retransmissions.
///
/// Each row cuts a set of directed links at `t = 25T` and heals them at
/// `t = 55T` under sustained periodic load (every site requests every
/// 30T). The `detector` variant runs the full heartbeat stack: a
/// requester comes to suspect exactly the peers it cannot exchange
/// messages with — silence covers a severed inbound link, the suspicion
/// echo covers a severed outbound one — and re-routes its majority
/// quorum around them, so demand arriving mid-partition is served
/// mid-partition (or parked and served at the heal, when the requester's
/// side holds no majority). The `transport-only` variant has no failure
/// detector: a request that needs a cut link just waits for the heal,
/// bridged by retransmission backoff — and a site still stuck waiting
/// when its next scheduled request comes due swallows that arrival, so
/// deferred availability shows up as *lost* demand, not just latency.
pub fn partition_availability() -> String {
    const N: usize = 5;
    let mut split = Vec::new();
    for a in 0..2u32 {
        for b in 2..N as u32 {
            split.push((a, b));
            split.push((b, a));
        }
    }
    let shapes: Vec<(&'static str, Vec<(u32, u32)>)> = vec![
        ("none", Vec::new()),
        ("one-way 1->2", vec![(1, 2)]),
        ("bridge-in ->0", (1..N as u32).map(|x| (x, 0)).collect()),
        ("bridge-out 0->", (1..N as u32).map(|x| (0, x)).collect()),
        ("split {0,1}|{2,3,4}", split),
    ];
    let mut cells = Vec::new();
    for (label, links) in &shapes {
        for detector in [true, false] {
            if links.is_empty() && !detector {
                continue; // one clean baseline row is enough
            }
            cells.push((*label, links.clone(), detector));
        }
    }
    let arrivals = || ArrivalProcess::Periodic {
        period: 30 * T,
        stagger: T,
    };
    let need = arrivals().generate(N, 240 * T, 0).len();
    let reports = par_map(cells.clone(), move |(_, links, detector)| {
        Scenario {
            n: N,
            algorithm: Algorithm::DelayOptimalFtMajority,
            quorum: QuorumSpec::Majority,
            arrivals: arrivals(),
            horizon: 240 * T,
            cuts: links
                .iter()
                .map(|&(f, t)| (SiteId(f), SiteId(t), 25 * T))
                .collect(),
            link_restores: links
                .iter()
                .map(|&(f, t)| (SiteId(f), SiteId(t), 55 * T))
                .collect(),
            transport: Some(qmx_core::TransportConfig::default()),
            detector: detector.then(qmx_core::DetectorConfig::default),
            // The transport-only variant really means *no* failure
            // detection: without this the oracle turns each cut into a
            // permanent perceived crash at the hearing side (no rejoin
            // exists in the oracle model), wedging the run.
            oracle_notices: Some(false),
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(E),
            ..Scenario::default()
        }
        .run()
    });
    let mut t = Table::new([
        "partition",
        "variant",
        "done/need",
        "wait (T)",
        "p99 resp (T)",
        "part-drop",
        "susp",
        "recip",
    ]);
    for ((label, _, detector), r) in cells.iter().zip(reports) {
        t.row([
            (*label).to_string(),
            if *detector {
                "detector"
            } else {
                "transport-only"
            }
            .to_string(),
            format!("{}/{}", r.completed, need),
            opt2(r.waiting_time_t),
            opt2(r.response_p99_t),
            r.partition_drops.to_string(),
            r.detector.suspicions.to_string(),
            r.detector.reciprocal_suspicions.to_string(),
        ]);
    }
    format!(
        "Partition availability: directed cuts 25T..55T under periodic load (E13, §6)\n\
         N={N}, rotating majorities, T={T}. The detector variant routes quorums\n\
         around unreachable peers (suspicion by silence or by echo) and parks\n\
         demand that has no live majority until the heal; the transport-only\n\
         variant waits every cut out on retransmission backoff.\n\n{}",
        t.render()
    )
}

/// **E14 — abort availability**: tail latency and served demand with vs
/// without deadline-triggered aborts under contention plus a mid-run
/// partition.
///
/// Every row runs sustained periodic load (each site requests every 30T)
/// with directed cuts at `t = 25T` healing at `t = 55T` on the full
/// detector stack. The `park` variant is PR-6 behaviour: a request that
/// cannot assemble its quorum waits the cut out, so its response time
/// absorbs the whole partition and p99 explodes. The `abort` variant
/// arms an 8T deadline: wedged requests withdraw cleanly (their demand is
/// lost, but nothing waits). The `abort+retry` variant re-issues each
/// aborted request with jittered exponential backoff, recovering the
/// lost demand once the heal lands while still bounding the tail — the
/// paper's waiting-time analysis (§5) holds per *attempt*, and the
/// closed-loop client turns one unbounded wait into several bounded
/// ones.
pub fn abort_availability() -> String {
    const N: usize = 5;
    let mut split = Vec::new();
    for a in 0..2u32 {
        for b in 2..N as u32 {
            split.push((a, b));
            split.push((b, a));
        }
    }
    let shapes: Vec<(&'static str, Vec<(u32, u32)>)> = vec![
        ("none", Vec::new()),
        ("bridge-in ->0", (1..N as u32).map(|x| (x, 0)).collect()),
        ("split {0,1}|{2,3,4}", split),
    ];
    let retry = qmx_sim::RetryPolicy {
        base: 2 * T,
        cap: 16 * T,
        max_attempts: 8,
    };
    let variants: [(&'static str, Option<u64>, Option<qmx_sim::RetryPolicy>); 3] = [
        ("park", None, None),
        ("abort", Some(8 * T), None),
        ("abort+retry", Some(8 * T), Some(retry)),
    ];
    let mut cells = Vec::new();
    for (label, links) in &shapes {
        for (vlabel, deadline, retry) in variants {
            cells.push((*label, links.clone(), vlabel, deadline, retry));
        }
    }
    let arrivals = || ArrivalProcess::Periodic {
        period: 30 * T,
        stagger: T,
    };
    let need = arrivals().generate(N, 240 * T, 0).len();
    let reports = par_map(cells.clone(), move |(_, links, _, deadline, retry)| {
        Scenario {
            n: N,
            algorithm: Algorithm::DelayOptimalFtMajority,
            quorum: QuorumSpec::Majority,
            arrivals: arrivals(),
            horizon: 240 * T,
            cuts: links
                .iter()
                .map(|&(f, t)| (SiteId(f), SiteId(t), 25 * T))
                .collect(),
            link_restores: links
                .iter()
                .map(|&(f, t)| (SiteId(f), SiteId(t), 55 * T))
                .collect(),
            transport: Some(qmx_core::TransportConfig::default()),
            detector: Some(qmx_core::DetectorConfig::default()),
            deadline,
            retry,
            delay: DelayModel::Constant(T),
            hold: DelayModel::Constant(E),
            ..Scenario::default()
        }
        .run()
    });
    let mut t = Table::new([
        "partition",
        "variant",
        "done/need",
        "wait (T)",
        "p99 resp (T)",
        "abort",
        "retry",
        "orphan",
    ]);
    for ((label, _, vlabel, ..), r) in cells.iter().zip(reports) {
        t.row([
            (*label).to_string(),
            (*vlabel).to_string(),
            format!("{}/{}", r.completed, need),
            opt2(r.waiting_time_t),
            opt2(r.response_p99_t),
            r.aborts.aborts.to_string(),
            r.retries.to_string(),
            r.aborts.orphan_grants.to_string(),
        ]);
    }
    format!(
        "Abort availability: deadline/abort/retry vs parking under directed cuts\n\
         25T..55T (E14, §5-§6). N={N}, rotating majorities, T={T}, deadline 8T,\n\
         backoff 2T..16T. Parking absorbs the partition into p99; aborting bounds\n\
         the tail; retry-with-backoff recovers the aborted demand at the heal.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_matches_3k_minus_1() {
        let r = light_load(9, Algorithm::DelayOptimal, QuorumSpec::Grid, 42);
        assert!(r.completed >= 10);
        let k = r.quorum_size;
        let m = r.messages_per_cs.expect("completions");
        // Allow a small contention margin over the exact 3(K-1).
        assert!(
            (m - 3.0 * (k - 1.0)).abs() < 1.5,
            "light-load msgs/CS {m:.2} vs 3(K-1) = {:.2}",
            3.0 * (k - 1.0)
        );
        // Response time 2T + E.
        let resp = r.response_time_t.expect("completions");
        assert!(
            (resp - 2.1).abs() < 0.4,
            "light-load response {resp:.2}T vs expected 2.1T"
        );
    }

    #[test]
    fn heavy_load_within_paper_envelope() {
        let r = heavy_load(9, Algorithm::DelayOptimal, QuorumSpec::Grid, 43);
        let k = r.quorum_size;
        let m = r.messages_per_cs.expect("completions");
        assert!(
            m <= 6.0 * (k - 1.0) + 2.0,
            "heavy-load msgs/CS {m:.2} above 6(K-1)+slack"
        );
        assert!(m >= 3.0 * (k - 1.0) - 1.0);
        let d = r.sync_delay_t.expect("contended");
        assert!(d < 1.4, "sync delay {d:.2}T should approach T");
    }

    #[test]
    fn maekawa_heavy_sync_delay_is_2t() {
        let r = heavy_load(9, Algorithm::Maekawa, QuorumSpec::Grid, 44);
        let d = r.sync_delay_t.expect("contended");
        assert!(d > 1.6, "maekawa sync delay {d:.2}T should approach 2T");
    }

    #[test]
    fn ablation_restores_2t() {
        let r = heavy_load(9, Algorithm::DelayOptimalNoForwarding, QuorumSpec::Grid, 45);
        let d = r.sync_delay_t.expect("contended");
        assert!(
            d > 1.6,
            "no-forwarding sync delay {d:.2}T should approach 2T"
        );
    }

    #[test]
    fn reports_render() {
        // Smoke-test the cheap text reports.
        assert!(quorum_sizes().contains("grid"));
        assert!(availability_curves().contains("0.90"));
    }

    /// E16's headline claim: heartbeats are a per-link cost, so running
    /// 64 resources instead of 1 over the same sites and horizon must
    /// NOT scale the heartbeat count (a per-resource detector would
    /// multiply it 64-fold).
    #[test]
    fn lockspace_heartbeats_do_not_scale_with_resources() {
        use qmx_workload::arrival::ResourceMix;
        let run = |resources: u32| {
            Scenario {
                arrivals: ArrivalProcess::Poisson { mean_gap: 8 * T },
                horizon: 400 * T,
                transport: Some(qmx_core::TransportConfig::default()),
                detector: Some(qmx_core::DetectorConfig::default()),
                mix: (resources > 1).then_some(ResourceMix::Zipf { resources, s: 0.8 }),
                seed: 16,
                ..base_scenario(9, Algorithm::DelayOptimal, QuorumSpec::Grid)
            }
            .run()
        };
        let solo = run(1);
        let sharded = run(64);
        assert!(sharded.completed > 0 && solo.completed > 0);
        assert!(sharded.resources > 8, "zipf load spread too narrow");
        let (b1, b64) = (
            solo.detector.heartbeats_sent,
            sharded.detector.heartbeats_sent,
        );
        assert!(b1 > 0, "detector never beat");
        assert!(
            b64 < b1 * 2,
            "heartbeats scaled with resources: {b64} vs {b1} — the \
             detector is no longer shared per link"
        );
    }

    /// E14's headline claim: under a partition, retry-with-backoff bounds
    /// the p99 response tail that parking absorbs, while still serving
    /// (at least nearly) as much demand.
    #[test]
    fn abort_retry_bounds_p99_under_partition() {
        const N: usize = 5;
        let cell = |deadline: Option<u64>, retry: Option<qmx_sim::RetryPolicy>| {
            Scenario {
                n: N,
                algorithm: Algorithm::DelayOptimalFtMajority,
                quorum: QuorumSpec::Majority,
                arrivals: ArrivalProcess::Periodic {
                    period: 30 * T,
                    stagger: T,
                },
                horizon: 240 * T,
                cuts: (1..N as u32)
                    .map(|x| (SiteId(x), SiteId(0), 25 * T))
                    .collect(),
                link_restores: (1..N as u32)
                    .map(|x| (SiteId(x), SiteId(0), 55 * T))
                    .collect(),
                transport: Some(qmx_core::TransportConfig::default()),
                detector: Some(qmx_core::DetectorConfig::default()),
                deadline,
                retry,
                delay: DelayModel::Constant(T),
                hold: DelayModel::Constant(E),
                ..Scenario::default()
            }
            .run()
        };
        let park = cell(None, None);
        let retry = cell(
            Some(8 * T),
            Some(qmx_sim::RetryPolicy {
                base: 2 * T,
                cap: 16 * T,
                max_attempts: 8,
            }),
        );
        assert!(retry.aborts.aborts > 0, "the partition must force aborts");
        assert!(retry.retries > 0, "aborted requests must re-issue");
        let p_park = park.response_p99_t.expect("park completes requests");
        let p_retry = retry.response_p99_t.expect("retry completes requests");
        assert!(
            p_retry < p_park,
            "retry must bound the tail: p99 {p_retry:.2}T (retry) vs {p_park:.2}T (park)"
        );
        assert!(
            retry.completed * 10 >= park.completed * 8,
            "bounding the tail must not cost the bulk of the demand: {} vs {}",
            retry.completed,
            park.completed
        );
    }
}
