//! # qmx-bench
//!
//! Experiment harness for reproducing the paper's tables and figures.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod jobs;
pub mod micro;
pub mod report;
