//! Shared micro-benchmark drivers: synchronous protocol rounds and
//! contended simulator runs, instrumented with step/event counts so
//! callers can report per-step and per-event rates. Used by both the
//! Criterion benches and the `benchjson` trajectory writer.

use qmx_baselines::Maekawa;
use qmx_core::{Config, DelayOptimal, Effects, Protocol, SiteId};
use qmx_quorum::grid::grid_system;
use qmx_quorum::GridQuorumSource;
use qmx_sim::{DelayModel, SchedulerKind, SimConfig, Simulator};
use std::collections::VecDeque;

/// Builds delay-optimal sites over grid quorums.
pub fn delay_optimal_sites(n: usize) -> Vec<DelayOptimal> {
    let sys = grid_system(n);
    (0..n)
        .map(|i| {
            DelayOptimal::new(
                SiteId(i as u32),
                sys.quorum_of(SiteId(i as u32)).to_vec(),
                Config::default(),
            )
        })
        .collect()
}

/// Builds Maekawa sites over grid quorums.
pub fn maekawa_sites(n: usize) -> Vec<Maekawa> {
    let sys = grid_system(n);
    (0..n)
        .map(|i| Maekawa::new(SiteId(i as u32), sys.quorum_of(SiteId(i as u32)).to_vec()))
        .collect()
}

/// Drives the instances synchronously until no message is in flight,
/// returning how many messages were handled.
fn settle<P: Protocol>(
    sites: &mut [P],
    inflight: &mut VecDeque<(SiteId, SiteId, P::Msg)>,
) -> usize {
    let mut steps = 0;
    while let Some((from, to, msg)) = inflight.pop_front() {
        let mut fx = Effects::new();
        sites[to.index()].handle(from, msg, &mut fx);
        steps += 1;
        for (t, m) in fx.take_sends() {
            inflight.push_back((to, t, m));
        }
    }
    steps
}

/// One uncontended CS round (request → replies → enter → release),
/// returning the number of protocol steps taken (message handlings plus
/// the request and release calls themselves).
pub fn full_round<P: Protocol>(sites: &mut [P], requester: usize) -> usize {
    let mut inflight = VecDeque::new();
    let mut fx = Effects::new();
    sites[requester].request_cs(&mut fx);
    let mut steps = 1;
    for (t, m) in fx.take_sends() {
        inflight.push_back((SiteId(requester as u32), t, m));
    }
    steps += settle(sites, &mut inflight);
    assert!(sites[requester].in_cs());
    sites[requester].release_cs(&mut fx);
    steps += 1;
    for (t, m) in fx.take_sends() {
        inflight.push_back((SiteId(requester as u32), t, m));
    }
    steps + settle(sites, &mut inflight)
}

/// Contended discrete-event run: every site requests each round, the CS
/// drains in arbitration order. Returns the number of simulator events
/// processed — the denominator for events/sec.
pub fn contended_sim_run(n: usize, rounds: u64) -> usize {
    contended_sim_run_with(n, rounds, SchedulerKind::default())
}

/// [`contended_sim_run`] pinned to one event-scheduler implementation,
/// for the heap-vs-calendar ablation rows. The event count is identical
/// for either kind (the scheduler determinism contract); only the wall
/// clock differs.
pub fn contended_sim_run_with(n: usize, rounds: u64, scheduler: SchedulerKind) -> usize {
    let mut sim = Simulator::new(
        delay_optimal_sites(n),
        SimConfig {
            delay: DelayModel::Exponential { mean: 1000 },
            hold: DelayModel::Constant(100),
            scheduler,
            ..SimConfig::default()
        },
    );
    let arrivals: Vec<(SiteId, u64)> = (0..rounds)
        .flat_map(|r| (0..n).map(move |i| (SiteId(i as u32), r * 5_000 + 17 * i as u64)))
        .collect();
    sim.schedule_requests(&arrivals);
    sim.run_to_quiescence(u64::MAX / 2)
}

/// Builds delay-optimal sites over *lazily* generated grid quorums: no
/// coterie is materialized, each site pulls its `O(√N)` quorum from a
/// [`GridQuorumSource`] at first use. The large-N counterpart of
/// [`delay_optimal_sites`].
pub fn lazy_grid_sites(n: usize) -> Vec<DelayOptimal> {
    (0..n)
        .map(|i| {
            DelayOptimal::with_lazy_quorum_source(
                SiteId(i as u32),
                Config::default(),
                Box::new(GridQuorumSource::new(n)),
            )
        })
        .collect()
}

/// Large-N engine run: `n` sites over lazily generated grid quorums,
/// `requesters` spread-out requests cycling through the grid. This is
/// the workload the timer wheel, the hot/cold protocol split, the
/// payload slab, and the lazy quorum sources exist for; the event count
/// is the deterministic denominator for the `engine_large/*` trajectory
/// rows.
pub fn large_n_sim_run(n: usize, requesters: u64, scheduler: SchedulerKind) -> usize {
    let mut sim = Simulator::new(
        lazy_grid_sites(n),
        SimConfig {
            delay: DelayModel::Exponential { mean: 1000 },
            hold: DelayModel::Constant(100),
            scheduler,
            seed: 41,
            ..SimConfig::default()
        },
    );
    for k in 0..requesters {
        sim.schedule_request(SiteId(((k * 997) % n as u64) as u32), k * 2_500);
    }
    sim.run_to_quiescence(u64::MAX / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_round_counts_steps() {
        let mut sites = delay_optimal_sites(9);
        let steps = full_round(&mut sites, 0);
        // Request + release + at least one message per quorum member
        // each way (grid quorum over 9 sites has K = 5).
        assert!(steps >= 2 + 2 * 4, "steps = {steps}");
        // The round left everyone idle: a second round works too.
        assert!(full_round(&mut sites, 3) >= 2 + 2 * 4);
    }

    #[test]
    fn large_n_run_is_scheduler_invariant() {
        let counts: Vec<usize> = [
            SchedulerKind::Heap,
            SchedulerKind::Calendar,
            SchedulerKind::Wheel,
        ]
        .into_iter()
        .map(|kind| large_n_sim_run(300, 10, kind))
        .collect();
        assert!(counts[0] > 10, "events = {}", counts[0]);
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "schedulers disagree: {counts:?}"
        );
    }

    #[test]
    fn contended_run_processes_events() {
        let events = contended_sim_run(9, 2);
        assert!(events > 9 * 2, "events = {events}");
        // Pure function of its inputs: repeatable count.
        assert_eq!(events, contended_sim_run(9, 2));
    }
}
