//! The rendered experiment reports must not depend on the worker count:
//! the fan-out hands results back in item order, so `--jobs 1` and
//! `--jobs N` produce byte-identical text.

use qmx_bench::experiments;

#[test]
fn reports_are_byte_identical_across_jobs() {
    // One test body (not several #[test]s) because the jobs knob is
    // process-global and the harness runs tests concurrently.
    let mut renders = Vec::new();
    for jobs in [1usize, 3] {
        qmx_workload::parallel::set_jobs(jobs);
        renders.push((experiments::table1(9), experiments::ablation(9)));
    }
    qmx_workload::parallel::set_jobs(0);
    assert_eq!(renders[0], renders[1], "worker count changed a report");
}
