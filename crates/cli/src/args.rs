//! Hand-rolled argument parsing (no external dependency): `--key value`
//! flags after a subcommand.

use qmx_sim::{DelayModel, SchedulerKind};
use qmx_workload::scenario::{Algorithm, QuorumSpec};
use std::collections::BTreeMap;
use std::fmt;

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to execute.
    pub command: Command,
}

/// Subcommands of `qmxctl`.
// One `Command` is parsed per process; the size skew of the fully
// optioned `Run` variant is irrelevant and boxing it would only add
// noise at every match site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one simulation scenario and print the report.
    Run {
        /// Algorithm under test.
        algorithm: Algorithm,
        /// Number of sites.
        n: usize,
        /// Quorum construction.
        quorum: QuorumSpec,
        /// Poisson mean inter-arrival gap, in units of T (0 = saturated).
        gap_t: u64,
        /// Arrival window in units of T.
        horizon_t: u64,
        /// Message delay model.
        delay: DelayModel,
        /// CS hold in ticks.
        hold: u64,
        /// Seed.
        seed: u64,
        /// Crashes as `site:time_t` pairs.
        crashes: Vec<(u32, u64)>,
        /// I.i.d. message-drop probability per link.
        loss: f64,
        /// Message-duplication probability per link.
        dup: f64,
        /// Burst (Gilbert–Elliott) loss `p_bad:p_good:drop_good:drop_bad`;
        /// overrides `loss` when present.
        burst: Option<(f64, f64, f64, f64)>,
        /// One-directional link outages as `from:to:start_t:end_t`.
        outages: Vec<(u32, u32, u64, u64)>,
        /// Partitions as `(group-id per site, time_t)` pairs.
        partitions: Vec<(Vec<u32>, u64)>,
        /// Times (in T units) at which the current partition heals.
        heals: Vec<u64>,
        /// Directed link cuts as `from:to:timeT` triples.
        cuts: Vec<(u32, u32, u64)>,
        /// Directed link restorations as `from:to:timeT` triples.
        link_restores: Vec<(u32, u32, u64)>,
        /// Flapping links as `from:to:startT:periodT:count`: `count`
        /// cut/heal pairs, each cut at `start + k*period` healing half a
        /// period later.
        flaps: Vec<(u32, u32, u64, u64, u32)>,
        /// Reliable-transport wrapper: `None` = auto (on iff faults are
        /// configured), `Some(b)` = forced on/off.
        reliable: Option<bool>,
        /// Heartbeat interval in T units (enables the failure detector).
        hb_interval_t: Option<u64>,
        /// Heartbeat silence threshold in T units (enables the detector).
        hb_timeout_t: Option<u64>,
        /// Recoveries as `site:time_t` pairs (each enables the detector:
        /// rejoin needs the heartbeat handshake, not the oracle).
        recoveries: Vec<(u32, u64)>,
        /// Event-scheduler implementation (`heap`, `calendar`, or
        /// `wheel`); the report is byte-identical under all three, only
        /// wall clock differs.
        scheduler: SchedulerKind,
        /// Per-request deadline in T units: requests abort (withdraw from
        /// every arbiter) once they wait this long. `None` = no deadlines.
        deadline_t: Option<u64>,
        /// Retry of aborted requests as `(baseT, capT, max_attempts)`:
        /// jittered exponential backoff. Requires `deadline_t`.
        retry_backoff: Option<(u64, u64, u32)>,
        /// Number of named resources in every site's lock space (1 = the
        /// classic single implicit lock, no lock-space layer).
        resources: u32,
        /// Zipf skew of resource popularity (0 = uniform). Only
        /// meaningful with `resources > 1`.
        zipf: f64,
    },
    /// Print a quorum system and its properties.
    Quorum {
        /// Construction name.
        kind: QuorumSpec,
        /// Number of sites.
        n: usize,
    },
    /// Exhaustively model-check the delay-optimal protocol.
    Check {
        /// Number of sites (full quorums).
        n: u32,
        /// CS rounds per site.
        rounds: u32,
        /// State cap.
        max_states: usize,
        /// Quorum construction (`None` = one full all-sites quorum).
        quorum: Option<QuorumSpec>,
        /// Fault budget: silent crashes.
        crashes: u32,
        /// Fault budget: recoveries of crashed sites.
        recoveries: u32,
        /// Fault budget: messages dropped from channel heads.
        drops: u32,
        /// Fault budget: false suspicions of live sites.
        suspicions: u32,
        /// Fault budget: directed link cuts (delivery embargoes).
        cuts: u32,
        /// Fault budget: restorations of cut links.
        restores: u32,
        /// Fault budget: client-side request aborts.
        aborts: u32,
        /// Parallel subtree fan-out width (1 = sequential).
        jobs: usize,
        /// File to write a counterexample trace to on failure.
        trace_out: Option<String>,
    },
    /// Reproduce one of the paper's experiments (E1–E10).
    Experiment {
        /// Experiment name (`table1`, `lightload`, …).
        name: String,
        /// Worker threads for the experiment fan-out (0 = auto-detect).
        jobs: usize,
    },
    /// Serve one site of a live networked cluster.
    Serve {
        /// This site's id (`0..sites`).
        site: u32,
        /// Cluster size.
        sites: u32,
        /// Address to listen on (`host:port` for tcp, a path for uds).
        listen: String,
        /// Peer addresses as `(site, addr)`; one entry per other site.
        peers: Vec<(u32, String)>,
        /// Socket flavour.
        transport: WireTransport,
        /// Reply-forwarding (`false` = the `2T` arbiter-mediated baseline).
        forwarding: bool,
        /// §6 quorum reconstruction on suspicion/failure.
        reconstruct: bool,
        /// Crash-recovery incarnation (`>0` announces a rejoin).
        incarnation: u64,
        /// Exit after this many milliseconds (`None` = serve until killed).
        for_ms: Option<u64>,
    },
    /// Drive open-loop load at a live cluster and print latency percentiles.
    BenchLoad {
        /// Site addresses; virtual clients attach round-robin.
        addrs: Vec<String>,
        /// Socket flavour.
        transport: WireTransport,
        /// Virtual client count.
        clients: usize,
        /// Distinct resources.
        resources: u32,
        /// Measured run length, milliseconds.
        duration_ms: u64,
        /// Mean exponential think time, milliseconds.
        think_ms: u64,
        /// Lock hold time, milliseconds.
        hold_ms: u64,
        /// Per-acquire wait budget, milliseconds (`None` = wait forever).
        wait_ms: Option<u64>,
        /// Zipf skew of resource popularity (0 = uniform).
        zipf: f64,
        /// RNG seed.
        seed: u64,
        /// Report label.
        label: String,
        /// Also write the rendered report to this file.
        out: Option<String>,
    },
    /// Print usage.
    Help,
}

/// Which socket family the live runtime commands use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireTransport {
    /// TCP; addresses are `host:port`.
    Tcp,
    /// Unix-domain sockets; addresses are filesystem paths.
    Uds,
}

/// Usage text.
pub const USAGE: &str = "\
qmxctl — delay-optimal quorum mutual exclusion toolbox

USAGE:
  qmxctl run [--alg A] [--n N] [--quorum Q] [--gap G] [--horizon H]
             [--delay D] [--hold E] [--seed S] [--crash site:timeT ...]
             [--loss P] [--dup P] [--burst PB:PG:DG:DB]
             [--outage from:to:startT:endT ...]
             [--partition g0,g1,..:timeT ...] [--heal timeT ...]
             [--cut from:to:timeT ...] [--restore from:to:timeT ...]
             [--flap from:to:startT:periodT:count ...]
             [--reliable on|off|auto]
             [--hb-interval T] [--hb-timeout T] [--recover site:timeT ...]
             [--deadline T] [--retry-backoff baseT:capT:attempts]
             [--resources R] [--zipf S]
             [--scheduler heap|calendar|wheel]
  qmxctl quorum --kind Q --n N
  qmxctl check [--n N] [--rounds R] [--max-states M] [--quorum Q]
               [--crashes C] [--recoveries C] [--drops C] [--suspicions C]
               [--cuts C] [--restores C] [--aborts C] [--jobs J]
               [--trace-out FILE]
  qmxctl experiment NAME [--jobs J]
  qmxctl serve --site I --sites N --listen ADDR --peer SITE=ADDR ...
               [--transport tcp|uds] [--forwarding on|off]
               [--reconstruct on|off] [--incarnation K] [--for-ms MS]
  qmxctl bench-load --addr ADDR ... [--transport tcp|uds] [--clients C]
               [--resources R] [--duration-ms MS] [--think-ms MS]
               [--hold-ms MS] [--wait-ms MS] [--zipf S] [--seed S]
               [--label TEXT] [--out FILE]
  qmxctl help

WHERE:
  A = delay-optimal | no-forwarding | ft-tree | ft-majority | maekawa |
      lamport | ricart-agrawala | carvalho-roucairol | suzuki-kasami |
      raymond | singhal
  Q = grid | fpp | tree | hqc | majority | wheel | wall | all |
      gridset:G | rst:G
  G = mean Poisson gap in T units (0 = saturated load)
  D = const:TICKS | uniform:LO:HI | exp:MEAN
  P = probability in [0,1]; --burst takes Gilbert-Elliott parameters
      (good->bad prob, bad->good prob, drop prob per state)
  --cut severs one *directed* link at the given time (messages from
      `from` to `to` are dropped at the source); --restore heals it.
      --flap schedules `count` cut/heal pairs on one link, each cut at
      start + k*period and healed half a period later. Compose --cut
      pairs for a symmetric partition; a lone direction is an
      asymmetric partition (A hears B, B does not hear A)
  --reliable auto (default) wraps sites in the ack/retransmit transport
      whenever --loss/--dup/--burst/--outage/--cut/--flap are present
  --hb-interval/--hb-timeout/--recover switch failure detection from the
      oracle to heartbeats (suspicion from silence, crash recovery via
      the rejoin handshake); intervals are in T units
  --deadline bounds every request's wait: once it expires the client
      aborts, withdrawing the request from every arbiter it reached.
      --retry-backoff re-issues aborted requests with jittered
      exponential backoff (base doubles per attempt up to cap, both in
      T units, at most `attempts` retries); it needs --deadline, since
      nothing aborts without one
  --resources R > 1 runs a sharded lock space: every site multiplexes R
      independent named locks over ONE reliable transport and ONE
      failure detector per link; arrivals are spread over the resources
      by a deterministic draw. --zipf S skews resource popularity
      (Zipf exponent; 0 = uniform, 1 = classic heavy head). Requires
      --alg delay-optimal or no-forwarding; the report gains resource
      count and per-resource fairness lines
  --scheduler picks the event-queue implementation (default: calendar,
      or the QMX_SCHEDULER env var); reports are byte-identical for
      every choice — only wall-clock time differs
  check explores every interleaving of the scope with dynamic
      partial-order reduction; fault budgets add Crash/Recover/Drop and
      failure-detector verdict transitions (--suspicions bounds *false*
      suspicions of live sites; true suspicions of crashed sites are
      free). --cuts/--restores budget directed link cuts: a cut S->T
      embargoes delivery on that link (sends still queue, FIFO order is
      kept) until a restore lifts it — keep restores >= cuts so every
      branch can heal. --aborts budgets client-side request aborts
      (abort_cs), explored against every crash/drop/partition
      interleaving. --quorum overrides the default full (all-sites) quorum,
      --jobs fans independent subtrees out in parallel, and --trace-out
      writes the counterexample action trace on failure
  NAME = table1 | lightload | heavyload | syncdelay | throughput |
         quorumsize | availability | faulttolerance | ablation |
         holdsweep | msgscaling | schedulers | scalesweep | partitions |
         abortavail | lockspace
  J = worker threads for the experiment fan-out (0 or absent = auto);
      reports are identical for every J — runs are pure per (scenario,
      seed) and rows are assembled in parameter order
  serve runs ONE site of a live cluster over real sockets: the same
      Detector<Reliable<LockSpace<DelayOptimal>>> stack the simulator
      models, behind a framed wire protocol. Give every other site's
      address via repeated --peer SITE=ADDR. --forwarding off serves the
      2T arbiter-mediated baseline (the paper's comparison point);
      --reconstruct off pins the fixed ring-majority quorum instead of
      rebuilding it around suspected sites. --for-ms bounds the run for
      scripted smoke tests; without it the process serves until killed
  bench-load drives C virtual clients (round-robin over the --addr list)
      through think/acquire/hold/release cycles with exponential think
      times and zipfian resource choice, then prints per-resource
      acquire-latency percentiles and the wire-level handover (sync
      delay) distribution. --wait-ms 0 waits forever; --out also writes
      the report to a file
";

fn parse_algorithm(s: &str) -> Result<Algorithm, ParseError> {
    Ok(match s {
        "delay-optimal" => Algorithm::DelayOptimal,
        "no-forwarding" => Algorithm::DelayOptimalNoForwarding,
        "ft-tree" => Algorithm::DelayOptimalFtTree,
        "ft-majority" => Algorithm::DelayOptimalFtMajority,
        "maekawa" => Algorithm::Maekawa,
        "lamport" => Algorithm::Lamport,
        "ricart-agrawala" => Algorithm::RicartAgrawala,
        "suzuki-kasami" => Algorithm::SuzukiKasami,
        "raymond" => Algorithm::Raymond,
        "singhal" => Algorithm::SinghalDynamic,
        "carvalho-roucairol" => Algorithm::CarvalhoRoucairol,
        other => return err(format!("unknown algorithm '{other}'")),
    })
}

fn parse_quorum(s: &str) -> Result<QuorumSpec, ParseError> {
    if let Some(g) = s.strip_prefix("gridset:") {
        let g = g
            .parse()
            .map_err(|_| ParseError(format!("bad group size in '{s}'")))?;
        return Ok(QuorumSpec::GridSet(g));
    }
    if let Some(g) = s.strip_prefix("rst:") {
        let g = g
            .parse()
            .map_err(|_| ParseError(format!("bad group size in '{s}'")))?;
        return Ok(QuorumSpec::Rst(g));
    }
    Ok(match s {
        "grid" => QuorumSpec::Grid,
        "fpp" => QuorumSpec::Fpp,
        "tree" => QuorumSpec::Tree,
        "hqc" => QuorumSpec::Hqc,
        "majority" => QuorumSpec::Majority,
        "wheel" => QuorumSpec::Wheel,
        "wall" => QuorumSpec::Wall,
        "all" => QuorumSpec::All,
        other => return err(format!("unknown quorum construction '{other}'")),
    })
}

fn parse_delay(s: &str) -> Result<DelayModel, ParseError> {
    let parts: Vec<&str> = s.split(':').collect();
    let num = |x: &str| -> Result<u64, ParseError> {
        x.parse()
            .map_err(|_| ParseError(format!("bad number in delay '{s}'")))
    };
    match parts.as_slice() {
        ["const", t] => Ok(DelayModel::Constant(num(t)?)),
        ["exp", m] => Ok(DelayModel::Exponential { mean: num(m)? }),
        ["uniform", lo, hi] => Ok(DelayModel::Uniform {
            lo: num(lo)?,
            hi: num(hi)?,
        }),
        _ => err(format!(
            "unknown delay model '{s}' (const:T | uniform:LO:HI | exp:MEAN)"
        )),
    }
}

fn parse_wire(s: &str) -> Result<WireTransport, ParseError> {
    match s {
        "tcp" => Ok(WireTransport::Tcp),
        "uds" => Ok(WireTransport::Uds),
        other => err(format!("--transport wants tcp|uds, got '{other}'")),
    }
}

fn flags(args: &[String]) -> Result<BTreeMap<String, Vec<String>>, ParseError> {
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            return err(format!("expected --flag, got '{}'", args[i]));
        };
        let Some(value) = args.get(i + 1) else {
            return err(format!("--{key} needs a value"));
        };
        map.entry(key.to_string()).or_default().push(value.clone());
        i += 2;
    }
    Ok(map)
}

fn one<'a>(map: &'a BTreeMap<String, Vec<String>>, key: &str, default: &'a str) -> &'a str {
    map.get(key)
        .and_then(|v| v.last())
        .map_or(default, String::as_str)
}

fn parse_prob(map: &BTreeMap<String, Vec<String>>, key: &str) -> Result<f64, ParseError> {
    let s = one(map, key, "0");
    let p: f64 = s
        .parse()
        .map_err(|_| ParseError(format!("--{key} must be a probability, got '{s}'")))?;
    if !(0.0..=1.0).contains(&p) {
        return err(format!("--{key} must be in [0,1], got {p}"));
    }
    Ok(p)
}

fn parse_u64(
    map: &BTreeMap<String, Vec<String>>,
    key: &str,
    default: u64,
) -> Result<u64, ParseError> {
    one(map, key, "").is_empty().then_some(default).map_or_else(
        || {
            one(map, key, "")
                .parse()
                .map_err(|_| ParseError(format!("--{key} must be a number")))
        },
        Ok,
    )
}

impl Cli {
    /// Parses a full argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first problem found.
    pub fn parse<I, S>(args: I) -> Result<Cli, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let args: Vec<String> = args.into_iter().map(Into::into).collect();
        let Some((cmd, rest)) = args.split_first() else {
            return Ok(Cli {
                command: Command::Help,
            });
        };
        let command = match cmd.as_str() {
            "help" | "--help" | "-h" => Command::Help,
            "run" => {
                let f = flags(rest)?;
                let site_time = |flag: &str, c: &str| -> Result<(u32, u64), ParseError> {
                    let Some((site, t)) = c.split_once(':') else {
                        return err(format!("--{flag} wants site:timeT, got '{c}'"));
                    };
                    let site = site
                        .parse()
                        .map_err(|_| ParseError(format!("bad site in '{c}'")))?;
                    let t = t
                        .parse()
                        .map_err(|_| ParseError(format!("bad time in '{c}'")))?;
                    Ok((site, t))
                };
                let mut crashes = Vec::new();
                for c in f.get("crash").into_iter().flatten() {
                    crashes.push(site_time("crash", c)?);
                }
                let mut recoveries = Vec::new();
                for c in f.get("recover").into_iter().flatten() {
                    recoveries.push(site_time("recover", c)?);
                }
                let mut outages = Vec::new();
                for o in f.get("outage").into_iter().flatten() {
                    let parts: Vec<&str> = o.split(':').collect();
                    let [from, to, start, end] = parts.as_slice() else {
                        return err(format!("--outage wants from:to:startT:endT, got '{o}'"));
                    };
                    let num = |x: &str| -> Result<u64, ParseError> {
                        x.parse()
                            .map_err(|_| ParseError(format!("bad number in outage '{o}'")))
                    };
                    outages.push((num(from)? as u32, num(to)? as u32, num(start)?, num(end)?));
                }
                let mut partitions = Vec::new();
                for p in f.get("partition").into_iter().flatten() {
                    let Some((groups, t)) = p.rsplit_once(':') else {
                        return err(format!("--partition wants g0,g1,..:timeT, got '{p}'"));
                    };
                    let groups: Result<Vec<u32>, _> = groups.split(',').map(str::parse).collect();
                    let Ok(groups) = groups else {
                        return err(format!("bad group ids in partition '{p}'"));
                    };
                    let t = t
                        .parse()
                        .map_err(|_| ParseError(format!("bad time in partition '{p}'")))?;
                    partitions.push((groups, t));
                }
                let mut heals = Vec::new();
                for h in f.get("heal").into_iter().flatten() {
                    heals.push(h.parse().map_err(|_| {
                        ParseError(format!("--heal wants a time in T units, got '{h}'"))
                    })?);
                }
                let link_time = |flag: &str, c: &str| -> Result<(u32, u32, u64), ParseError> {
                    let parts: Vec<&str> = c.split(':').collect();
                    let [from, to, t] = parts.as_slice() else {
                        return err(format!("--{flag} wants from:to:timeT, got '{c}'"));
                    };
                    let num = |x: &str| -> Result<u64, ParseError> {
                        x.parse()
                            .map_err(|_| ParseError(format!("bad number in --{flag} '{c}'")))
                    };
                    Ok((num(from)? as u32, num(to)? as u32, num(t)?))
                };
                let mut cuts = Vec::new();
                for c in f.get("cut").into_iter().flatten() {
                    cuts.push(link_time("cut", c)?);
                }
                let mut link_restores = Vec::new();
                for c in f.get("restore").into_iter().flatten() {
                    link_restores.push(link_time("restore", c)?);
                }
                let mut flaps = Vec::new();
                for c in f.get("flap").into_iter().flatten() {
                    let parts: Vec<&str> = c.split(':').collect();
                    let [from, to, start, period, count] = parts.as_slice() else {
                        return err(format!(
                            "--flap wants from:to:startT:periodT:count, got '{c}'"
                        ));
                    };
                    let num = |x: &str| -> Result<u64, ParseError> {
                        x.parse()
                            .map_err(|_| ParseError(format!("bad number in --flap '{c}'")))
                    };
                    flaps.push((
                        num(from)? as u32,
                        num(to)? as u32,
                        num(start)?,
                        num(period)?,
                        num(count)? as u32,
                    ));
                }
                let burst = match one(&f, "burst", "") {
                    "" => None,
                    s => {
                        let ps: Result<Vec<f64>, _> = s.split(':').map(str::parse::<f64>).collect();
                        match ps.ok().as_deref() {
                            Some(&[pb, pg, dg, db]) => Some((pb, pg, dg, db)),
                            _ => {
                                return err(format!(
                                    "--burst wants p_bad:p_good:drop_good:drop_bad, got '{s}'"
                                ))
                            }
                        }
                    }
                };
                let reliable = match one(&f, "reliable", "auto") {
                    "auto" => None,
                    "on" | "true" => Some(true),
                    "off" | "false" => Some(false),
                    other => return err(format!("--reliable wants on|off|auto, got '{other}'")),
                };
                let opt_t = |key: &str| -> Result<Option<u64>, ParseError> {
                    match one(&f, key, "") {
                        "" => Ok(None),
                        s => s.parse().map(Some).map_err(|_| {
                            ParseError(format!("--{key} wants a time in T units, got '{s}'"))
                        }),
                    }
                };
                let hb_interval_t = opt_t("hb-interval")?;
                let hb_timeout_t = opt_t("hb-timeout")?;
                let scheduler = match one(&f, "scheduler", "") {
                    "" => SchedulerKind::default(),
                    s => SchedulerKind::parse(s).ok_or_else(|| {
                        ParseError(format!("--scheduler wants heap|calendar|wheel, got '{s}'"))
                    })?,
                };
                let deadline_t = opt_t("deadline")?;
                if deadline_t == Some(0) {
                    return err("--deadline 0 would abort every request on arrival; \
                         give a positive deadline in T units (or omit the flag)");
                }
                let retry_backoff = match one(&f, "retry-backoff", "") {
                    "" => None,
                    s => {
                        let parts: Result<Vec<u64>, _> = s.split(':').map(str::parse).collect();
                        match parts.ok().as_deref() {
                            Some(&[base, cap, attempts]) if base > 0 && cap >= base => {
                                Some((base, cap, attempts as u32))
                            }
                            _ => {
                                return err(format!(
                                    "--retry-backoff wants baseT:capT:attempts with \
                                     0 < baseT <= capT, got '{s}'"
                                ))
                            }
                        }
                    }
                };
                if retry_backoff.is_some() && deadline_t.is_none() {
                    return err("--retry-backoff without --deadline is a no-op: \
                         nothing ever aborts, so nothing ever retries");
                }
                let resources = parse_u64(&f, "resources", 1)? as u32;
                if resources == 0 {
                    return err("--resources 0 leaves nothing to lock; \
                         give at least 1 (or omit the flag)");
                }
                let zipf = match one(&f, "zipf", "") {
                    "" => 0.0,
                    s => {
                        let z: f64 = s.parse().map_err(|_| {
                            ParseError(format!("--zipf wants a skew exponent >= 0, got '{s}'"))
                        })?;
                        if z < 0.0 {
                            return err(format!("--zipf must be >= 0, got {z}"));
                        }
                        z
                    }
                };
                if f.contains_key("zipf") && resources <= 1 {
                    return err("--zipf without --resources > 1 is a no-op: \
                         popularity skew needs more than one resource");
                }
                // A recovery of a site that is not down by then is the
                // crash-schedule version of the same typo.
                for &(site, at) in &recoveries {
                    if !crashes.iter().any(|&(s, ct)| s == site && ct <= at) {
                        return err(format!(
                            "--recover {site}:{at} revives a site that no --crash takes \
                             down by then; recovering a live site is a no-op"
                        ));
                    }
                }
                // A restore for a link no cut or flap ever severs is a
                // schedule typo, not a fault plan: reject it loudly.
                for &(from, to, at) in &link_restores {
                    let ever_cut = cuts
                        .iter()
                        .any(|&(f, t2, ct)| (f, t2) == (from, to) && ct <= at)
                        || flaps.iter().any(|&(f, t2, ..)| (f, t2) == (from, to));
                    if !ever_cut {
                        return err(format!(
                            "--restore {from}:{to}:{at} restores a link that no --cut or \
                             --flap severs by then; restoring an intact link is a no-op"
                        ));
                    }
                }
                Command::Run {
                    algorithm: parse_algorithm(one(&f, "alg", "delay-optimal"))?,
                    n: parse_u64(&f, "n", 9)? as usize,
                    quorum: parse_quorum(one(&f, "quorum", "grid"))?,
                    gap_t: parse_u64(&f, "gap", 10)?,
                    horizon_t: parse_u64(&f, "horizon", 1000)?,
                    delay: parse_delay(one(&f, "delay", "const:1000"))?,
                    hold: parse_u64(&f, "hold", 100)?,
                    seed: parse_u64(&f, "seed", 42)?,
                    crashes,
                    loss: parse_prob(&f, "loss")?,
                    dup: parse_prob(&f, "dup")?,
                    burst,
                    outages,
                    partitions,
                    heals,
                    cuts,
                    link_restores,
                    flaps,
                    reliable,
                    hb_interval_t,
                    hb_timeout_t,
                    recoveries,
                    scheduler,
                    deadline_t,
                    retry_backoff,
                    resources,
                    zipf,
                }
            }
            "quorum" => {
                let f = flags(rest)?;
                Command::Quorum {
                    kind: parse_quorum(one(&f, "kind", "grid"))?,
                    n: parse_u64(&f, "n", 9)? as usize,
                }
            }
            "check" => {
                let f = flags(rest)?;
                let quorum = match one(&f, "quorum", "") {
                    "" => None,
                    s => Some(parse_quorum(s)?),
                };
                let trace_out = match one(&f, "trace-out", "") {
                    "" => None,
                    s => Some(s.to_string()),
                };
                Command::Check {
                    n: parse_u64(&f, "n", 2)? as u32,
                    rounds: parse_u64(&f, "rounds", 1)? as u32,
                    max_states: parse_u64(&f, "max-states", 5_000_000)? as usize,
                    quorum,
                    crashes: parse_u64(&f, "crashes", 0)? as u32,
                    recoveries: parse_u64(&f, "recoveries", 0)? as u32,
                    drops: parse_u64(&f, "drops", 0)? as u32,
                    suspicions: parse_u64(&f, "suspicions", 0)? as u32,
                    cuts: parse_u64(&f, "cuts", 0)? as u32,
                    restores: parse_u64(&f, "restores", 0)? as u32,
                    aborts: parse_u64(&f, "aborts", 0)? as u32,
                    jobs: parse_u64(&f, "jobs", 1)? as usize,
                    trace_out,
                }
            }
            "experiment" => {
                let Some((name, opts)) = rest.split_first() else {
                    return err("experiment needs a name (e.g. table1)");
                };
                let f = flags(opts)?;
                Command::Experiment {
                    name: name.clone(),
                    jobs: parse_u64(&f, "jobs", 0)? as usize,
                }
            }
            "serve" => {
                let f = flags(rest)?;
                let sites = parse_u64(&f, "sites", 1)? as u32;
                if sites == 0 {
                    return err("--sites must be at least 1");
                }
                let site = parse_u64(&f, "site", 0)? as u32;
                if site >= sites {
                    return err(format!("--site {site} is outside 0..{sites}"));
                }
                let listen = one(&f, "listen", "");
                if listen.is_empty() {
                    return err("serve needs --listen ADDR");
                }
                let mut peers: Vec<(u32, String)> = Vec::new();
                for p in f.get("peer").into_iter().flatten() {
                    let Some((s, addr)) = p.split_once('=') else {
                        return err(format!("--peer wants SITE=ADDR, got '{p}'"));
                    };
                    let s: u32 = s
                        .parse()
                        .map_err(|_| ParseError(format!("bad site in --peer '{p}'")))?;
                    if s >= sites {
                        return err(format!("--peer {p} names a site outside 0..{sites}"));
                    }
                    if s == site {
                        return err(format!("--peer {p} names this site itself"));
                    }
                    if peers.iter().any(|(e, _)| *e == s) {
                        return err(format!("duplicate --peer for site {s}"));
                    }
                    peers.push((s, addr.to_string()));
                }
                if peers.len() as u32 != sites - 1 {
                    return err(format!(
                        "serve needs a --peer for each of the {} other sites, got {}",
                        sites - 1,
                        peers.len()
                    ));
                }
                let on_off = |key: &str, default: bool| -> Result<bool, ParseError> {
                    match one(&f, key, "") {
                        "" => Ok(default),
                        "on" | "true" => Ok(true),
                        "off" | "false" => Ok(false),
                        other => err(format!("--{key} wants on|off, got '{other}'")),
                    }
                };
                let for_ms = match parse_u64(&f, "for-ms", 0)? {
                    0 => None,
                    ms => Some(ms),
                };
                Command::Serve {
                    site,
                    sites,
                    listen: listen.to_string(),
                    peers,
                    transport: parse_wire(one(&f, "transport", "tcp"))?,
                    forwarding: on_off("forwarding", true)?,
                    reconstruct: on_off("reconstruct", true)?,
                    incarnation: parse_u64(&f, "incarnation", 0)?,
                    for_ms,
                }
            }
            "bench-load" => {
                let f = flags(rest)?;
                let addrs: Vec<String> = f.get("addr").cloned().unwrap_or_default();
                if addrs.is_empty() {
                    return err("bench-load needs at least one --addr");
                }
                let clients = parse_u64(&f, "clients", 24)? as usize;
                if clients == 0 {
                    return err("--clients must be at least 1");
                }
                let resources = parse_u64(&f, "resources", 8)? as u32;
                if resources == 0 {
                    return err("--resources must be at least 1");
                }
                let wait_ms = match parse_u64(&f, "wait-ms", 2_000)? {
                    0 => None,
                    ms => Some(ms),
                };
                let zipf = match one(&f, "zipf", "") {
                    "" => 0.9,
                    s => {
                        let z: f64 = s.parse().map_err(|_| {
                            ParseError(format!("--zipf wants a skew exponent >= 0, got '{s}'"))
                        })?;
                        if z < 0.0 {
                            return err(format!("--zipf must be >= 0, got {z}"));
                        }
                        z
                    }
                };
                let out = match one(&f, "out", "") {
                    "" => None,
                    s => Some(s.to_string()),
                };
                Command::BenchLoad {
                    addrs,
                    transport: parse_wire(one(&f, "transport", "tcp"))?,
                    clients,
                    resources,
                    duration_ms: parse_u64(&f, "duration-ms", 10_000)?,
                    think_ms: parse_u64(&f, "think-ms", 20)?,
                    hold_ms: parse_u64(&f, "hold-ms", 2)?,
                    wait_ms,
                    zipf,
                    seed: parse_u64(&f, "seed", 1)?,
                    label: one(&f, "label", "").to_string(),
                    out,
                }
            }
            other => return err(format!("unknown command '{other}' (try help)")),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Cli, ParseError> {
        Cli::parse(line.split_whitespace().map(str::to_string))
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse("").unwrap().command, Command::Help);
        assert_eq!(parse("help").unwrap().command, Command::Help);
    }

    #[test]
    fn run_defaults() {
        let cli = parse("run").unwrap();
        match cli.command {
            Command::Run {
                algorithm,
                n,
                quorum,
                gap_t,
                seed,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::DelayOptimal);
                assert_eq!(n, 9);
                assert_eq!(quorum, QuorumSpec::Grid);
                assert_eq!(gap_t, 10);
                assert_eq!(seed, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_full_flags() {
        let cli = parse(
            "run --alg maekawa --n 25 --quorum rst:5 --gap 0 --horizon 500 \
             --delay uniform:100:2000 --hold 250 --seed 7 --crash 3:100 --crash 4:200",
        )
        .unwrap();
        match cli.command {
            Command::Run {
                algorithm,
                n,
                quorum,
                gap_t,
                horizon_t,
                delay,
                hold,
                seed,
                crashes,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::Maekawa);
                assert_eq!(n, 25);
                assert_eq!(quorum, QuorumSpec::Rst(5));
                assert_eq!(gap_t, 0);
                assert_eq!(horizon_t, 500);
                assert_eq!(delay, DelayModel::Uniform { lo: 100, hi: 2000 });
                assert_eq!(hold, 250);
                assert_eq!(seed, 7);
                assert_eq!(crashes, vec![(3, 100), (4, 200)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_fault_injection_flags() {
        let cli =
            parse("run --loss 0.1 --dup 0.05 --outage 0:1:5:20 --heal 30 --reliable off").unwrap();
        match cli.command {
            Command::Run {
                loss,
                dup,
                burst,
                outages,
                partitions,
                heals,
                reliable,
                ..
            } => {
                assert_eq!(loss, 0.1);
                assert_eq!(dup, 0.05);
                assert_eq!(burst, None);
                assert_eq!(outages, vec![(0, 1, 5, 20)]);
                assert_eq!(heals, vec![30]);
                assert_eq!(reliable, Some(false));
                assert!(partitions.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse("run --burst 0.05:0.5:0.01:0.8").unwrap().command {
            Command::Run {
                burst, reliable, ..
            } => {
                assert_eq!(burst, Some((0.05, 0.5, 0.01, 0.8)));
                assert_eq!(reliable, None); // auto
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse("run --partition 0,0,1:25 --heal 40").unwrap().command {
            Command::Run {
                partitions, heals, ..
            } => {
                assert_eq!(partitions, vec![(vec![0, 0, 1], 25)]);
                assert_eq!(heals, vec![40]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn link_cut_flags() {
        let cli = parse(
            "run --cut 0:1:25 --cut 1:0:25 --restore 0:1:60 --restore 1:0:60 \
             --flap 2:3:10:20:4",
        )
        .unwrap();
        match cli.command {
            Command::Run {
                cuts,
                link_restores,
                flaps,
                ..
            } => {
                assert_eq!(cuts, vec![(0, 1, 25), (1, 0, 25)]);
                assert_eq!(link_restores, vec![(0, 1, 60), (1, 0, 60)]);
                assert_eq!(flaps, vec![(2, 3, 10, 20, 4)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Absent flags leave the link schedule empty.
        match parse("run").unwrap().command {
            Command::Run {
                cuts,
                link_restores,
                flaps,
                ..
            } => {
                assert!(cuts.is_empty());
                assert!(link_restores.is_empty());
                assert!(flaps.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("run --cut 0:1").unwrap_err().0.contains("from:to"));
        assert!(parse("run --restore x:1:5")
            .unwrap_err()
            .0
            .contains("number"));
        assert!(parse("run --flap 0:1:5:10")
            .unwrap_err()
            .0
            .contains("count"));
    }

    #[test]
    fn detector_flags() {
        let cli =
            parse("run --crash 1:4 --recover 1:40 --hb-interval 2 --hb-timeout 10 --reliable on")
                .unwrap();
        match cli.command {
            Command::Run {
                crashes,
                recoveries,
                hb_interval_t,
                hb_timeout_t,
                ..
            } => {
                assert_eq!(crashes, vec![(1, 4)]);
                assert_eq!(recoveries, vec![(1, 40)]);
                assert_eq!(hb_interval_t, Some(2));
                assert_eq!(hb_timeout_t, Some(10));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Absent flags leave the detector off.
        match parse("run").unwrap().command {
            Command::Run {
                recoveries,
                hb_interval_t,
                hb_timeout_t,
                ..
            } => {
                assert!(recoveries.is_empty());
                assert_eq!(hb_interval_t, None);
                assert_eq!(hb_timeout_t, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("run --recover 1")
            .unwrap_err()
            .0
            .contains("site:timeT"));
        assert!(parse("run --hb-interval x")
            .unwrap_err()
            .0
            .contains("T units"));
    }

    #[test]
    fn scheduler_flag() {
        match parse("run --scheduler heap").unwrap().command {
            Command::Run { scheduler, .. } => assert_eq!(scheduler, SchedulerKind::Heap),
            other => panic!("unexpected {other:?}"),
        }
        match parse("run --scheduler calendar").unwrap().command {
            Command::Run { scheduler, .. } => assert_eq!(scheduler, SchedulerKind::Calendar),
            other => panic!("unexpected {other:?}"),
        }
        match parse("run --scheduler wheel").unwrap().command {
            Command::Run { scheduler, .. } => assert_eq!(scheduler, SchedulerKind::Wheel),
            other => panic!("unexpected {other:?}"),
        }
        // Absent: the process-wide default (env var or calendar). Both
        // values are legal, so just check parsing succeeds.
        assert!(matches!(parse("run").unwrap().command, Command::Run { .. }));
        assert!(parse("run --scheduler fifo")
            .unwrap_err()
            .0
            .contains("heap|calendar|wheel"));
    }

    #[test]
    fn deadline_and_retry_flags() {
        match parse("run --deadline 30").unwrap().command {
            Command::Run {
                deadline_t,
                retry_backoff,
                ..
            } => {
                assert_eq!(deadline_t, Some(30));
                assert_eq!(retry_backoff, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse("run --deadline 30 --retry-backoff 2:32:8")
            .unwrap()
            .command
        {
            Command::Run { retry_backoff, .. } => {
                assert_eq!(retry_backoff, Some((2, 32, 8)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Absent flags leave aborting off entirely.
        match parse("run").unwrap().command {
            Command::Run {
                deadline_t,
                retry_backoff,
                ..
            } => {
                assert_eq!(deadline_t, None);
                assert_eq!(retry_backoff, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("run --deadline x").unwrap_err().0.contains("T units"));
        assert!(parse("run --retry-backoff 2:32")
            .unwrap_err()
            .0
            .contains("baseT:capT:attempts"));
        assert!(parse("run --deadline 30 --retry-backoff 32:2:8")
            .unwrap_err()
            .0
            .contains("baseT <= capT"));
    }

    #[test]
    fn lockspace_flags() {
        match parse("run --resources 64 --zipf 0.8").unwrap().command {
            Command::Run {
                resources, zipf, ..
            } => {
                assert_eq!(resources, 64);
                assert!((zipf - 0.8).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Absent flags mean the classic single-lock run.
        match parse("run").unwrap().command {
            Command::Run {
                resources, zipf, ..
            } => {
                assert_eq!(resources, 1);
                assert_eq!(zipf, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Multi-resource without skew is legal (uniform popularity).
        match parse("run --resources 16").unwrap().command {
            Command::Run {
                resources, zipf, ..
            } => {
                assert_eq!(resources, 16);
                assert_eq!(zipf, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("run --resources 0")
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse("run --zipf 0.8").unwrap_err().0.contains("no-op"));
        assert!(parse("run --resources 8 --zipf -1")
            .unwrap_err()
            .0
            .contains(">= 0"));
        assert!(parse("run --resources 8 --zipf x")
            .unwrap_err()
            .0
            .contains("skew exponent"));
    }

    /// No-op and contradictory schedules are rejected up front instead of
    /// silently running a scenario that cannot mean what was asked.
    #[test]
    fn noop_schedules_are_rejected() {
        assert!(parse("run --deadline 0")
            .unwrap_err()
            .0
            .contains("positive deadline"));
        assert!(parse("run --retry-backoff 2:32:8")
            .unwrap_err()
            .0
            .contains("no-op"));
        // A restore for a link nothing ever cuts.
        assert!(parse("run --restore 0:1:60")
            .unwrap_err()
            .0
            .contains("intact link"));
        // A restore scheduled before its only cut lands.
        assert!(parse("run --cut 0:1:70 --restore 0:1:60").is_err());
        // Matching cut first, or a flap on the link, makes it legal.
        assert!(parse("run --cut 0:1:25 --restore 0:1:60").is_ok());
        assert!(parse("run --flap 0:1:10:20:4 --restore 0:1:60").is_ok());
        // A recovery of a site that never crashes, or one scheduled
        // before its crash lands, is the same typo in the crash plan.
        assert!(parse("run --recover 2:40")
            .unwrap_err()
            .0
            .contains("live site"));
        assert!(parse("run --crash 2:50 --recover 2:40").is_err());
        assert!(parse("run --crash 2:40 --recover 2:50").is_ok());
    }

    #[test]
    fn fault_flag_errors_are_descriptive() {
        assert!(parse("run --loss 1.5").unwrap_err().0.contains("[0,1]"));
        assert!(parse("run --loss x").unwrap_err().0.contains("probability"));
        assert!(parse("run --burst 0.1:0.2")
            .unwrap_err()
            .0
            .contains("p_bad"));
        assert!(parse("run --outage 0:1:5")
            .unwrap_err()
            .0
            .contains("from:to"));
        assert!(parse("run --heal soon").unwrap_err().0.contains("T units"));
        assert!(parse("run --partition 0,0,1")
            .unwrap_err()
            .0
            .contains("timeT"));
        assert!(parse("run --partition a,b:5")
            .unwrap_err()
            .0
            .contains("group ids"));
        assert!(parse("run --reliable maybe")
            .unwrap_err()
            .0
            .contains("on|off|auto"));
    }

    #[test]
    fn quorum_and_check_commands() {
        assert_eq!(
            parse("quorum --kind tree --n 15").unwrap().command,
            Command::Quorum {
                kind: QuorumSpec::Tree,
                n: 15
            }
        );
        assert_eq!(
            parse("check --n 3 --rounds 2 --max-states 1000")
                .unwrap()
                .command,
            Command::Check {
                n: 3,
                rounds: 2,
                max_states: 1000,
                quorum: None,
                crashes: 0,
                recoveries: 0,
                drops: 0,
                suspicions: 0,
                cuts: 0,
                restores: 0,
                aborts: 0,
                jobs: 1,
                trace_out: None,
            }
        );
    }

    #[test]
    fn check_fault_budget_flags() {
        assert_eq!(
            parse(
                "check --n 3 --quorum majority --crashes 1 --recoveries 1 \
                 --drops 2 --suspicions 1 --cuts 2 --restores 2 --aborts 1 \
                 --jobs 4 --trace-out cex.trace"
            )
            .unwrap()
            .command,
            Command::Check {
                n: 3,
                rounds: 1,
                max_states: 5_000_000,
                quorum: Some(QuorumSpec::Majority),
                crashes: 1,
                recoveries: 1,
                drops: 2,
                suspicions: 1,
                cuts: 2,
                restores: 2,
                aborts: 1,
                jobs: 4,
                trace_out: Some("cex.trace".into()),
            }
        );
        assert!(parse("check --quorum nope")
            .unwrap_err()
            .0
            .contains("quorum"));
        assert!(parse("check --crashes x").unwrap_err().0.contains("number"));
    }

    #[test]
    fn experiment_command() {
        assert_eq!(
            parse("experiment table1").unwrap().command,
            Command::Experiment {
                name: "table1".into(),
                jobs: 0
            }
        );
        assert_eq!(
            parse("experiment holdsweep --jobs 4").unwrap().command,
            Command::Experiment {
                name: "holdsweep".into(),
                jobs: 4
            }
        );
        assert!(parse("experiment").is_err());
        assert!(parse("experiment table1 --jobs x").is_err());
    }

    #[test]
    fn serve_command_flags() {
        let cli = parse(
            "serve --site 1 --sites 3 --listen 127.0.0.1:7001 \
             --peer 0=127.0.0.1:7000 --peer 2=127.0.0.1:7002 \
             --forwarding off --for-ms 500",
        )
        .unwrap();
        match cli.command {
            Command::Serve {
                site,
                sites,
                listen,
                peers,
                transport,
                forwarding,
                reconstruct,
                incarnation,
                for_ms,
            } => {
                assert_eq!((site, sites), (1, 3));
                assert_eq!(listen, "127.0.0.1:7001");
                assert_eq!(
                    peers,
                    vec![
                        (0, "127.0.0.1:7000".to_string()),
                        (2, "127.0.0.1:7002".to_string())
                    ]
                );
                assert_eq!(transport, WireTransport::Tcp);
                assert!(!forwarding);
                assert!(reconstruct);
                assert_eq!(incarnation, 0);
                assert_eq!(for_ms, Some(500));
            }
            other => panic!("unexpected {other:?}"),
        }
        // UDS flavour and an unbounded run.
        match parse("serve --sites 1 --listen /tmp/qmx.sock --transport uds")
            .unwrap()
            .command
        {
            Command::Serve {
                transport, for_ms, ..
            } => {
                assert_eq!(transport, WireTransport::Uds);
                assert_eq!(for_ms, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serve_command_rejects_bad_topologies() {
        assert!(parse("serve --sites 3 --listen a")
            .unwrap_err()
            .0
            .contains("--peer for each"));
        assert!(
            parse("serve --site 3 --sites 3 --listen a --peer 0=x --peer 1=y")
                .unwrap_err()
                .0
                .contains("outside")
        );
        assert!(parse("serve --sites 2 --listen a --peer 0=x")
            .unwrap_err()
            .0
            .contains("itself"));
        assert!(
            parse("serve --site 0 --sites 3 --listen a --peer 1=x --peer 1=y")
                .unwrap_err()
                .0
                .contains("duplicate")
        );
        assert!(parse("serve --sites 1").unwrap_err().0.contains("--listen"));
        assert!(parse("serve --sites 1 --listen a --transport quic")
            .unwrap_err()
            .0
            .contains("tcp|uds"));
        assert!(parse("serve --sites 1 --listen a --forwarding maybe")
            .unwrap_err()
            .0
            .contains("on|off"));
    }

    #[test]
    fn bench_load_command_flags() {
        let cli = parse(
            "bench-load --addr h:1 --addr h:2 --clients 8 --resources 4 \
             --duration-ms 2000 --think-ms 10 --hold-ms 1 --wait-ms 0 \
             --zipf 0 --seed 7 --label nine-site --out rep.txt",
        )
        .unwrap();
        match cli.command {
            Command::BenchLoad {
                addrs,
                transport,
                clients,
                resources,
                duration_ms,
                think_ms,
                hold_ms,
                wait_ms,
                zipf,
                seed,
                label,
                out,
            } => {
                assert_eq!(addrs, vec!["h:1".to_string(), "h:2".to_string()]);
                assert_eq!(transport, WireTransport::Tcp);
                assert_eq!((clients, resources), (8, 4));
                assert_eq!((duration_ms, think_ms, hold_ms), (2000, 10, 1));
                assert_eq!(wait_ms, None); // 0 = wait forever
                assert_eq!(zipf, 0.0);
                assert_eq!(seed, 7);
                assert_eq!(label, "nine-site");
                assert_eq!(out, Some("rep.txt".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults.
        match parse("bench-load --addr h:1").unwrap().command {
            Command::BenchLoad {
                clients,
                resources,
                duration_ms,
                wait_ms,
                out,
                ..
            } => {
                assert_eq!((clients, resources), (24, 8));
                assert_eq!(duration_ms, 10_000);
                assert_eq!(wait_ms, Some(2_000));
                assert_eq!(out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("bench-load").unwrap_err().0.contains("--addr"));
        assert!(parse("bench-load --addr a --clients 0")
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse("bench-load --addr a --zipf -1")
            .unwrap_err()
            .0
            .contains(">= 0"));
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("bogus").unwrap_err().0.contains("unknown command"));
        assert!(parse("run --alg nope").unwrap_err().0.contains("algorithm"));
        assert!(parse("run --quorum nope").unwrap_err().0.contains("quorum"));
        assert!(parse("run --delay nope").unwrap_err().0.contains("delay"));
        assert!(parse("run --n").unwrap_err().0.contains("needs a value"));
        assert!(parse("run n 9").unwrap_err().0.contains("--flag"));
        assert!(parse("run --crash x").unwrap_err().0.contains("site:timeT"));
    }

    #[test]
    fn delay_models() {
        assert_eq!(parse_delay("const:500").unwrap(), DelayModel::Constant(500));
        assert_eq!(
            parse_delay("exp:700").unwrap(),
            DelayModel::Exponential { mean: 700 }
        );
        assert!(parse_delay("uniform:9").is_err());
    }
}
