//! Command implementations: each returns the text it would print.

use crate::args::{Cli, Command, WireTransport, USAGE};
use qmx_client::{run_bench, BenchConfig};
use qmx_core::{Config, DelayOptimal, DetectorConfig, LossModel, Outage, SiteId, TransportConfig};
use qmx_quorum::availability::monte_carlo_availability;
use qmx_runtime::node::{Node, NodeConfig};
use qmx_runtime::stack::{build_stack, StackConfig};
use qmx_runtime::tcp::{TcpTransport, UdsTransport};
use qmx_runtime::transport::Transport;
use qmx_sim::DelayModel;
use qmx_workload::arrival::ArrivalProcess;
use qmx_workload::scenario::Scenario;
use std::sync::atomic::AtomicBool;

/// Executes a parsed command, returning its output text.
///
/// # Errors
///
/// Returns a message when the command's inputs don't fit (e.g. a quorum
/// construction incompatible with `n`, or a failed model check).
pub fn execute(cli: &Cli) -> Result<String, String> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Run {
            algorithm,
            n,
            quorum,
            gap_t,
            horizon_t,
            delay,
            hold,
            seed,
            crashes,
            loss,
            dup,
            burst,
            outages,
            partitions,
            heals,
            cuts,
            link_restores,
            flaps,
            reliable,
            hb_interval_t,
            hb_timeout_t,
            recoveries,
            scheduler,
            deadline_t,
            retry_backoff,
            resources,
            zipf,
        } => {
            // The lock space shards the delay-optimal protocol only; fail
            // as a message, not the scenario runner's assert.
            if *resources > 1
                && !matches!(
                    algorithm,
                    qmx_workload::scenario::Algorithm::DelayOptimal
                        | qmx_workload::scenario::Algorithm::DelayOptimalNoForwarding
                )
            {
                return Err(format!(
                    "--resources > 1 runs a sharded lock space over the \
                     delay-optimal algorithm; {} is unsupported",
                    algorithm.label()
                ));
            }
            let t = delay.mean().max(1.0) as u64;
            let loss_model = match burst {
                Some((p_bad, p_good, drop_good, drop_bad)) => LossModel::Burst {
                    p_bad: *p_bad,
                    p_good: *p_good,
                    drop_good: *drop_good,
                    drop_bad: *drop_bad,
                    dup: *dup,
                },
                None if *loss > 0.0 || *dup > 0.0 => LossModel::Iid {
                    drop: *loss,
                    dup: *dup,
                },
                None => LossModel::None,
            };
            let faults_present = loss_model != LossModel::None
                || !outages.is_empty()
                || !cuts.is_empty()
                || !flaps.is_empty();
            // Any detector-related flag switches failure handling from the
            // oracle to heartbeats; unspecified knobs default to the
            // simulator's steady-state-safe sizing (beat 2T, suspect 8T).
            let detector = (hb_interval_t.is_some()
                || hb_timeout_t.is_some()
                || !recoveries.is_empty())
            .then(|| DetectorConfig {
                hb_interval: hb_interval_t.unwrap_or(2) * t,
                hb_timeout: hb_timeout_t.unwrap_or(8) * t,
                rejoin_wait: 4 * t,
                fail_confirm: 32 * t,
            });
            let transport = match reliable {
                Some(true) => Some(TransportConfig::default()),
                Some(false) => None,
                // Auto: reliable delivery exactly when something can drop
                // or duplicate messages.
                None => faults_present.then(TransportConfig::default),
            };
            let sc = Scenario {
                n: *n,
                algorithm: *algorithm,
                quorum: *quorum,
                arrivals: if *gap_t == 0 {
                    ArrivalProcess::Saturated { tick_gap: t / 2 }
                } else {
                    ArrivalProcess::Poisson {
                        mean_gap: gap_t * t,
                    }
                },
                horizon: horizon_t * t,
                delay: *delay,
                hold: DelayModel::Constant(*hold),
                crashes: crashes
                    .iter()
                    .map(|&(s, time_t)| (SiteId(s), time_t * t))
                    .collect(),
                partitions: partitions
                    .iter()
                    .map(|(groups, time_t)| (groups.clone(), time_t * t))
                    .collect(),
                heals: heals.iter().map(|&h| h * t).collect(),
                cuts: {
                    let mut v: Vec<(SiteId, SiteId, u64)> = cuts
                        .iter()
                        .map(|&(f, to, time_t)| (SiteId(f), SiteId(to), time_t * t))
                        .collect();
                    for &(f, to, start_t, period_t, count) in flaps {
                        for k in 0..u64::from(count) {
                            v.push((SiteId(f), SiteId(to), (start_t + k * period_t) * t));
                        }
                    }
                    v
                },
                link_restores: {
                    let mut v: Vec<(SiteId, SiteId, u64)> = link_restores
                        .iter()
                        .map(|&(f, to, time_t)| (SiteId(f), SiteId(to), time_t * t))
                        .collect();
                    for &(f, to, start_t, period_t, count) in flaps {
                        for k in 0..u64::from(count) {
                            let heal_t = start_t + k * period_t + period_t / 2;
                            v.push((SiteId(f), SiteId(to), heal_t * t));
                        }
                    }
                    v
                },
                loss: loss_model.clone(),
                outages: outages
                    .iter()
                    .map(|&(from, to, start_t, end_t)| Outage {
                        from: SiteId(from),
                        to: SiteId(to),
                        start: start_t * t,
                        end: end_t * t,
                    })
                    .collect(),
                transport,
                detector,
                recoveries: recoveries
                    .iter()
                    .map(|&(s, time_t)| (SiteId(s), time_t * t))
                    .collect(),
                deadline: deadline_t.map(|d| d * t),
                retry: retry_backoff.map(|(base, cap, max_attempts)| qmx_sim::RetryPolicy {
                    base: base * t,
                    cap: cap * t,
                    max_attempts,
                }),
                mix: (*resources > 1).then_some(qmx_workload::arrival::ResourceMix::Zipf {
                    resources: *resources,
                    s: *zipf,
                }),
                seed: *seed,
                scheduler: *scheduler,
                ..Scenario::default()
            };
            // Validate the quorum before running so errors are messages,
            // not panics.
            if matches!(
                algorithm,
                qmx_workload::scenario::Algorithm::DelayOptimal
                    | qmx_workload::scenario::Algorithm::DelayOptimalNoForwarding
                    | qmx_workload::scenario::Algorithm::Maekawa
            ) {
                quorum.build(*n)?;
            }
            let r = sc.run();
            let mut out = String::new();
            out.push_str(&format!(
                "{} over {} sites ({:?} quorums, K = {:.1})\n",
                algorithm.label(),
                n,
                quorum,
                r.quorum_size
            ));
            out.push_str(&format!("completed CS      : {}\n", r.completed));
            out.push_str(&format!("messages          : {}\n", r.messages));
            let fmt = |v: Option<f64>| v.map_or("-".into(), |x| format!("{x:.2}"));
            out.push_str(&format!("messages per CS   : {}\n", fmt(r.messages_per_cs)));
            out.push_str(&format!(
                "sync delay        : {} T ({} contended samples)\n",
                fmt(r.sync_delay_t),
                r.sync_samples
            ));
            out.push_str(&format!(
                "response time     : {} T\n",
                fmt(r.response_time_t)
            ));
            out.push_str(&format!(
                "throughput        : {:.3} per T\n",
                r.throughput_per_t
            ));
            out.push_str(&format!("fairness (Jain)   : {}\n", fmt(r.fairness)));
            if *resources > 1 {
                out.push_str(&format!(
                    "resources         : {} of {} saw a completed CS\n",
                    r.resources, resources
                ));
                out.push_str(&format!(
                    "resource fairness : {}\n",
                    fmt(r.resource_fairness)
                ));
            }
            out.push_str("per message kind  :");
            for (k, c) in &r.by_kind {
                out.push_str(&format!(" {k}={c}"));
            }
            out.push('\n');
            if faults_present || sc.transport.is_some() {
                out.push_str(&format!(
                    "injected faults   : {} dropped, {} duplicated\n",
                    r.injected_drops, r.injected_dups
                ));
                if r.partition_drops > 0 {
                    out.push_str(&format!(
                        "partition drops   : {} (eaten by cut links)\n",
                        r.partition_drops
                    ));
                }
                let tc = &r.transport;
                out.push_str(&format!(
                    "transport         : {} retransmissions, {} dup-drops, \
                     {} acks, {} reordered, {} gave up\n",
                    tc.retransmissions,
                    tc.duplicates_dropped,
                    tc.acks_sent,
                    tc.reordered,
                    tc.gave_up
                ));
            }
            if sc.detector.is_some() {
                let dc = &r.detector;
                out.push_str(&format!(
                    "detector          : {} heartbeats, {} suspicions \
                     ({} false), {} rejoins sent, {} observed\n",
                    dc.heartbeats_sent,
                    dc.suspicions,
                    dc.false_suspicions,
                    dc.rejoins_sent,
                    dc.rejoins_observed
                ));
            }
            if sc.deadline.is_some() {
                let ac = &r.aborts;
                out.push_str(&format!(
                    "aborts            : {} ({} deadline-fired), {} retries, \
                     {} orphan grants returned\n",
                    ac.aborts, ac.deadline_aborts, r.retries, ac.orphan_grants
                ));
            }
            Ok(out)
        }
        Command::Quorum { kind, n } => {
            let sys = kind.build(*n)?;
            let mut out = format!(
                "{kind:?} over {n} sites: K mean {:.2}, max {}\n",
                sys.mean_quorum_size(),
                sys.max_quorum_size()
            );
            out.push_str(&format!(
                "intersection: {}; minimality: {}; self-inclusion: {:.0}%\n",
                if sys.verify_intersection().is_ok() {
                    "OK"
                } else {
                    "VIOLATED"
                },
                if sys.verify_minimality().is_ok() {
                    "OK"
                } else {
                    "violated (allowed)"
                },
                sys.self_inclusion_rate() * 100.0
            ));
            for p in [0.9f64, 0.99] {
                out.push_str(&format!(
                    "availability at p={p}: {:.4}\n",
                    monte_carlo_availability(&sys, p, 20_000, 1)
                ));
            }
            for s in 0..(*n).min(10) {
                let q = sys.quorum_of(SiteId(s as u32));
                out.push_str(&format!("  S{s}: {q:?}\n"));
            }
            if *n > 10 {
                out.push_str("  ... (first 10 sites shown)\n");
            }
            Ok(out)
        }
        Command::Check {
            n,
            rounds,
            max_states,
            quorum,
            crashes,
            recoveries,
            drops,
            suspicions,
            cuts,
            restores,
            aborts,
            jobs,
            trace_out,
        } => {
            let sites: Vec<DelayOptimal> = match quorum {
                None => {
                    let q: Vec<SiteId> = (0..*n).map(SiteId).collect();
                    (0..*n)
                        .map(|i| DelayOptimal::new(SiteId(i), q.clone(), Config::default()))
                        .collect()
                }
                Some(spec) => {
                    let sys = spec.build(*n as usize)?;
                    (0..*n)
                        .map(|i| {
                            DelayOptimal::new(
                                SiteId(i),
                                sys.quorum_of(SiteId(i)).to_vec(),
                                Config::default(),
                            )
                        })
                        .collect()
                }
            };
            let faults = qmx_check::FaultBudget {
                crashes: *crashes,
                recoveries: *recoveries,
                drops: *drops,
                false_suspicions: *suspicions,
                cuts: *cuts,
                restores: *restores,
                aborts: *aborts,
                timers: 0,
                detector: *crashes > 0 || *recoveries > 0 || *suspicions > 0 || *cuts > 0,
            };
            let mut opts = qmx_check::CheckOptions::new(*max_states);
            opts.faults = faults;
            opts.jobs = *jobs;
            if faults.is_active() {
                // §6 prescribes that a site whose every quorum lost a
                // member must block; its stall is correct, not a deadlock.
                opts.stuck_exempt = Some(DelayOptimal::is_inaccessible);
            }
            if *jobs > 1 {
                qmx_workload::parallel::set_jobs(*jobs);
            }
            let scope = format!(
                "{} sites x {} rounds ({}), faults: {} crash / {} recover / {} drop / \
                 {} suspect / {} cut / {} restore / {} abort",
                n,
                rounds,
                quorum.map_or("full quorums".into(), |q| format!("{q:?} quorums")),
                crashes,
                recoveries,
                drops,
                suspicions,
                cuts,
                restores,
                aborts
            );
            match qmx_check::check_with(
                sites,
                &qmx_check::Workload::uniform(*n as usize, *rounds),
                &opts,
            ) {
                Ok(stats) => Ok(format!(
                    "VERIFIED: {scope}\n\
                     states explored : {}\n\
                     transitions     : {}\n\
                     naive trans.    : {}\n\
                     reduction ratio : {:.2}x\n\
                     terminal states : {}\n\
                     max depth       : {}\n\
                     Every interleaving satisfies mutual exclusion and\n\
                     deadlock freedom within this scope.\n",
                    stats.states,
                    stats.transitions,
                    stats.naive_transitions,
                    stats.reduction_ratio(),
                    stats.terminals,
                    stats.max_depth
                )),
                Err(v) => {
                    let trace = match &v {
                        qmx_check::Violation::MutualExclusion { trace, .. }
                        | qmx_check::Violation::Deadlock { trace, .. } => Some(trace),
                        qmx_check::Violation::StateLimit { .. } => None,
                    };
                    if let (Some(path), Some(trace)) = (trace_out, trace) {
                        let mut text = format!("# {scope}\n# {v}\n");
                        for a in trace {
                            text.push_str(&format!("{a}\n"));
                        }
                        std::fs::write(path, text)
                            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
                    }
                    Err(format!("CHECK FAILED: {scope}\n{v}"))
                }
            }
        }
        Command::Experiment { name, jobs } => {
            use qmx_bench::experiments as e;
            qmx_workload::parallel::set_jobs(*jobs);
            Ok(match name.as_str() {
                "table1" => [9usize, 25]
                    .iter()
                    .map(|&n| e::table1(n))
                    .collect::<Vec<_>>()
                    .join("\n"),
                "lightload" => e::light_load_detail(&[9, 16, 25, 36, 49]),
                "heavyload" => e::heavy_load_detail(&[9, 25, 49]),
                "syncdelay" => e::sync_delay_sweep(25),
                "throughput" => e::throughput_sweep(25),
                "quorumsize" => e::quorum_sizes(),
                "availability" => e::availability_curves(),
                "faulttolerance" => e::fault_tolerance(7, 1),
                "ablation" => e::ablation(25),
                "holdsweep" => e::sync_delay_vs_hold(25),
                "msgscaling" => e::message_scaling(),
                "schedulers" => e::scheduler_ablation(&[9, 25], 20),
                "scalesweep" => e::scale_sweep(),
                "partitions" => e::partition_availability(),
                "abortavail" => e::abort_availability(),
                "lockspace" => e::lockspace_scaling(),
                other => return Err(format!("unknown experiment '{other}'")),
            })
        }
        Command::Serve {
            site,
            sites,
            listen,
            peers,
            transport,
            forwarding,
            reconstruct,
            incarnation,
            for_ms,
        } => {
            let opts = ServeOpts {
                site: *site,
                sites: *sites,
                listen: listen.clone(),
                peers: peers.clone(),
                forwarding: *forwarding,
                reconstruct: *reconstruct,
                incarnation: *incarnation,
                for_ms: *for_ms,
            };
            match transport {
                WireTransport::Tcp => serve(TcpTransport::new(), &opts),
                WireTransport::Uds => serve(UdsTransport::new(), &opts),
            }
        }
        Command::BenchLoad {
            addrs,
            transport,
            clients,
            resources,
            duration_ms,
            think_ms,
            hold_ms,
            wait_ms,
            zipf,
            seed,
            label,
            out,
        } => {
            let cfg = BenchConfig {
                site_addrs: addrs.clone(),
                clients: *clients,
                resources: *resources,
                duration_us: duration_ms * 1_000,
                think_mean_us: think_ms * 1_000,
                hold_us: hold_ms * 1_000,
                wait_us: wait_ms.map(|ms| ms * 1_000),
                zipf_s: *zipf,
                seed: *seed,
                label: if label.is_empty() {
                    format!("{} sites, {clients} clients", addrs.len())
                } else {
                    label.clone()
                },
            };
            let report = match transport {
                WireTransport::Tcp => run_bench(&mut TcpTransport::new(), &cfg),
                WireTransport::Uds => run_bench(&mut UdsTransport::new(), &cfg),
            }
            .map_err(|e| format!("bench-load failed: {e}"))?;
            let text = report.render();
            if let Some(path) = out {
                std::fs::write(path, &text)
                    .map_err(|e| format!("cannot write report to {path}: {e}"))?;
            }
            Ok(text)
        }
    }
}

/// Everything `serve` needs beyond the transport choice.
struct ServeOpts {
    site: u32,
    sites: u32,
    listen: String,
    peers: Vec<(u32, String)>,
    forwarding: bool,
    reconstruct: bool,
    incarnation: u64,
    for_ms: Option<u64>,
}

/// Builds and runs one site's node over a real-socket transport. Timer
/// constants are sized for localhost/LAN wall-clock microseconds (the
/// deterministic harness uses much tighter virtual-time constants).
fn serve<T: Transport>(transport: T, o: &ServeOpts) -> Result<String, String> {
    let n = o.sites;
    let k = n / 2 + 1;
    let stack_cfg = StackConfig {
        sites: (0..n).map(SiteId).collect(),
        quorum: (0..k).map(|d| SiteId((o.site + d) % n)).collect(),
        algo: Config {
            forwarding_enabled: o.forwarding,
        },
        transport: TransportConfig {
            rto_initial: 20_000,
            rto_max: 500_000,
            max_retries: 40,
        },
        detector: DetectorConfig {
            hb_interval: 100_000,
            hb_timeout: 500_000,
            rejoin_wait: 200_000,
            fail_confirm: 3_000_000,
        },
        majority_reconstruct: o.reconstruct,
    };
    let proto = build_stack(SiteId(o.site), &stack_cfg);
    let mut node_cfg = NodeConfig::new(
        SiteId(o.site),
        o.listen.clone(),
        o.peers
            .iter()
            .map(|(s, addr)| (SiteId(*s), addr.clone()))
            .collect(),
    );
    node_cfg.incarnation = o.incarnation;
    let mut node = Node::new(transport, proto, node_cfg)
        .map_err(|e| format!("cannot listen on {}: {e}", o.listen))?;
    eprintln!(
        "qmxctl serve: site {}/{} on {} (forwarding {}, reconstruct {})",
        o.site,
        o.sites,
        o.listen,
        if o.forwarding { "on" } else { "off" },
        if o.reconstruct { "on" } else { "off" },
    );
    match o.for_ms {
        None => {
            // Serve until the process is killed; the stop flag exists for
            // embedders, the CLI has no signal to raise it.
            let stop = AtomicBool::new(false);
            node.run(&stop);
            Ok(String::new())
        }
        Some(ms) => {
            node.run_for(ms * 1_000);
            let c = node.counters();
            Ok(format!(
                "served {} for {ms} ms: {} sessions, {} grants, {} releases, \
                 {} bad frames\n",
                o.listen, c.sessions_opened, c.grants, c.releases, c.bad_frames
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> Result<String, String> {
        execute(&Cli::parse(line.split_whitespace().map(str::to_string)).expect("parse"))
    }

    #[test]
    fn help_prints_usage() {
        let out = run("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("qmxctl run"));
    }

    #[test]
    fn quorum_command_prints_properties() {
        let out = run("quorum --kind grid --n 9").unwrap();
        assert!(out.contains("K mean 5.00"));
        assert!(out.contains("intersection: OK"));
        assert!(out.contains("S0:"));
    }

    #[test]
    fn quorum_command_reports_bad_n() {
        let err = run("quorum --kind tree --n 10").unwrap_err();
        assert!(err.contains("2^d - 1"));
    }

    #[test]
    fn run_command_small_scenario() {
        let out = run("run --n 5 --quorum all --gap 20 --horizon 200").unwrap();
        assert!(out.contains("completed CS"));
        assert!(out.contains("messages per CS"));
    }

    #[test]
    fn run_command_lossy_prints_transport_counters() {
        let out =
            run("run --n 5 --quorum all --gap 20 --horizon 200 --loss 0.1 --dup 0.05").unwrap();
        assert!(out.contains("injected faults"), "{out}");
        assert!(out.contains("retransmissions"), "{out}");
        // Loss actually fired and the transport recovered from it.
        let drops: u64 = out
            .lines()
            .find(|l| l.starts_with("injected faults"))
            .and_then(|l| l.split_whitespace().nth(3))
            .and_then(|w| w.parse().ok())
            .expect("drop count in report");
        assert!(drops > 0, "{out}");
    }

    #[test]
    fn run_command_with_link_cuts_reports_partition_drops() {
        // An asymmetric cut 0->1 from 20T to 60T under live load: the
        // heartbeats crossing the cut die at the source (so the partition
        // drop counter fires), the detector reacts, and the report
        // surfaces both.
        let out = run("run --n 5 --alg ft-majority --quorum majority --gap 20 \
             --horizon 300 --cut 0:1:20 --restore 0:1:60 \
             --hb-interval 2 --hb-timeout 10 --seed 3")
        .unwrap();
        assert!(out.contains("partition drops"), "{out}");
        assert!(out.contains("detector"), "{out}");
        assert!(out.contains("completed CS"), "{out}");
    }

    #[test]
    fn run_command_with_recovery_prints_detector_counters() {
        // A crash at 4T and a heartbeat-driven rejoin at 60T: the report
        // must carry the detector line, show the single rejoin, and the
        // recovered site must be back among the completions (fairness).
        let out = run("run --n 3 --quorum all --gap 20 --horizon 300 --crash 1:4 \
             --recover 1:60 --hb-interval 2 --hb-timeout 10 --reliable on")
        .unwrap();
        assert!(out.contains("detector"), "{out}");
        let detector_line = out
            .lines()
            .find(|l| l.starts_with("detector"))
            .expect("detector line");
        assert!(detector_line.contains("1 rejoins sent"), "{out}");
        assert!(!detector_line.contains("0 suspicions"), "{out}");
    }

    #[test]
    fn run_command_without_detector_omits_detector_line() {
        let out = run("run --n 5 --quorum all --gap 20 --horizon 200").unwrap();
        assert!(!out.contains("detector"), "{out}");
    }

    #[test]
    fn run_command_without_faults_omits_transport_lines() {
        let out = run("run --n 5 --quorum all --gap 20 --horizon 200").unwrap();
        assert!(!out.contains("injected faults"), "{out}");
    }

    #[test]
    fn run_command_reports_identical_under_all_schedulers() {
        // The CI determinism gate in script form: same scenario, all
        // three scheduler implementations, byte-identical report text.
        let line = "run --n 9 --gap 5 --horizon 400 --delay exp:1000 --seed 11 \
             --loss 0.05 --crash 2:50 --recover 2:150 --hb-interval 2 --hb-timeout 10";
        let heap = run(&format!("{line} --scheduler heap")).unwrap();
        for kind in ["calendar", "wheel"] {
            let other = run(&format!("{line} --scheduler {kind}")).unwrap();
            assert_eq!(heap, other, "report diverged under {kind}");
        }
        assert!(heap.contains("completed CS"), "{heap}");
    }

    #[test]
    fn run_command_with_resources_prints_lockspace_lines() {
        let out = run("run --n 9 --gap 10 --horizon 400 --resources 32 --zipf 0.8").unwrap();
        assert!(out.contains("resources         :"), "{out}");
        assert!(out.contains("of 32 saw a completed CS"), "{out}");
        assert!(out.contains("resource fairness :"), "{out}");
        assert!(out.contains("completed CS"), "{out}");
    }

    #[test]
    fn run_command_single_resource_omits_lockspace_lines() {
        let out = run("run --n 5 --quorum all --gap 20 --horizon 200").unwrap();
        assert!(!out.contains("resource fairness"), "{out}");
    }

    #[test]
    fn run_command_rejects_resources_on_broadcast_algorithms() {
        let err = run("run --alg lamport --n 5 --resources 8").unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn run_command_validates_quorum() {
        let err = run("run --quorum fpp --n 10").unwrap_err();
        assert!(err.contains("FPP"));
    }

    #[test]
    fn check_command_verifies_duo() {
        let out = run("check --n 2 --rounds 1").unwrap();
        assert!(out.contains("VERIFIED"));
        assert!(out.contains("states explored"));
    }

    #[test]
    fn check_command_reports_state_cap() {
        let err = run("check --n 3 --rounds 3 --max-states 50").unwrap_err();
        assert!(err.contains("CHECK FAILED"));
    }

    #[test]
    fn check_command_prints_reduction_ratio() {
        let out = run("check --n 2 --rounds 1").unwrap();
        assert!(out.contains("naive trans."), "{out}");
        assert!(out.contains("reduction ratio"), "{out}");
    }

    #[test]
    fn check_command_with_fault_budget_verifies() {
        let out = run("check --n 2 --rounds 1 --crashes 1 --recoveries 1").unwrap();
        assert!(out.contains("VERIFIED"), "{out}");
        assert!(out.contains("1 crash / 1 recover"), "{out}");
    }

    #[test]
    fn experiment_unknown_name() {
        let err = run("experiment nope").unwrap_err();
        assert!(err.contains("unknown experiment"));
    }
}
