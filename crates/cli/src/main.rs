//! `qmxctl` binary entry point.

use qmx_cli::{execute, Cli};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Cli::parse(args) {
        Ok(cli) => match execute(&cli) {
            Ok(out) => print!("{out}"),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", qmx_cli::args::USAGE);
            std::process::exit(2);
        }
    }
}
