//! # qmx-cli
//!
//! Command-line front end for the `qmx` workspace. The binary is
//! `qmxctl`; this library holds the argument parsing and command
//! implementations so they are unit-testable.
//!
//! ```sh
//! qmxctl run --alg delay-optimal --n 25 --quorum grid --gap 5
//! qmxctl quorum --kind tree --n 15
//! qmxctl check --n 3 --rounds 1
//! qmxctl experiment table1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Cli, Command, ParseError, WireTransport};
pub use commands::execute;
