//! Event schedulers: the calendar queue and the reference binary heap.
//!
//! The simulator's future-event set is a priority queue ordered by
//! `(time, seq)` — delivery time with insertion order as the total-order
//! tie-break. Two interchangeable implementations live here behind the
//! [`Scheduler`] trait:
//!
//! * [`HeapScheduler`] — the original `BinaryHeap`, O(log n) per
//!   operation. Kept as the differential-testing reference: CI runs the
//!   golden-counter suite under both schedulers and diffs the outputs.
//! * [`CalendarScheduler`] — a calendar queue (Brown 1988): events hash
//!   into time-bucketed "days" of a power-of-two width, giving O(1)
//!   amortized enqueue/dequeue for the simulator's workload, where
//!   delivery times cluster around `now + T`. The bucket count and day
//!   width resize on occupancy drift; both are deterministic functions
//!   of the queue contents, never of wall-clock state.
//!
//! **Determinism contract**: both schedulers pop the exact minimum by
//! `(time, seq)` — not merely *a* minimum-time event — so a replay
//! produces the identical event order under either implementation. The
//! calendar queue guarantees this by scanning the current day's bucket
//! for the smallest `(time, seq)` key rather than trusting intra-bucket
//! order (which `swap_remove` scrambles harmlessly).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An item with the `(time, seq)` scheduling key.
///
/// Implementors must order their `Ord` exactly by `(time(), seq())` —
/// [`HeapScheduler`] sorts by `Ord` while [`CalendarScheduler`] sorts by
/// the key pair, and the two must agree for differential testing to be
/// meaningful.
pub trait Timed {
    /// Scheduled virtual time.
    fn time(&self) -> u64;
    /// Insertion-order tie-break (unique per item).
    fn seq(&self) -> u64;
}

/// Which event-scheduler implementation the simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The reference `BinaryHeap` scheduler.
    Heap,
    /// The calendar-queue scheduler (default).
    Calendar,
    /// The hierarchical timer wheel (the large-N scheduler).
    Wheel,
}

impl SchedulerKind {
    /// Parses `"heap"` / `"calendar"` / `"wheel"`; `None` for anything
    /// else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(SchedulerKind::Heap),
            "calendar" => Some(SchedulerKind::Calendar),
            "wheel" => Some(SchedulerKind::Wheel),
            _ => None,
        }
    }

    /// The name [`SchedulerKind::parse`] accepts for this kind.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Calendar => "calendar",
            SchedulerKind::Wheel => "wheel",
        }
    }

    /// Reads the `QMX_SCHEDULER` environment variable (`heap`,
    /// `calendar`, or `wheel`), defaulting to
    /// [`SchedulerKind::Calendar`] when unset. This is how CI runs the
    /// *entire* golden-counter test suite under every scheduler without
    /// code changes.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a typo in a CI matrix must fail
    /// loudly, not silently fall back to the default.
    pub fn from_env() -> Self {
        match std::env::var("QMX_SCHEDULER") {
            Ok(v) => Self::parse(&v).unwrap_or_else(|| {
                panic!("QMX_SCHEDULER must be 'heap', 'calendar', or 'wheel', got '{v}'")
            }),
            Err(_) => SchedulerKind::Calendar,
        }
    }
}

impl Default for SchedulerKind {
    /// [`SchedulerKind::from_env`], so one environment variable switches
    /// every default-configured simulator in the process.
    fn default() -> Self {
        Self::from_env()
    }
}

/// A future-event set ordered by `(time, seq)`.
pub trait Scheduler<T: Timed + Ord> {
    /// Inserts one item.
    fn push(&mut self, item: T);
    /// Removes and returns the minimum item by `(time, seq)`.
    fn pop(&mut self) -> Option<T>;
    /// Number of queued items.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Inserts a batch in one pass (one heapify / bucket-fill plus a
    /// single resize check, instead of per-item occupancy bookkeeping).
    fn bulk_load(&mut self, items: Vec<T>);
}

/// The reference scheduler: a min-heap over the item's `Ord`.
#[derive(Debug)]
pub struct HeapScheduler<T> {
    heap: BinaryHeap<Reverse<T>>,
}

impl<T: Ord> HeapScheduler<T> {
    /// Creates an empty heap with room for `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapScheduler {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }
}

impl<T: Timed + Ord> Scheduler<T> for HeapScheduler<T> {
    fn push(&mut self, item: T) {
        self.heap.push(Reverse(item));
    }

    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|Reverse(item)| item)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn bulk_load(&mut self, items: Vec<T>) {
        if self.heap.is_empty() {
            // O(n) heapify instead of n * O(log n) sift-ups.
            self.heap = items.into_iter().map(Reverse).collect::<Vec<_>>().into();
        } else {
            // `BinaryHeap::extend` already rebuilds in bulk when the
            // batch is large relative to the existing heap.
            self.heap.extend(items.into_iter().map(Reverse));
        }
    }
}

/// Fewest buckets the calendar ever shrinks to.
const MIN_BUCKETS: usize = 8;
/// Initial day width as a power-of-two exponent: 2^10 = 1024 ticks,
/// matching the repo-wide mean message delay `T = 1000` that delivery
/// times cluster around. Resizes re-derive it from the live contents.
const DEFAULT_SHIFT: u32 = 10;
/// Minimum pops in the sampling window before the mean inter-pop gap is
/// trusted over the span-per-item estimate at a resize.
const GAP_SAMPLE_MIN: u64 = 16;
/// Before any pops exist the day width is estimated as the mean
/// span-per-item over this divisor: queued items are mostly *arrivals*,
/// and each arrival spawns a handful of messages, so the eventual
/// inter-pop gap is a few times denser than the load.
const SPAN_WIDTH_DIVISOR: u64 = 4;
/// Bucket-count memory cap, in buckets per queued item. The bucket ring
/// ideally covers the whole day span (no aliasing); a long sparse tail
/// may not be worth covering, and an aliased far item only costs one
/// scan step per lap that visits its bucket.
const BUCKETS_PER_ITEM_CAP: usize = 2;
/// Minimum pops between scan-cost retunes, amortizing the O(len +
/// nbuckets) rebucket.
const RETUNE_MIN_POPS: u64 = 128;
/// Scan-cost retune threshold: rebucket when pops average more than
/// this many scanned items each since the last resize.
const RETUNE_SCAN_FACTOR: u64 = 8;

/// The calendar-queue scheduler.
///
/// Time is divided into *days* of `2^shift` ticks; day `d` hashes to
/// bucket `d % nbuckets` (both powers of two, so day extraction is a
/// shift and bucket selection a mask). A pop scans forward from the
/// cursor day: because each day maps to exactly one bucket, the first
/// day whose bucket holds an in-day item holds the global minimum, and
/// taking the smallest `(time, seq)` within that bucket reproduces heap
/// order exactly. If a whole lap (one visit to every bucket) finds
/// nothing in-day, the queue is sparse relative to the cursor; the scan
/// has then seen every item, so it extracts the global minimum directly
/// and jumps the cursor to it.
///
/// Storage is a slot arena, not per-bucket vectors: items live in one
/// flat `slots` array, each bucket is the head of an intrusive singly
/// linked chain through the parallel `next` array, and freed slots are
/// recycled through a free list. Steady state allocates nothing — a
/// push reuses a slot and links it in O(1); an extract unlinks and
/// pushes the slot onto the free list — and the whole structure is a
/// handful of flat arrays, so the scan's empty-day check reads 4
/// contiguous bytes instead of chasing a heap-allocated vector.
///
/// Sizing (re-derived at every resize, deterministically — the inputs
/// are the queue contents and its pop history, both identical across
/// replays):
///
/// * **Day width** — the mean inter-pop gap over the window since the
///   last resize (Brown's rule: the width should track the dense
///   cluster the cursor walks through, not the far tail); before any
///   pops exist, a density-corrected span-per-item estimate.
/// * **Bucket count** — enough buckets to cover every day in the live
///   span (no aliasing), capped at `BUCKETS_PER_ITEM_CAP` per item.
/// * **Triggers** — the length doubling or halving (×4 band in each
///   direction) since the last resize, plus a scan-cost retune when
///   pops average more than `RETUNE_SCAN_FACTOR` scanned items over a
///   `RETUNE_MIN_POPS` window and the sampled gap disagrees with the
///   current width. The wide band means a length oscillating around a
///   fixed working set never thrashes the table.
#[derive(Debug)]
pub struct CalendarScheduler<T> {
    /// Per-bucket chain head into `slots`; [`NONE`] marks an empty day.
    heads: Vec<u32>,
    /// Next slot in the bucket chain, parallel to `slots`.
    next: Vec<u32>,
    /// The arena. `None` slots are on the free list.
    slots: Vec<Option<T>>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Day width = `2^shift` ticks.
    shift: u32,
    /// `heads.len() - 1`; the bucket count is a power of two.
    mask: u64,
    /// Cursor: never greater than the minimum queued item's day.
    day: u64,
    len: usize,
    /// `len` at the last resize: the growth/shrink triggers fire when
    /// the length doubles or halves from this point, independent of the
    /// bucket count (which tracks the day span, not the length).
    resize_len: usize,
    /// Pops since the last resize (gap sampling window).
    pops_since: u64,
    /// Items scanned by pops since the last resize (retune trigger).
    scanned_since: u64,
    /// Time of the last popped item (pop times are nondecreasing).
    last_pop: u64,
    /// `last_pop` at the moment of the last resize: the sampling
    /// window's origin for the mean inter-pop gap.
    gap_t0: u64,
}

/// Chain terminator / empty bucket marker.
const NONE: u32 = u32::MAX;

impl<T: Timed + Ord> CalendarScheduler<T> {
    /// Creates an empty calendar sized for roughly `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        let nbuckets = (capacity / 2).max(MIN_BUCKETS).next_power_of_two();
        CalendarScheduler {
            heads: vec![NONE; nbuckets],
            next: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            shift: DEFAULT_SHIFT,
            mask: nbuckets as u64 - 1,
            day: 0,
            len: 0,
            resize_len: nbuckets,
            pops_since: 0,
            scanned_since: 0,
            last_pop: 0,
            gap_t0: 0,
        }
    }

    /// Inserts without the occupancy check (`push` and `bulk_load` share
    /// it; only they differ in when the check runs).
    fn insert(&mut self, item: T) {
        let d = item.time() >> self.shift;
        // An item behind the cursor would be invisible to the in-day
        // scan; pulling the cursor back is always safe (it only costs
        // scan steps) and keeps the cursor-≤-minimum-day invariant.
        if self.len == 0 || d < self.day {
            self.day = d;
        }
        let b = (d & self.mask) as usize;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(item);
                s
            }
            None => {
                self.slots.push(Some(item));
                self.next.push(NONE);
                (self.slots.len() - 1) as u32
            }
        };
        self.next[slot as usize] = self.heads[b];
        self.heads[b] = slot;
        self.len += 1;
    }

    /// The mean inter-pop gap over the current sampling window, rounded
    /// up to a power of two — the day width Brown's rule would pick.
    /// `None` until the window holds enough pops to trust.
    fn sampled_width(&self) -> Option<u64> {
        (self.pops_since >= GAP_SAMPLE_MIN && self.last_pop > self.gap_t0).then(|| {
            ((self.last_pop - self.gap_t0) / self.pops_since)
                .max(1)
                .next_power_of_two()
        })
    }

    fn resize(&mut self) {
        // Items stay in their arena slots; only the chains are rebuilt,
        // so a resize is two flat passes and allocates nothing beyond
        // ring growth.
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for item in self.slots.iter().flatten() {
            lo = lo.min(item.time());
            hi = hi.max(item.time());
        }
        let nbuckets = if self.len == 0 {
            self.day = 0;
            MIN_BUCKETS
        } else {
            // Day width: the mean inter-pop gap when the sampling window
            // has data (Brown's rule — it tracks the *dense cluster* the
            // cursor is walking through, not the far tail), else a
            // density-corrected span estimate. An over-wide day makes
            // every pop rescan the whole live cluster, so err narrow:
            // an empty day costs one contiguous bucket-header check.
            let width = self.sampled_width().unwrap_or_else(|| {
                ((hi - lo) / self.len as u64 / SPAN_WIDTH_DIVISOR)
                    .max(1)
                    .next_power_of_two()
            });
            self.shift = width.trailing_zeros();
            self.day = lo >> self.shift;
            // Cover every day in the live span (aliasing-free) up to the
            // memory cap; past the cap, far items alias harmlessly into
            // the ring.
            let days = ((hi - lo) >> self.shift) as usize + 1;
            days.min(BUCKETS_PER_ITEM_CAP * self.len)
                .max(MIN_BUCKETS)
                .next_power_of_two()
        };
        self.mask = nbuckets as u64 - 1;
        self.heads.clear();
        self.heads.resize(nbuckets, NONE);
        for idx in 0..self.slots.len() {
            if let Some(item) = &self.slots[idx] {
                let b = ((item.time() >> self.shift) & self.mask) as usize;
                self.next[idx] = self.heads[b];
                self.heads[b] = idx as u32;
            }
        }
        self.resize_len = self.len;
        self.pops_since = 0;
        self.scanned_since = 0;
        self.gap_t0 = self.last_pop;
    }

    /// Unlinks `slot` (whose predecessor in its chain is `prev`, or
    /// [`NONE`] if it is the head of `bucket`) and returns its item.
    fn extract(&mut self, bucket: usize, slot: u32, prev: u32) -> T {
        let item = self.slots[slot as usize]
            .take()
            .expect("linked slot is occupied");
        let after = self.next[slot as usize];
        if prev == NONE {
            self.heads[bucket] = after;
        } else {
            self.next[prev as usize] = after;
        }
        self.free.push(slot);
        self.len -= 1;
        // The popped item was the global minimum, so its day is a valid
        // cursor for everything that remains.
        self.day = item.time() >> self.shift;
        self.last_pop = item.time();
        self.pops_since += 1;
        if self.heads.len() > MIN_BUCKETS && self.len * 4 < self.resize_len {
            self.resize();
        } else if self.pops_since >= RETUNE_MIN_POPS
            && self.scanned_since > RETUNE_SCAN_FACTOR * self.pops_since
        {
            // Pops are scanning too many items per dequeue: the day
            // width no longer fits the live cluster (e.g. the initial
            // width guessed before any pops existed, or a workload whose
            // event density shifted). Rebucket with a fresh gap-derived
            // width — but only if that width actually differs, so a
            // workload that genuinely cannot meet the scan budget resets
            // the window instead of rebucketing in vain every
            // `RETUNE_MIN_POPS`.
            if self.sampled_width() != Some(1 << self.shift) {
                self.resize();
            } else {
                self.pops_since = 0;
                self.scanned_since = 0;
                self.gap_t0 = self.last_pop;
            }
        }
        item
    }
}

impl<T: Timed + Ord> Scheduler<T> for CalendarScheduler<T> {
    fn push(&mut self, item: T) {
        self.insert(item);
        if self.len > 4 * self.resize_len.max(MIN_BUCKETS) {
            self.resize();
        }
    }

    fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.heads.len();
        let shift = self.shift;
        let mask = self.mask;
        // Global minimum seen so far, as a fused 128-bit (time, seq) key
        // (one comparison instead of a lexicographic pair) plus its
        // (bucket, slot, predecessor): after a full fruitless lap this
        // has seen every queued item. Chains are not modified during the
        // scan, so recorded predecessors stay valid.
        let mut fb_key = u128::MAX;
        let mut fb = (0usize, NONE, NONE);
        for lap in 0..nbuckets {
            let day = self.day + lap as u64;
            let b = (day & mask) as usize;
            let mut idx = self.heads[b];
            if idx == NONE {
                continue;
            }
            let mut best_key = u128::MAX;
            let mut best = (NONE, NONE);
            let mut prev = NONE;
            let mut scanned = 0u64;
            while idx != NONE {
                let item = self.slots[idx as usize]
                    .as_ref()
                    .expect("linked slot is occupied");
                let key = ((item.time() as u128) << 64) | item.seq() as u128;
                scanned += 1;
                if item.time() >> shift == day {
                    if key < best_key {
                        best_key = key;
                        best = (idx, prev);
                    }
                } else if key < fb_key {
                    fb_key = key;
                    fb = (b, idx, prev);
                }
                prev = idx;
                idx = self.next[idx as usize];
            }
            self.scanned_since += scanned;
            if best.0 != NONE {
                // Days before this one held nothing (each day maps to
                // exactly one bucket, all already scanned), so the
                // smallest (time, seq) of this day is the global min.
                return Some(self.extract(b, best.0, best.1));
            }
        }
        // Sparse queue: everything lives beyond one lap of the cursor.
        // The lap visited every bucket, so the fallback is the global
        // minimum; extract it and let the cursor jump to its day.
        debug_assert_ne!(fb.1, NONE, "non-empty queue scanned fully");
        let (b, slot, prev) = fb;
        Some(self.extract(b, slot, prev))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bulk_load(&mut self, items: Vec<T>) {
        for item in items {
            self.insert(item);
        }
        if self.len > self.resize_len.max(MIN_BUCKETS) {
            // One rebucket for the whole batch, re-deriving width and
            // ring size from the loaded contents (instead of log(batch)
            // doubling passes).
            self.resize();
        }
    }
}

/// The simulator's event queue: one of the two [`Scheduler`]s, selected
/// by [`SchedulerKind`] at construction. An enum rather than a boxed
/// trait object so the per-event hot path stays statically dispatched.
#[derive(Debug)]
pub enum EventQueue<T> {
    /// Reference binary heap.
    Heap(HeapScheduler<T>),
    /// Calendar queue.
    Calendar(CalendarScheduler<T>),
    /// Hierarchical timer wheel.
    Wheel(crate::timer_wheel::WheelScheduler<T>),
}

impl<T: Timed + Ord> EventQueue<T> {
    /// Creates the selected scheduler with room for `capacity` items.
    pub fn new(kind: SchedulerKind, capacity: usize) -> Self {
        match kind {
            SchedulerKind::Heap => EventQueue::Heap(HeapScheduler::with_capacity(capacity)),
            SchedulerKind::Calendar => {
                EventQueue::Calendar(CalendarScheduler::with_capacity(capacity))
            }
            SchedulerKind::Wheel => {
                EventQueue::Wheel(crate::timer_wheel::WheelScheduler::with_capacity(capacity))
            }
        }
    }
}

impl<T: Timed + Ord> Scheduler<T> for EventQueue<T> {
    fn push(&mut self, item: T) {
        match self {
            EventQueue::Heap(q) => q.push(item),
            EventQueue::Calendar(q) => q.push(item),
            EventQueue::Wheel(q) => q.push(item),
        }
    }

    fn pop(&mut self) -> Option<T> {
        match self {
            EventQueue::Heap(q) => q.pop(),
            EventQueue::Calendar(q) => q.pop(),
            EventQueue::Wheel(q) => q.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(q) => q.len(),
            EventQueue::Calendar(q) => q.len(),
            EventQueue::Wheel(q) => q.len(),
        }
    }

    fn bulk_load(&mut self, items: Vec<T>) {
        match self {
            EventQueue::Heap(q) => q.bulk_load(items),
            EventQueue::Calendar(q) => q.bulk_load(items),
            EventQueue::Wheel(q) => q.bulk_load(items),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Item {
        time: u64,
        seq: u64,
    }

    impl Timed for Item {
        fn time(&self) -> u64 {
            self.time
        }
        fn seq(&self) -> u64 {
            self.seq
        }
    }

    fn drain<S: Scheduler<Item>>(q: &mut S) -> Vec<Item> {
        let mut out = Vec::new();
        while let Some(it) = q.pop() {
            out.push(it);
        }
        out
    }

    #[test]
    fn kind_parsing_round_trips() {
        for kind in [
            SchedulerKind::Heap,
            SchedulerKind::Calendar,
            SchedulerKind::Wheel,
        ] {
            assert_eq!(SchedulerKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("splay"), None);
    }

    #[test]
    fn calendar_drains_in_time_seq_order() {
        let mut q = CalendarScheduler::with_capacity(8);
        // Same time twice: seq must break the tie; plus out-of-order
        // inserts across several days.
        for (time, seq) in [(500, 1), (500, 2), (3, 3), (70_000, 4), (1024, 5), (500, 6)] {
            q.push(Item { time, seq });
        }
        let order: Vec<(u64, u64)> = drain(&mut q).iter().map(|i| (i.time, i.seq)).collect();
        assert_eq!(
            order,
            vec![(3, 3), (500, 1), (500, 2), (500, 6), (1024, 5), (70_000, 4)]
        );
    }

    /// The load-bearing property: under a workload shaped like the
    /// simulator's (pops interleaved with pushes at ever-later times),
    /// both schedulers emit the byte-identical sequence.
    #[test]
    fn calendar_matches_heap_differentially() {
        let mut rng = StdRng::seed_from_u64(0xCA1E5DA2);
        let mut heap = HeapScheduler::with_capacity(16);
        let mut cal = CalendarScheduler::with_capacity(16);
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut queued = 0usize;
        for _ in 0..20_000 {
            // Bias towards pushes while small, pops while large, so the
            // queue sweeps through growth and shrink resizes.
            let push = queued < 4 || (queued < 600 && rng.gen_bool(0.55));
            if push {
                seq += 1;
                // Mostly clustered near now + T, occasionally far out
                // (timer-like), occasionally at exactly `now` (tie-heavy).
                let dt = match rng.gen_range(0..10) {
                    0 => 0,
                    1..=7 => rng.gen_range(800..1200),
                    8 => rng.gen_range(0..100),
                    _ => rng.gen_range(50_000..500_000),
                };
                let item = Item {
                    time: now + dt,
                    seq,
                };
                heap.push(item);
                cal.push(item);
                queued += 1;
            } else {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b, "schedulers diverged");
                now = a.expect("queued > 0").time;
                queued -= 1;
            }
        }
        assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    #[test]
    fn bulk_load_matches_sequential_pushes() {
        let mut rng = StdRng::seed_from_u64(7);
        let items: Vec<Item> = (1..=5_000)
            .map(|seq| Item {
                time: rng.gen_range(0..200_000),
                seq,
            })
            .collect();
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut pushed = EventQueue::new(kind, 16);
            let mut loaded = EventQueue::new(kind, 16);
            for &it in &items {
                pushed.push(it);
            }
            loaded.bulk_load(items.clone());
            assert_eq!(loaded.len(), items.len());
            assert_eq!(drain(&mut pushed), drain(&mut loaded), "{kind:?}");
        }
    }

    #[test]
    fn bulk_load_on_top_of_existing_items_keeps_order() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let mut q = EventQueue::new(kind, 4);
            q.push(Item { time: 900, seq: 1 });
            q.push(Item { time: 100, seq: 2 });
            q.bulk_load((3..200).map(|seq| Item { time: seq * 7, seq }).collect());
            let drained = drain(&mut q);
            assert_eq!(drained.len(), 199);
            let mut sorted = drained.clone();
            sorted.sort();
            assert_eq!(drained, sorted, "{kind:?}");
        }
    }

    #[test]
    fn sparse_queue_jumps_across_empty_laps() {
        // Items many laps apart: every pop after the first takes the
        // fallback path (full lap, then a cursor jump).
        let mut q = CalendarScheduler::with_capacity(8);
        for (i, t) in [0u64, 10_000_000, 90_000_000, 91_000_000]
            .iter()
            .enumerate()
        {
            q.push(Item {
                time: *t,
                seq: i as u64,
            });
        }
        let times: Vec<u64> = drain(&mut q).iter().map(|i| i.time).collect();
        assert_eq!(times, vec![0, 10_000_000, 90_000_000, 91_000_000]);
    }

    #[test]
    fn push_behind_cursor_is_still_found_first() {
        // After a pop at a late time the cursor sits on that day; a push
        // at an earlier (but ≥ last-popped) time must pull it back.
        let mut q = CalendarScheduler::with_capacity(8);
        q.push(Item { time: 5, seq: 1 });
        q.push(Item {
            time: 80_000_000,
            seq: 2,
        });
        assert_eq!(q.pop().map(|i| i.seq), Some(1));
        assert_eq!(q.pop().map(|i| i.seq), Some(2)); // cursor jumped far
        q.push(Item {
            time: 80_000_001,
            seq: 4,
        });
        q.push(Item {
            time: 80_000_000,
            seq: 3,
        }); // same tick as the cursor, earlier day after resizes
        assert_eq!(q.pop().map(|i| i.seq), Some(3));
        assert_eq!(q.pop().map(|i| i.seq), Some(4));
        assert!(q.pop().is_none());
    }

    /// Pins the growth trigger at its exact length-band boundary: with the
    /// initial `resize_len` of 8 (capacity-8 construction), the 32nd push
    /// sits *on* the `4 × resize_len` band and must not resize; the 33rd
    /// crosses it and must.
    #[test]
    fn growth_resize_fires_exactly_past_the_length_band() {
        let mut q = CalendarScheduler::with_capacity(8);
        for seq in 0..32u64 {
            q.push(Item {
                time: seq * 100,
                seq,
            });
        }
        assert_eq!(q.resize_len, 8, "on-band push must not resize");
        assert_eq!(q.heads.len(), 8);
        q.push(Item {
            time: 3_200,
            seq: 32,
        });
        assert_eq!(q.resize_len, 33, "first past-band push must resize");
        assert!(
            q.heads.len() > MIN_BUCKETS,
            "growth re-derives the ring from the live span"
        );
        // Contents survive the rebucket in exact (time, seq) order.
        let drained = drain(&mut q);
        assert_eq!(drained.len(), 33);
        let mut sorted = drained.clone();
        sorted.sort();
        assert_eq!(drained, sorted);
    }

    /// Pins the shrink trigger at its exact quarter-band boundary: after a
    /// growth resize pinned `resize_len` at 33, popping down to 9 items
    /// (9 × 4 = 36 ≥ 33) must not resize, while the pop to 8 items
    /// (8 × 4 = 32 < 33) must.
    #[test]
    fn shrink_resize_fires_exactly_below_the_quarter_band() {
        let mut q = CalendarScheduler::with_capacity(8);
        for seq in 0..40u64 {
            q.push(Item {
                time: seq * 100,
                seq,
            });
        }
        assert_eq!(q.resize_len, 33, "growth resize happened while filling");
        while q.len() > 9 {
            q.pop().expect("queue is non-empty");
        }
        assert_eq!(q.resize_len, 33, "on-band pop must not resize");
        q.pop().expect("queue is non-empty");
        assert_eq!(q.len(), 8);
        assert_eq!(q.resize_len, 8, "first below-band pop must resize");
        let drained = drain(&mut q);
        assert_eq!(drained.len(), 8);
        let mut sorted = drained.clone();
        sorted.sort();
        assert_eq!(drained, sorted);
    }

    /// Exercises the scan-cost retune: a bulk load whose span estimate is
    /// stretched by one far outlier picks a day width ~1024× the true
    /// inter-pop gap, so every pop rescans the dense cluster. After
    /// `RETUNE_MIN_POPS` pops the sampled gap (1 tick) disagrees with
    /// the width and the retune must rebucket to the narrow width.
    #[test]
    fn scan_cost_retune_rebuckets_to_the_sampled_gap() {
        let mut q = CalendarScheduler::with_capacity(8);
        let mut items: Vec<Item> = (0..999u64).map(|seq| Item { time: seq, seq }).collect();
        items.push(Item {
            time: 4_000_000,
            seq: 999,
        });
        q.bulk_load(items);
        // The outlier stretched the span: ~4M / 1000 items / 4 → 1024.
        assert_eq!(1u64 << q.shift, 1024, "bulk load guessed a wide day");
        for _ in 0..(RETUNE_MIN_POPS - 1) {
            q.pop().expect("queue is non-empty");
        }
        assert_eq!(1u64 << q.shift, 1024, "no retune before the window fills");
        assert!(
            q.scanned_since > RETUNE_SCAN_FACTOR * q.pops_since,
            "the wide day must be visibly over scan budget (scanned {} in {} pops)",
            q.scanned_since,
            q.pops_since,
        );
        q.pop().expect("queue is non-empty");
        assert_eq!(
            1u64 << q.shift,
            1,
            "retune adopts the sampled 1-tick inter-pop gap"
        );
        // And the retuned queue still drains in exact order.
        let drained = drain(&mut q);
        assert_eq!(drained.len(), 1000 - RETUNE_MIN_POPS as usize);
        let mut sorted = drained.clone();
        sorted.sort();
        assert_eq!(drained, sorted);
    }

    /// The retune's no-op branch: when pops scan heavily but the sampled
    /// gap already *equals* the current width (the workload genuinely
    /// cannot meet the scan budget), the window resets instead of
    /// rebucketing in vain.
    #[test]
    fn retune_resets_window_when_sampled_width_already_matches() {
        let mut q = CalendarScheduler::with_capacity(8);
        // Mean inter-pop gap of 1 tick (matching width 1 after the first
        // retune), but many same-day ties so pops keep scanning chains.
        let items: Vec<Item> = (0..2_000u64)
            .map(|seq| Item { time: seq / 4, seq })
            .collect();
        q.bulk_load(items);
        let mut last = None;
        while let Some(it) = q.pop() {
            if let Some(prev) = last {
                assert!(prev < it, "order broken around retunes");
            }
            last = Some(it);
        }
    }

    #[test]
    fn growth_and_shrink_resizes_preserve_contents() {
        let mut q = CalendarScheduler::with_capacity(8);
        // Push far past the growth threshold...
        for seq in 0..10_000u64 {
            q.push(Item {
                time: (seq * 37) % 1_000_000,
                seq,
            });
        }
        assert_eq!(q.len(), 10_000);
        // ...then drain through every shrink back down to MIN_BUCKETS.
        let drained = drain(&mut q);
        assert_eq!(drained.len(), 10_000);
        let mut sorted = drained.clone();
        sorted.sort();
        assert_eq!(drained, sorted);
    }
}
