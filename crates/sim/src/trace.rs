//! Execution traces: an ordered record of everything the simulator did.
//!
//! Traces serve two purposes: byte-exact determinism checks (two runs of
//! the same seeded scenario must produce identical traces) and post-mortem
//! debugging of protocol issues (the delay-optimal forwarding races were
//! found by reading traces of wedged runs).

use qmx_core::{MsgKind, SiteId};
use std::fmt;

/// One traced simulator step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A wire message was sent.
    Send {
        /// Virtual send time.
        t: u64,
        /// Sender.
        from: SiteId,
        /// Receiver.
        to: SiteId,
        /// Message kind.
        kind: MsgKind,
    },
    /// A wire message was delivered.
    Deliver {
        /// Virtual delivery time.
        t: u64,
        /// Sender.
        from: SiteId,
        /// Receiver.
        to: SiteId,
        /// Message kind.
        kind: MsgKind,
    },
    /// A site entered its critical section.
    Enter {
        /// Virtual time.
        t: u64,
        /// The entering site.
        site: SiteId,
    },
    /// A site exited its critical section.
    Exit {
        /// Virtual time.
        t: u64,
        /// The exiting site.
        site: SiteId,
    },
    /// A site crashed.
    Crash {
        /// Virtual time.
        t: u64,
        /// The crashed site.
        site: SiteId,
    },
    /// A failure notice was delivered.
    Notice {
        /// Virtual time.
        t: u64,
        /// The notified site.
        site: SiteId,
        /// The site reported failed.
        failed: SiteId,
    },
    /// A crashed site restarted with fresh state.
    Recover {
        /// Virtual time.
        t: u64,
        /// The recovered site.
        site: SiteId,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Send { t, from, to, kind } => {
                write!(f, "{t:>10}  send    {from} -> {to}  {kind}")
            }
            TraceEvent::Deliver { t, from, to, kind } => {
                write!(f, "{t:>10}  deliver {from} -> {to}  {kind}")
            }
            TraceEvent::Enter { t, site } => write!(f, "{t:>10}  ENTER   {site}"),
            TraceEvent::Exit { t, site } => write!(f, "{t:>10}  EXIT    {site}"),
            TraceEvent::Crash { t, site } => write!(f, "{t:>10}  CRASH   {site}"),
            TraceEvent::Notice { t, site, failed } => {
                write!(f, "{t:>10}  notice  {site}: {failed} failed")
            }
            TraceEvent::Recover { t, site } => write!(f, "{t:>10}  RECOVER {site}"),
        }
    }
}

/// A bounded trace buffer (oldest events are dropped past the cap so long
/// soak runs don't exhaust memory).
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: usize,
}

impl Trace {
    /// Creates a trace buffer holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Trace {
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Appends an event (dropping the oldest if at capacity).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(ev);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events were evicted by the cap.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Renders the trace as one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier events dropped ...\n",
                self.dropped
            ));
        }
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// Only the CS entry/exit events — the interleaving that matters for
    /// mutual exclusion arguments.
    pub fn cs_events(&self) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Enter { .. } | TraceEvent::Exit { .. }))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_render() {
        let mut tr = Trace::new(10);
        tr.push(TraceEvent::Send {
            t: 5,
            from: SiteId(0),
            to: SiteId(1),
            kind: MsgKind::Request,
        });
        tr.push(TraceEvent::Enter {
            t: 10,
            site: SiteId(0),
        });
        let s = tr.render();
        assert!(s.contains("send    S0 -> S1  request"));
        assert!(s.contains("ENTER   S0"));
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn cap_evicts_oldest() {
        let mut tr = Trace::new(2);
        for t in 0..5 {
            tr.push(TraceEvent::Exit { t, site: SiteId(0) });
        }
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.dropped(), 3);
        assert!(matches!(tr.events()[0], TraceEvent::Exit { t: 3, .. }));
        assert!(tr.render().contains("3 earlier events dropped"));
    }

    #[test]
    fn cs_events_filters() {
        let mut tr = Trace::new(10);
        tr.push(TraceEvent::Send {
            t: 1,
            from: SiteId(0),
            to: SiteId(1),
            kind: MsgKind::Reply,
        });
        tr.push(TraceEvent::Enter {
            t: 2,
            site: SiteId(1),
        });
        tr.push(TraceEvent::Exit {
            t: 3,
            site: SiteId(1),
        });
        assert_eq!(tr.cs_events().len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            TraceEvent::Notice {
                t: 7,
                site: SiteId(1),
                failed: SiteId(2)
            }
            .to_string(),
            "         7  notice  S1: S2 failed"
        );
        assert!(TraceEvent::Crash {
            t: 1,
            site: SiteId(0)
        }
        .to_string()
        .contains("CRASH"));
    }
}
